//! PDS2 umbrella crate: re-exports the full stack.
//!
//! One `use pds2::...` away from every layer of the ICDE 2021 PDS²
//! reproduction: governance chain ([`chain`]), marketplace
//! orchestration ([`market`]), privacy-preserving computation
//! ([`he`], [`mpc`], [`tee`]), collaborative learning ([`learning`],
//! [`ml`]), reward attribution ([`rewards`]), storage ([`storage`]),
//! the deterministic network simulator ([`net`]), and the
//! cross-cutting substrates: hand-rolled cryptography ([`crypto`]),
//! deterministic parallelism ([`par`]) and deterministic
//! observability ([`obs`], see `OBSERVABILITY.md`).
pub use pds2_chain as chain;
pub use pds2_core as market;
pub use pds2_crypto as crypto;
pub use pds2_he as he;
pub use pds2_learning as learning;
pub use pds2_ml as ml;
pub use pds2_mpc as mpc;
pub use pds2_net as net;
pub use pds2_obs as obs;
pub use pds2_par as par;
pub use pds2_rewards as rewards;
pub use pds2_storage as storage;
pub use pds2_tee as tee;
