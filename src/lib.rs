//! PDS2 umbrella crate: re-exports the full stack.
pub use pds2_chain as chain;
pub use pds2_core as market;
pub use pds2_crypto as crypto;
pub use pds2_he as he;
pub use pds2_learning as learning;
pub use pds2_ml as ml;
pub use pds2_mpc as mpc;
pub use pds2_net as net;
pub use pds2_rewards as rewards;
pub use pds2_storage as storage;
pub use pds2_tee as tee;
