//! Offline stand-in for `criterion` (API subset used by PDS2).
//!
//! Implements just enough of the Criterion interface for the workspace's
//! `benches/` to compile and produce useful wall-clock numbers without
//! the real statistics engine: each benchmark runs a short calibrated
//! loop and prints mean ns/iter (plus throughput when declared).

use std::time::Instant;

/// How per-iteration setup values are batched (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared throughput of the benched operation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording the mean over a calibrated number of
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until the loop runs long
        // enough to time meaningfully, capped for expensive routines.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 20 || n >= self.iters {
                self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            n = (n * 4).min(self.iters);
        }
    }

    /// Times `routine` over values produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 20 || n >= self.iters {
                self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            n = (n * 4).min(self.iters);
        }
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if mean_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                b as f64 / mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(e)) if mean_ns > 0.0 => {
            format!("  ({:.0} elem/s)", e as f64 / mean_ns * 1e9)
        }
        _ => String::new(),
    };
    if mean_ns >= 1_000_000.0 {
        println!("{name}: {:.3} ms/iter{rate}", mean_ns / 1e6);
    } else {
        println!("{name}: {mean_ns:.0} ns/iter{rate}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    cap: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the iteration count (the stub's analogue of sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cap = (n as u64).max(1);
        self
    }

    /// Declares throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters: self.cap,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(
            &format!("{}/{id}", self.name),
            bencher.mean_ns,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cap: 100,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters: 100,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&id.to_string(), bencher.mean_ns, None);
        self
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
