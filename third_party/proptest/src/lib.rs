//! Offline stand-in for `proptest` (API subset used by PDS2).
//!
//! Provides randomized property testing without shrinking: each
//! `proptest!` test runs `ProptestConfig::cases` iterations with inputs
//! drawn from the given strategies, seeded deterministically from the
//! test name and case index so failures reproduce across runs. The
//! strategy surface covers exactly what the workspace tests use: integer
//! and float ranges, `any::<T>()` for primitives and byte arrays,
//! `collection::vec`, `option::of`, `prop_map`, and character-class
//! string patterns like `"[a-z]{1,20}"`.

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-count configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test name, mixed with the
/// case index.
pub fn test_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($( ( $($S:ident $idx:tt),+ ) );* $(;)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4)
);

/// Boxed draw function, the element type of [`OneOf`].
pub type BoxedGen<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Type-erased union strategy backing [`prop_oneof!`]: draws uniformly
/// among the alternatives.
pub struct OneOf<T> {
    options: Vec<BoxedGen<T>>,
}

impl<T> OneOf<T> {
    /// Builds a union from generator closures (used by `prop_oneof!`).
    pub fn new(options: Vec<BoxedGen<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! with no alternatives");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        (self.options[i])(rng)
    }
}

/// Uniformly chooses one of several strategies producing the same value
/// type (upstream's unweighted `prop_oneof!` form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let __s = $strategy;
                Box::new(move |rng: &mut $crate::StdRng| $crate::Strategy::generate(&__s, rng)) as _
            }),+
        ])
    };
}

/// Marker for types with a full-domain `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_prim!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill(&mut out);
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategy from a character-class pattern (`"[a-z]{1,20}"`).
///
/// Supports exactly the `[class]{lo,hi}` shape (with `a-z` ranges and
/// literal characters inside the class); other regexes are rejected at
/// test time with a clear panic rather than silently mis-generating.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (stub proptest)"));
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.random_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, counts) = rest.split_once(']')?;
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector strategy with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "vec strategy with empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — `Option` strategies.
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some` otherwise (matching the
    /// upstream default weighting).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_range(0..4usize) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Asserts a property holds (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality (panics on failure, like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal item-by-item expansion for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case as u64);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just, OneOf,
        ProptestConfig, Strategy,
    };

    /// Mirror of `proptest::prelude::prop` (module alias).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[a-z]{1,20}").unwrap();
        assert_eq!(chars.len(), 26);
        assert_eq!((lo, hi), (1, 20));
        let (chars, lo, hi) = super::parse_class_pattern("[abc]{3}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (3, 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_and_vecs(
            x in 0u64..100,
            v in crate::collection::vec(any::<u8>(), 0..16),
            s in "[a-z]{1,20}",
            o in crate::option::of(1usize..4),
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 16);
            prop_assert!(!s.is_empty() && s.len() <= 20);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            if let Some(n) = o {
                prop_assert!((1..4).contains(&n));
            }
        }

        #[test]
        fn prop_map_applies(n in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(bits in any::<[u8; 12]>()) {
            prop_assert_eq!(bits.len(), 12);
        }
    }
}
