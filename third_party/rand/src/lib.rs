//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: `StdRng`
//! (implemented as xoshiro256** seeded via SplitMix64), the `Rng`
//! extension trait with `random`/`random_range`/`random_bool`, and
//! `SeedableRng::seed_from_u64`. Streams differ from upstream `rand`,
//! which is fine: every consumer in this repository only relies on
//! determinism *within* a build, never on upstream-compatible streams.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (the
/// `StandardUniform` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform below a (non-zero) bound via widening multiply; the bias is
/// at most 2^-64 per draw, far below anything the simulations resolve.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

fn below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    if span <= u64::MAX as u128 {
        below_u64(rng, span as u64) as u128
    } else {
        u128::sample(rng) % span
    }
}

/// Types usable as `random_range` bounds.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`; panics if empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`; panics if empty.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide);
                lo.wrapping_add(below_span(rng, span as u128) as $wide as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::MAX {
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(below_span(rng, span + 1) as $wide as $t)
            }
        }
    )*};
}

fn below_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    below_u128(rng, span)
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "random_range: empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "random_range: empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "random_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "random_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing extension methods (blanket-implemented for every
/// [`RngCore`], including unsized ones).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman & Vigna),
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let r = rng.random_range(10u64..20);
            assert!((10..20).contains(&r));
            let ri = rng.random_range(0..=3usize);
            assert!(ri <= 3);
            let fr = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&fr));
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn unsized_rng_usable_through_generic() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random::<u64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        // Must not overflow or loop forever.
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(1u64..u64::MAX);
    }
}
