//! Offline stand-in for `parking_lot` (API subset used by PDS2).
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! non-poisoning interface: `lock()` returns the guard directly and a
//! panicked holder simply releases the lock instead of poisoning it.

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot` semantics (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot` semantics (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_from_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
