//! Quickstart: one consumer, three providers, one executor — the complete
//! Fig. 2 lifecycle in ~80 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use pds2::market::marketplace::{Marketplace, StorageChoice};
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::ml::data::gaussian_blobs;
use pds2::storage::semantic::{MetaValue, Metadata, Requirement};
use pds2::tee::measurement::EnclaveCode;

fn main() {
    // Boot the marketplace: governance chain, attestation service,
    // manufacturer registry and the shared ontology.
    let mut market = Marketplace::new(2026);
    let consumer = market.register_consumer(1, 1_000_000);

    // Three smart-device users become data providers. One outsources
    // storage to an untrusted operator (sealed, Fig. 3 right).
    let data = gaussian_blobs(300, 3, 0.7, 7);
    let (train, validation) = data.split(0.2, 8);
    let shards = train.partition_iid(3, 9);
    let meta = || {
        Metadata::new()
            .with(
                "type",
                MetaValue::Class("sensor/environment/temperature".into()),
                0,
            )
            .with("sample-rate-hz", MetaValue::Num(1.0), 1)
    };
    let mut providers = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let storage = if i == 2 {
            StorageChoice::ThirdParty { publish_level: 1 }
        } else {
            StorageChoice::Local
        };
        let p = market.register_provider(100 + i as u64, storage);
        market.provider_add_device(p).expect("provider registered");
        let record = market
            .provider_ingest(p, 0, shard, meta())
            .expect("device-signed ingestion");
        println!("provider {p} registered dataset {}", record.0.short());
        providers.push(p);
    }

    // The consumer publishes a training workload bound to approved
    // enclave code, with escrowed rewards.
    let code = EnclaveCode::new("logistic-trainer", 1, b"trainer-binary-v1".to_vec());
    let spec = WorkloadSpec {
        title: "temperature-anomaly-classifier".into(),
        precondition: Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment".into(),
        },
        task: TaskKind::BinaryClassification,
        feature_dim: 3,
        provider_reward: 10_000,
        executor_fee: 500,
        reward_scheme: RewardScheme::ShapleyExact,
        min_providers: 3,
        min_records: 50,
        code_measurement: code.measurement(),
        validation,
        local_epochs: 10,
        aggregation_rounds: 3,
        dp_noise_multiplier: None,
        reward_token: None,
        data_bounds: None,
    };
    let workload = market
        .submit_workload(consumer, spec, code, 1)
        .expect("workload submission");
    println!(
        "workload {workload} deployed at {}",
        market.workload_contract(workload).unwrap()
    );

    // An executor with TEE hardware joins; its enclave attests the
    // approved measurement before any provider shares data.
    let executor = market.register_executor(500);
    market
        .executor_join(executor, workload)
        .expect("attestation");

    // Eligible providers (matched on published metadata only) accept.
    let eligible = market.eligible_providers(workload).unwrap();
    println!("eligible providers: {}", eligible.len());
    let assignments: Vec<_> = providers.iter().map(|&p| (p, executor)).collect();
    let (exec, fin) = market
        .run_full_lifecycle(workload, &assignments)
        .expect("lifecycle");

    println!("\n== execution ==");
    println!("result hash        : {}", exec.result_hash.short());
    println!("validation accuracy: {:.3}", exec.validation_score);
    println!(
        "readings verified  : {} accepted, {} rejected",
        exec.readings_accepted, exec.readings_rejected
    );

    println!("\n== rewards (exact Shapley) ==");
    for (p, share) in &fin.provider_shares {
        println!(
            "provider {p}: {share} tokens (on-chain balance {})",
            market.chain.state.balance(p)
        );
    }
    println!("executors paid: {}", fin.paid_executors.len());

    println!("\n== on-chain audit trail ==");
    for topic in [
        "erc721.mint",
        "workload.funded",
        "workload.participation",
        "workload.started",
        "workload.completed",
    ] {
        println!(
            "{topic}: {} events",
            market.chain.events_by_topic(topic).len()
        );
    }
    println!("chain height: {}", market.chain.height());

    let model = market.consumer_retrieve_result(workload).unwrap();
    println!("\nconsumer retrieved model with {} parameters", model.len());
}
