//! IoT fleet scenario: a smart-building operator buys a next-hour
//! temperature forecaster trained on sensor streams owned by individual
//! device users — the §I motivating workload.
//!
//! Demonstrates: regression workloads, outsourced sealed storage for every
//! provider, an adversary injecting forged and replayed readings (rejected
//! by the §IV-B pipeline), and a slashed lying executor.
//!
//! Run with: `cargo run --release --example iot_fleet`

use pds2::crypto::sha256;
use pds2::market::authenticity::{Device, ManufacturerRegistry, ReadingVerifier};
use pds2::market::marketplace::{Marketplace, StorageChoice};
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::ml::data::{iot_sensor_series, Dataset};
use pds2::storage::semantic::{MetaValue, Metadata, Requirement};
use pds2::tee::measurement::EnclaveCode;
use pds2_crypto::KeyPair;

fn main() {
    let mut market = Marketplace::new(7);
    let operator = market.register_consumer(1, 2_000_000);

    // Eight households, each with one endorsed temperature sensor and
    // outsourced (sealed) storage.
    let n_providers = 8;
    let mut providers = Vec::new();
    let mut household_data = Vec::new();
    for i in 0..n_providers {
        let p = market.register_provider(
            100 + i as u64,
            StorageChoice::ThirdParty { publish_level: 1 },
        );
        market.provider_add_device(p).unwrap();
        // Device-specific daily phase: heterogeneous providers.
        let series = iot_sensor_series(96, i as f64 * 0.4, 0.3, 10 + i as u64);
        let meta = Metadata::new()
            .with(
                "type",
                MetaValue::Class("sensor/environment/temperature".into()),
                0,
            )
            .with("sample-rate-hz", MetaValue::Num(1.0), 1)
            .with(
                "building-zone",
                MetaValue::Str(format!("zone-{}", i % 3)),
                1,
            );
        market.provider_ingest(p, 0, &series, meta).unwrap();
        providers.push(p);
        household_data.push(series);
    }

    // Validation series from a held-out device.
    let validation = iot_sensor_series(48, 1.7, 0.3, 99);

    let code = EnclaveCode::new("forecaster", 2, b"forecaster-binary-v2".to_vec());
    let spec = WorkloadSpec {
        title: "next-hour-temperature".into(),
        precondition: Requirement::All(vec![
            Requirement::HasClass {
                attr: "type".into(),
                class: "sensor/environment/temperature".into(),
            },
            Requirement::NumInRange {
                attr: "sample-rate-hz".into(),
                min: 0.5,
                max: 4.0,
            },
        ]),
        task: TaskKind::Regression,
        feature_dim: 4,
        provider_reward: 80_000,
        executor_fee: 2_000,
        reward_scheme: RewardScheme::ProportionalToRecords,
        min_providers: 6,
        min_records: 400,
        code_measurement: code.measurement(),
        validation: validation.clone(),
        local_epochs: 20,
        aggregation_rounds: 4,
        dp_noise_multiplier: None,
        reward_token: None,
        data_bounds: None,
    };
    let workload = market.submit_workload(operator, spec, code, 3).unwrap();

    // Three executors; one will later lie about the result.
    let executors: Vec<_> = (0..3).map(|i| market.register_executor(500 + i)).collect();
    for &e in &executors {
        market.executor_join(e, workload).unwrap();
    }

    // Providers accept, spread across executors.
    for (i, &p) in providers.iter().enumerate() {
        market
            .provider_accept(p, workload, executors[i % 2]) // executor 2 gets no data
            .unwrap();
    }
    assert!(market.try_start(workload).unwrap());
    let exec = market.execute(workload).unwrap();

    // Executor 2 (dataless, greedy) submits a forged hash.
    market
        .executor_submit_forged_result(executors[2], workload, sha256(b"fake"))
        .unwrap();
    let fin = market.finalize(workload).unwrap();

    println!("== forecaster workload ==");
    println!("validation -MSE : {:.4}", exec.validation_score);
    println!(
        "readings        : {} accepted / {} rejected",
        exec.readings_accepted, exec.readings_rejected
    );
    println!("slashed executor: {:?}", fin.slashed);
    assert_eq!(fin.slashed, vec![executors[2]]);
    let total_rewards: u128 = fin.provider_shares.iter().map(|(_, v)| v).sum();
    println!(
        "rewards paid    : {total_rewards} across {} households",
        fin.provider_shares.len()
    );

    // ------------------------------------------------------------------
    // Standalone §IV-B demonstration: forged and replayed readings.
    // ------------------------------------------------------------------
    println!("\n== authenticity pipeline under attack ==");
    let mut registry = ManufacturerRegistry::new();
    let manufacturer = KeyPair::from_seed(42);
    registry.register_manufacturer(manufacturer.public.clone());
    let mut honest_device = Device::new(1);
    registry.endorse(&manufacturer, &honest_device).unwrap();
    let mut rogue_device = Device::new(2); // never endorsed

    let mut verifier = ReadingVerifier::new(&registry);
    let mut outcomes = Vec::new();
    // Honest readings.
    for t in 0..50 {
        let r = honest_device.sign_reading(t, vec![20.0 + t as f64 * 0.01], 0.0);
        outcomes.push(("honest", verifier.verify(&r).is_ok()));
    }
    // Replay the last honest reading 10 times (resale attempt).
    let replay = honest_device.sign_reading(100, vec![21.0], 0.0);
    verifier.verify(&replay).unwrap();
    for _ in 0..10 {
        outcomes.push(("replay", verifier.verify(&replay).is_ok()));
    }
    // Tampered payload (forged label).
    let mut forged = honest_device.sign_reading(101, vec![21.0], 0.0);
    forged.target = 99.0;
    outcomes.push(("forged", verifier.verify(&forged).is_ok()));
    // Unendorsed device.
    let rogue = rogue_device.sign_reading(1, vec![1.0], 0.0);
    outcomes.push(("unendorsed", verifier.verify(&rogue).is_ok()));

    let accepted_honest = outcomes
        .iter()
        .filter(|(k, ok)| *k == "honest" && *ok)
        .count();
    let rejected_attacks = outcomes
        .iter()
        .filter(|(k, ok)| *k != "honest" && !*ok)
        .count();
    println!("honest accepted : {accepted_honest}/50");
    println!("attacks rejected: {rejected_attacks}/12");
    assert_eq!(accepted_honest, 50);
    assert_eq!(rejected_attacks, 12);

    // Sanity: pooled data really predicts.
    let pooled = Dataset::concat(&household_data);
    println!(
        "\npooled fleet data: {} readings from {n_providers} devices",
        pooled.len()
    );
}
