//! Reward-scheme audit (§IV-A): how the same training outcome is valued
//! under proportional-to-size, leave-one-out, exact Shapley and truncated
//! Monte-Carlo Shapley — including a free-rider with junk data and a pair
//! of redundant providers, plus the model-based pricing curve a buyer
//! faces.
//!
//! Run with: `cargo run --release --example reward_audit`

use pds2::ml::data::{gaussian_blobs, Dataset};
use pds2::ml::model::LogisticRegression;
use pds2::ml::sgd::{train, SgdConfig};
use pds2::rewards::pricing::{PricedModel, PricingConfig};
use pds2::rewards::shapley::{
    exact_shapley, leave_one_out, monte_carlo_shapley, proportional, to_reward_shares, McConfig,
    Utility,
};
use pds2::rewards::utility::MlUtility;

fn main() {
    // Five providers: three honest, one junk (shuffled labels), and one
    // that duplicates provider 0's data (redundancy).
    let base = gaussian_blobs(600, 3, 0.7, 1);
    let (pool, test) = base.split(0.3, 2);
    let mut shards = pool.partition_iid(3, 3);
    let mut junk = shards[1].clone();
    for y in junk.y.iter_mut() {
        *y = 1.0 - *y; // systematically wrong labels
    }
    shards.push(junk);
    shards.push(shards[0].clone()); // redundant copy of provider 0
    let names = ["honest-A", "honest-B", "honest-C", "junk", "copy-of-A"];
    let sizes: Vec<f64> = shards.iter().map(|s| s.len() as f64).collect();

    let total_reward = 100_000.0;
    let sgd = SgdConfig {
        epochs: 8,
        ..Default::default()
    };

    let mut utility = MlUtility::new(shards.clone(), test.clone(), sgd.clone());
    let grand = utility.value(&[0, 1, 2, 3, 4]);
    println!("grand-coalition accuracy: {grand:.3}\n");

    let prop = proportional(&sizes, total_reward);
    let loo = leave_one_out(&mut utility);
    let loo_shares = to_reward_shares(&loo, total_reward);
    let exact = exact_shapley(&mut utility);
    let exact_shares = to_reward_shares(&exact, total_reward);
    let mc = monte_carlo_shapley(
        &mut utility,
        &McConfig {
            permutations: 200,
            truncation_tolerance: 0.002,
            seed: 4,
        },
    );
    let mc_shares = to_reward_shares(&mc, total_reward);
    println!(
        "training runs executed (memoized): {}",
        utility.training_runs
    );

    println!(
        "\n{:<10} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "provider", "records", "proportional", "leave-one-out", "shapley", "shapley-mc"
    );
    for i in 0..5 {
        println!(
            "{:<10} {:>8} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            names[i], sizes[i], prop[i], loo_shares[i], exact_shares[i], mc_shares[i]
        );
    }

    println!(
        "\nnote: proportional pays the junk provider fully (it has records); \
         Shapley pays it ~nothing. Leave-one-out under-values the redundant \
         pair (either copy alone suffices); Shapley splits their value."
    );

    // ------------------------------------------------------------------
    // Model-based pricing: what the buyer's budget purchases.
    // ------------------------------------------------------------------
    let mut optimal = LogisticRegression::new(3);
    let full_pool = Dataset::concat(&shards[..3]);
    train(&mut optimal, &full_pool, &SgdConfig::default());
    let priced = PricedModel::new(
        optimal,
        PricingConfig {
            full_price: 1_000,
            max_noise_factor: 4.0,
        },
    );
    println!("\n== model-based pricing (accuracy vs budget) ==");
    let curve = priced.accuracy_curve(&test, &[0, 125, 250, 500, 750, 1_000], 16, 7);
    for (budget, acc) in curve {
        let bar = "#".repeat((acc * 40.0) as usize);
        println!("budget {budget:>5}: accuracy {acc:.3} {bar}");
    }
}
