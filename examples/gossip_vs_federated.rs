//! Decentralized aggregation shoot-out (§III-C): gossip learning vs
//! federated learning on the same partitioned data, with and without
//! churn, including a coordinator failure.
//!
//! Run with: `cargo run --release --example gossip_vs_federated`

use pds2::learning::federated::{run_fedavg, FedConfig};
use pds2::learning::gossip::{run_gossip_experiment, GossipConfig, MergeRule};
use pds2::ml::data::gaussian_blobs;
use pds2::ml::model::LogisticRegression;
use pds2::net::LinkModel;

fn main() {
    let n_nodes = 20;
    let data = gaussian_blobs(2000, 5, 0.8, 1);
    let (train, test) = data.split(0.25, 2);
    let shards_iid = train.partition_iid(n_nodes, 3);
    let shards_skew = train.partition_noniid(n_nodes, 3);

    println!(
        "nodes: {n_nodes}, train: {}, test: {}\n",
        train.len(),
        test.len()
    );

    for (label, shards) in [("IID", &shards_iid), ("non-IID", &shards_skew)] {
        // Gossip learning: fully decentralized.
        let gossip = run_gossip_experiment(
            shards.clone(),
            &test,
            GossipConfig {
                period_us: 500_000,
                merge: MergeRule::AgeWeighted,
                ..Default::default()
            },
            LinkModel::default(),
            7,
            &[30_000_000], // 30 simulated seconds
            None,
            || LogisticRegression::new(5),
        );

        // FedAvg: same communication budget, central coordinator.
        let fed = run_fedavg(
            shards,
            &test,
            &FedConfig {
                rounds: 30,
                client_fraction: 0.3,
                ..Default::default()
            },
            || LogisticRegression::new(5),
            &|_, _| true,
            usize::MAX,
        );

        println!("== {label} partition ==");
        println!(
            "gossip   : accuracy {:.3}, {} models moved, no coordinator",
            gossip.accuracy_curve[0], gossip.models_transferred
        );
        println!(
            "federated: accuracy {:.3}, {} models moved, {} through ONE coordinator",
            fed.accuracy_curve.last().unwrap(),
            fed.stats.models_transferred,
            fed.stats.coordinator_transfers
        );
        println!();
    }

    // Churn: 30% of nodes die permanently partway through.
    let gossip_churn = run_gossip_experiment(
        shards_iid.clone(),
        &test,
        GossipConfig {
            period_us: 500_000,
            ..Default::default()
        },
        LinkModel::default(),
        7,
        &[30_000_000],
        Some((0.3, 15_000_000)),
        || LogisticRegression::new(5),
    );
    println!("== 30% permanent churn ==");
    println!(
        "gossip survives: accuracy {:.3} with {} nodes left",
        gossip_churn.accuracy_curve[0], gossip_churn.online_nodes
    );

    // Coordinator failure kills FedAvg outright.
    let fed_dead = run_fedavg(
        &shards_iid,
        &test,
        &FedConfig {
            rounds: 30,
            ..Default::default()
        },
        || LogisticRegression::new(5),
        &|_, _| true,
        5, // coordinator dies after round 5
    );
    println!(
        "federated with coordinator death at round 5: accuracy frozen at {:.3} (round 5) .. {:.3} (round 30)",
        fed_dead.accuracy_curve[5],
        fed_dead.accuracy_curve.last().unwrap()
    );
    assert_eq!(
        fed_dead.accuracy_curve[5],
        *fed_dead.accuracy_curve.last().unwrap(),
        "no coordinator, no progress"
    );
}
