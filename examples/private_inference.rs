//! Privacy-preserving computation shoot-out (§III-B): the same linear
//! inference runs in plaintext, under Paillier homomorphic encryption,
//! under secret-sharing SMC, and inside a simulated SGX enclave — with
//! wall-clock, communication and overhead numbers side by side.
//!
//! This is the reasoning behind the paper's conclusion that TEEs are "the
//! most promising solution for PDS²".
//!
//! Run with: `cargo run --release --example private_inference`

use pds2::he;
use pds2::mpc::{secure_linear_inference, MpcEngine};
use pds2::tee::cost::CostModel;
use pds2::tee::measurement::EnclaveCode;
use pds2::tee::platform::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let dim = 32;
    let mut rng = StdRng::seed_from_u64(1);
    let weights: Vec<f64> = (0..dim)
        .map(|i| ((i * 7 % 13) as f64 - 6.0) / 6.0)
        .collect();
    let features: Vec<f64> = (0..dim)
        .map(|i| ((i * 5 % 11) as f64 - 5.0) / 5.0)
        .collect();
    let bias = 0.25;
    let expected: f64 = weights
        .iter()
        .zip(&features)
        .map(|(w, x)| w * x)
        .sum::<f64>()
        + bias;

    println!("linear inference, dimension {dim}\n");

    // -- plaintext baseline ------------------------------------------------
    let t = Instant::now();
    let mut plain = 0.0;
    for _ in 0..1000 {
        plain = weights
            .iter()
            .zip(&features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + bias;
    }
    let plain_ns = t.elapsed().as_nanos() / 1000;
    println!("plaintext : {plain:.4} in ~{plain_ns} ns (no protection)");

    // -- Paillier HE ---------------------------------------------------------
    let t = Instant::now();
    let sk = he::generate_keypair(&mut rng, 1024).expect("keygen");
    let keygen_ms = t.elapsed().as_millis();
    let to_fixed = |v: f64| (v * 65536.0).round() as i64;
    let t = Instant::now();
    let enc_weights: Vec<he::Ciphertext> = weights
        .iter()
        .map(|&w| sk.public.encrypt_signed(&mut rng, to_fixed(w)).unwrap())
        .collect();
    let enc_ms = t.elapsed().as_millis();
    let fixed_features: Vec<i64> = features.iter().map(|&x| to_fixed(x)).collect();
    let t = Instant::now();
    let dot = he::encrypted_dot(&sk.public, &enc_weights, &fixed_features).unwrap();
    let with_bias = sk.public.add(
        &dot,
        &sk.public
            .encrypt_signed(&mut rng, to_fixed(bias) * 65536)
            .unwrap(),
    );
    let compute_ms = t.elapsed().as_millis();
    let he_result = sk.decrypt_signed(&with_bias).unwrap() as f64 / (65536.0 * 65536.0);
    let bytes: usize = enc_weights.iter().map(|c| c.byte_len()).sum();
    println!(
        "paillier  : {he_result:.4} — keygen {keygen_ms} ms, encrypt {enc_ms} ms, compute {compute_ms} ms, {bytes} ciphertext bytes"
    );

    // -- SMC (3-party additive sharing with Beaver triples) -----------------
    let t = Instant::now();
    let mut engine = MpcEngine::new(3, StdRng::seed_from_u64(2));
    let (smc_result, cost) = secure_linear_inference(&mut engine, &weights, bias, &features);
    let smc_ms = t.elapsed().as_micros() as f64 / 1000.0;
    // A WAN deployment pays per round; show the modelled network time.
    let wan_secs = cost.network_time_secs(0.05, 1_250_000.0);
    println!(
        "smc (3pc) : {smc_result:.4} — local {smc_ms:.2} ms, {} rounds, {} bytes, ~{wan_secs:.2} s over a 50 ms WAN",
        cost.rounds, cost.bytes_sent
    );

    // -- simulated TEE -------------------------------------------------------
    let platform = Platform::new(9, CostModel::default());
    let code = EnclaveCode::new("inference", 1, b"inference-binary".to_vec());
    let mut enclave = platform.launch(&code);
    let working_set = (dim * 16) as u64;
    let tee_result = enclave.execute(plain_ns as u64, working_set, || {
        weights
            .iter()
            .zip(&features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + bias
    });
    let meter = enclave.meter();
    println!(
        "tee (sgx) : {tee_result:.4} — {} ns charged ({} transition), result attested & sealed",
        meter.charged_ns, meter.transitions
    );

    println!("\nexpected  : {expected:.4}");
    assert!((he_result - expected).abs() < 1e-3);
    assert!((smc_result - expected).abs() < 1e-2);
    assert!((tee_result - expected).abs() < 1e-12);

    println!(
        "\nshape check (paper §III-B): HE pays orders of magnitude in compute, \
         SMC pays rounds/bandwidth, the TEE pays a small constant overhead."
    );
}
