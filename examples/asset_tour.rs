//! Asset tour (§III-A): the governance layer's token machinery end to end —
//! ERC-20 reward tokens, ERC-721 dataset/workload-code NFTs, a
//! token-denominated workload, and light-client participation proofs.
//!
//! Run with: `cargo run --release --example asset_tour`

use pds2::chain::erc721::AssetKind;
use pds2::market::marketplace::{Marketplace, StorageChoice};
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::ml::data::gaussian_blobs;
use pds2::storage::semantic::{MetaValue, Metadata, Requirement};
use pds2::tee::measurement::EnclaveCode;

fn main() {
    let mut market = Marketplace::new(99);
    let consumer = market.register_consumer(1, 1_000_000);

    // 1. The consumer issues a fungible reward token (ERC-20): "used to
    //    handle any kind of rewards offered by the consumers".
    let token = market
        .consumer_create_reward_token(consumer, "DATA", 500_000)
        .expect("token creation");
    println!(
        "ERC-20 reward token {} (symbol {:?}, supply {:?})",
        token.0,
        market.chain.state.erc20.symbol(token),
        market.chain.state.erc20.total_supply(token)
    );

    // 2. Providers register; each ingested dataset mints an ERC-721 NFT
    //    committing to its content hash: "particularly useful to model
    //    data and workload code".
    let data = gaussian_blobs(240, 3, 0.7, 7);
    let (train, validation) = data.split(0.2, 8);
    let shards = train.partition_iid(3, 9);
    let meta = || {
        Metadata::new().with(
            "type",
            MetaValue::Class("sensor/environment/temperature".into()),
            0,
        )
    };
    let mut providers = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let p = market.register_provider(100 + i as u64, StorageChoice::Local);
        market.provider_add_device(p).unwrap();
        let record = market.provider_ingest(p, 0, shard, meta()).unwrap();
        let nft = market
            .chain
            .state
            .erc721
            .find_by_content(AssetKind::Dataset, &record.0)
            .expect("dataset NFT minted at ingestion");
        println!(
            "provider {p}: dataset NFT #{} committing to {}",
            nft.0,
            record.0.short()
        );
        providers.push(p);
    }

    // 3. A token-denominated workload: escrow and payouts all in DATA.
    let code = EnclaveCode::new("trainer", 3, b"trainer-v3".to_vec());
    let spec = WorkloadSpec {
        title: "token-paid-classifier".into(),
        precondition: Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment".into(),
        },
        task: TaskKind::BinaryClassification,
        feature_dim: 3,
        provider_reward: 60_000,
        executor_fee: 5_000,
        reward_scheme: RewardScheme::ShapleyExact,
        min_providers: 3,
        min_records: 50,
        code_measurement: code.measurement(),
        validation,
        local_epochs: 8,
        aggregation_rounds: 2,
        dp_noise_multiplier: None,
        reward_token: Some(token),
        data_bounds: Some((-50.0, 50.0)),
    };
    let workload = market.submit_workload(consumer, spec, code, 1).unwrap();
    let code_nft_events = market.chain.events_by_topic("erc721.mint").len();
    println!("\nworkload {workload}: code NFT minted (total NFT mints: {code_nft_events})");

    let executor = market.register_executor(500);
    market.executor_join(executor, workload).unwrap();
    let assignments: Vec<_> = providers.iter().map(|&p| (p, executor)).collect();
    let (exec, fin) = market.run_full_lifecycle(workload, &assignments).unwrap();

    println!("\n== settlement in DATA tokens ==");
    for (p, share) in &fin.provider_shares {
        println!(
            "provider {p}: {share} DATA (on-chain: {})",
            market.chain.state.erc20.balance_of(token, p)
        );
    }
    println!(
        "executor fee: {} DATA; consumer refund brings balance to {}",
        market.chain.state.erc20.balance_of(token, &executor),
        market.chain.state.erc20.balance_of(token, &consumer)
    );
    println!("validation accuracy: {:.3}", exec.validation_score);

    // 4. Light-client participation proofs (reward-dispute evidence).
    println!("\n== participation proofs ==");
    for &p in &providers {
        let (proof, header) = market.prove_participation(workload, p).unwrap();
        assert!(proof.verify(&header));
        println!(
            "provider {p}: participation tx {} proven in block {}",
            proof.tx_hash.short(),
            proof.block_height
        );
    }

    // Supply is conserved: nothing minted or burned by the lifecycle.
    assert_eq!(market.chain.state.erc20.total_supply(token), Some(500_000));
    println!("\ntoken supply conserved at 500000 DATA");
}
