//! Adversarial integration tests (experiment E12): every §II-E
//! tamper-resistance requirement is attacked and the platform must detect
//! and contain each attack.

use pds2::crypto::sha256;
use pds2::market::marketplace::{MarketError, Marketplace, StorageChoice};
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::ml::data::gaussian_blobs;
use pds2::storage::semantic::{MetaValue, Metadata, Requirement};
use pds2::tee::measurement::EnclaveCode;
use pds2_chain::address::Address;
use pds2_chain::block::BlockHeader;
use pds2_chain::chain::{Blockchain, ChainError};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::KeyPair;

fn meta() -> Metadata {
    Metadata::new().with(
        "type",
        MetaValue::Class("sensor/environment/temperature".into()),
        0,
    )
}

fn spec_for(code: &EnclaveCode, min_providers: u32) -> WorkloadSpec {
    WorkloadSpec {
        title: "adversarial".into(),
        precondition: Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment".into(),
        },
        task: TaskKind::BinaryClassification,
        feature_dim: 3,
        provider_reward: 10_000,
        executor_fee: 500,
        reward_scheme: RewardScheme::ProportionalToRecords,
        min_providers,
        min_records: 10,
        code_measurement: code.measurement(),
        validation: gaussian_blobs(20, 3, 0.7, 5),
        local_epochs: 4,
        aggregation_rounds: 2,
        dp_noise_multiplier: None,
        reward_token: None,
        data_bounds: None,
    }
}

/// Attack 1: an executor on a *revoked* platform (disclosed side-channel
/// compromise) tries to join a workload.
#[test]
fn revoked_platform_cannot_join() {
    let mut market = Marketplace::new(1);
    let consumer = market.register_consumer(1, 1_000_000);
    let provider = market.register_provider(2, StorageChoice::Local);
    market.provider_add_device(provider).unwrap();
    market
        .provider_ingest(provider, 0, &gaussian_blobs(40, 3, 0.7, 3), meta())
        .unwrap();
    let compromised = market.register_executor(10);
    let healthy = market.register_executor(11);
    let code = EnclaveCode::new("trainer", 1, b"bin".to_vec());
    let workload = market
        .submit_workload(consumer, spec_for(&code, 1), code, 2)
        .unwrap();
    // Governance revokes the compromised executor's platform. Platforms
    // are seed-deterministic, so the id can be recomputed independently.
    let compromised_platform = {
        use pds2::tee::cost::CostModel;
        use pds2::tee::platform::Platform;
        Platform::new(10, CostModel::default()).id()
    };
    market.attestation.revoke(compromised_platform);
    let err = market.executor_join(compromised, workload).unwrap_err();
    assert!(matches!(err, MarketError::Attestation(_)), "{err}");
    // The healthy platform still joins fine.
    market.executor_join(healthy, workload).unwrap();
}

/// Attack 2: the workload consumer ships different code than the spec
/// promised providers.
#[test]
fn code_swap_rejected_at_submission() {
    let mut market = Marketplace::new(2);
    let consumer = market.register_consumer(1, 1_000_000);
    let advertised = EnclaveCode::new("trainer", 1, b"advertised".to_vec());
    let actual = EnclaveCode::new("trainer", 1, b"data-exfiltrator".to_vec());
    let err = market
        .submit_workload(consumer, spec_for(&advertised, 1), actual, 1)
        .unwrap_err();
    assert!(matches!(err, MarketError::Attestation(_)));
}

/// Attack 3: a forged block from a non-validator is rejected by honest
/// nodes.
#[test]
fn forged_block_rejected() {
    let alice = KeyPair::from_seed(1);
    let chain = Blockchain::single_validator(
        1000,
        &[(Address::of(&alice.public), 1_000)],
        ContractRegistry::new(),
    );
    let rogue = KeyPair::from_seed(666);
    let header = BlockHeader::new_signed(
        &rogue,
        0,
        pds2::crypto::Digest::ZERO,
        sha256(b"fake-state"),
        pds2::crypto::Digest::ZERO,
        0,
        0,
        0,
    );
    let block = pds2_chain::block::Block {
        header,
        transactions: Vec::new(),
    };
    assert_eq!(
        chain.validate_external_block(&block),
        Err(ChainError::WrongProposer)
    );
}

/// Attack 4: replaying a transaction (double spend attempt).
#[test]
fn transaction_replay_rejected() {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut chain = Blockchain::single_validator(
        1000,
        &[(Address::of(&alice.public), 1_000)],
        ContractRegistry::new(),
    );
    let tx = Transaction {
        from: alice.public.clone(),
        nonce: 0,
        kind: TxKind::Transfer {
            to: bob,
            amount: 600,
        },
        gas_limit: 100_000,
        max_fee_per_gas: 0,
        priority_fee_per_gas: 0,
    }
    .sign(&alice);
    chain.submit(tx.clone()).unwrap();
    chain.produce_block();
    assert_eq!(chain.state.balance(&bob), 600);
    // Replay: identical bytes.
    assert_eq!(chain.submit(tx.clone()), Err(ChainError::Duplicate));
    // Replay with a "new" submission after pruning the seen-set is still
    // dead because the nonce moved on.
    let replayed = Transaction {
        from: alice.public.clone(),
        nonce: 0,
        kind: TxKind::Transfer {
            to: bob,
            amount: 600,
        },
        gas_limit: 100_001, // different hash, same nonce
        max_fee_per_gas: 0,
        priority_fee_per_gas: 0,
    }
    .sign(&alice);
    assert!(matches!(
        chain.submit(replayed),
        Err(ChainError::StaleNonce { .. })
    ));
    assert_eq!(chain.state.balance(&bob), 600, "no double spend");
}

/// Attack 5: a lying executor fleet — 1 of 3 forges; the forged result is
/// outvoted and the forger slashed. With 2 of 3 forging *different*
/// values, finalization is blocked entirely.
#[test]
fn result_forgery_contained_by_agreement() {
    let mut market = Marketplace::new(3);
    let consumer = market.register_consumer(1, 1_000_000);
    let mut providers = Vec::new();
    let shards = gaussian_blobs(120, 3, 0.7, 3).partition_iid(2, 4);
    for (i, shard) in shards.iter().enumerate() {
        let p = market.register_provider(100 + i as u64, StorageChoice::Local);
        market.provider_add_device(p).unwrap();
        market.provider_ingest(p, 0, shard, meta()).unwrap();
        providers.push(p);
    }
    let executors: Vec<_> = (0..3).map(|i| market.register_executor(200 + i)).collect();
    let code = EnclaveCode::new("trainer", 1, b"bin".to_vec());
    let workload = market
        .submit_workload(consumer, spec_for(&code, 2), code, 3)
        .unwrap();
    for &e in &executors {
        market.executor_join(e, workload).unwrap();
    }
    // Data goes to executors 0 and 1; executor 2 stays dataless.
    market
        .provider_accept(providers[0], workload, executors[0])
        .unwrap();
    market
        .provider_accept(providers[1], workload, executors[1])
        .unwrap();
    assert!(market.try_start(workload).unwrap());
    let exec = market.execute(workload).unwrap();
    market
        .executor_submit_forged_result(executors[2], workload, sha256(b"lie"))
        .unwrap();
    let fin = market.finalize(workload).unwrap();
    assert_eq!(fin.slashed, vec![executors[2]]);
    let st = market.workload_state(workload).unwrap();
    assert_eq!(st.result, Some(exec.result_hash), "honest result prevailed");
}

/// Attack 6: storage operator serves corrupted ciphertext — the executor
/// detects it via the authentication tag.
#[test]
fn corrupted_sealed_payload_detected() {
    use pds2::crypto::chacha20::{seal, SealedBlob};
    use pds2::storage::store::ThirdPartyStore;
    let key = [7u8; 32];
    let blob = seal(&key, [1u8; 12], b"sensor readings");
    // Operator flips a ciphertext bit in transit.
    let corrupted = SealedBlob {
        nonce: blob.nonce,
        ciphertext: {
            let mut c = blob.ciphertext.clone();
            c[0] ^= 1;
            c
        },
        tag: blob.tag,
    };
    assert!(ThirdPartyStore::unseal_payload(&key, &corrupted).is_err());
    assert!(ThirdPartyStore::unseal_payload(&key, &blob).is_ok());
}

/// Attack 7: certificate tampering — inflating the reading count to claim
/// a larger reward share.
#[test]
fn certificate_inflation_detected() {
    use pds2::market::certificate::ParticipationCertificate;
    use pds2::storage::store::RecordId;
    let provider = KeyPair::from_seed(9);
    let executor = Address::of(&KeyPair::from_seed(10).public);
    let contract = Address::contract(&executor, 0);
    let mut cert = ParticipationCertificate::issue(
        &provider,
        1,
        contract,
        vec![RecordId(sha256(b"r"))],
        50,
        executor,
        100,
    );
    assert!(cert.verify(1, contract, executor, 10));
    cert.n_readings = 5_000;
    assert!(!cert.verify(1, contract, executor, 10));
}
