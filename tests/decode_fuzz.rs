//! Decode-robustness: every parser that faces bytes from the network or
//! the chain must reject hostile input with an error — never panic, never
//! over-allocate.

use pds2::market::authenticity::SignedReading;
use pds2::market::certificate::ParticipationCertificate;
use pds2::market::workload::WorkloadSpec;
use pds2::market::WorkloadState;
use pds2::storage::semantic::Requirement;
use pds2_chain::block::BlockHeader;
use pds2_chain::erc20::Erc20Op;
use pds2_chain::erc721::Erc721Op;
use pds2_chain::tx::SignedTransaction;
use pds2_crypto::codec::Decode;
use pds2_crypto::{PublicKey, Signature};
use proptest::prelude::*;

fn arbitrary_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

macro_rules! fuzz_decode {
    ($name:ident, $ty:ty) => {
        proptest! {
            #[test]
            fn $name(bytes in arbitrary_bytes()) {
                // Must return Ok or Err, never panic or hang.
                let _ = <$ty>::from_bytes(&bytes);
            }
        }
    };
}

fuzz_decode!(signed_transaction_never_panics, SignedTransaction);
fuzz_decode!(block_header_never_panics, BlockHeader);
fuzz_decode!(signature_never_panics, Signature);
fuzz_decode!(public_key_never_panics, PublicKey);
fuzz_decode!(erc20_op_never_panics, Erc20Op);
fuzz_decode!(erc721_op_never_panics, Erc721Op);
fuzz_decode!(workload_spec_never_panics, WorkloadSpec);
fuzz_decode!(signed_reading_never_panics, SignedReading);
fuzz_decode!(certificate_never_panics, ParticipationCertificate);
fuzz_decode!(requirement_never_panics, Requirement);
fuzz_decode!(smt_proof_never_panics, pds2_chain::SmtProof);
fuzz_decode!(partial_sig_never_panics, pds2_gov::PartialSig);

proptest! {
    #[test]
    fn workload_state_never_panics(bytes in arbitrary_bytes()) {
        let _ = WorkloadState::from_snapshot(&bytes);
    }

    /// Bit-flipping a valid encoding either still decodes (to a different
    /// value whose signature then fails) or errors — never panics.
    #[test]
    fn bitflipped_transaction_is_rejected_or_unverifiable(
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        use pds2_chain::address::Address;
        use pds2_chain::tx::{Transaction, TxKind};
        use pds2_crypto::{Encode, KeyPair};
        let kp = KeyPair::from_seed(1);
        let tx = Transaction {
            from: kp.public.clone(),
            nonce: 3,
            kind: TxKind::Transfer {
                to: Address::of(&KeyPair::from_seed(2).public),
                amount: 77,
            },
            gas_limit: 55_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&kp);
        let mut bytes = tx.to_bytes();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match SignedTransaction::from_bytes(&bytes) {
            Err(_) => {} // malformed: rejected at decode
            Ok(decoded) => {
                // Structurally valid: the signature must catch the change.
                prop_assert!(
                    !decoded.verify_signature() || decoded == tx,
                    "bit flip must invalidate the signature"
                );
            }
        }
    }

    /// Bit-flipping a valid threshold partial signature on the wire must
    /// either fail to decode or be rejected by the aggregator's
    /// dual-exponentiation check — a byzantine shareholder cannot smuggle
    /// a corrupted partial into an aggregate.
    #[test]
    fn bitflipped_partial_sig_is_rejected_or_unverifiable(
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        use pds2_crypto::Encode;
        use pds2_gov::dkg::{run_dkg_quiet, ThresholdParams};
        use pds2_gov::sign::{nonce_commitment, partial_sign, NonceGuard};
        use pds2_gov::{PartialSig, SigningSession};

        let params = ThresholdParams::new(3, 4).unwrap();
        let (committee, shares) = run_dkg_quiet(0xF122, params).unwrap();
        let msg = b"wire partial";
        let nonces: Vec<(u64, _)> = shares[..3]
            .iter()
            .map(|s| (s.index, nonce_commitment(s, msg, 0)))
            .collect();
        let partial =
            partial_sign(&shares[0], &committee, msg, 0, &nonces, &mut NonceGuard::new()).unwrap();
        let mut bytes = partial.to_bytes();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match PartialSig::from_bytes(&bytes) {
            Err(_) => {} // malformed: rejected at decode
            Ok(decoded) => {
                let mut session =
                    SigningSession::new(&committee, msg, 0, nonces.clone()).unwrap();
                prop_assert!(
                    session.offer(&committee, &decoded).is_err() || decoded == partial,
                    "flipped partial must fail the dual-exp check"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse-Merkle-proof mutations: a light client accepts state only
// through `verify_proof` against a header root, so every mutation of a
// serialized proof — truncation at every prefix length, a bit flip at
// every position, swapping any two sibling hashes — must either fail to
// decode or fail verification. Exercised for both inclusion and
// non-inclusion proofs from a seeded 64-leaf tree.
// ---------------------------------------------------------------------------

mod smt_proof_mutations {
    use pds2_chain::smt::{verify_proof, SmtProof, SmtTree};
    use pds2_crypto::codec::{Decode, Encode};
    use pds2_crypto::{sha256, Digest};

    fn key(i: u64) -> Digest {
        sha256(&i.to_le_bytes())
    }

    fn value_bytes(i: u64) -> Vec<u8> {
        format!("leaf-value-{i}").into_bytes()
    }

    /// A 64-leaf tree; keys 0..64 are present, everything else absent.
    fn fixture() -> (SmtTree, Digest) {
        let leaves: Vec<(Digest, Digest)> =
            (0..64).map(|i| (key(i), sha256(&value_bytes(i)))).collect();
        let (tree, _) = SmtTree::from_leaves(leaves);
        let root = tree.root_hash();
        (tree, root)
    }

    /// The value a verifier would check for probe key `i`, honoring the
    /// fixture's present/absent split.
    fn expected_value(i: u64) -> Option<Vec<u8>> {
        (i < 64).then(|| value_bytes(i))
    }

    /// Probe keys: a present one (inclusion) and an absent one whose
    /// path ends at a mismatched witness leaf or an empty subtree
    /// (non-inclusion).
    const PROBES: [u64; 4] = [3, 41, 130, 9_999];

    #[test]
    fn smt_proof_roundtrip_covers_inclusion_and_absence() {
        let (tree, root) = fixture();
        for i in (0..64).chain(100..164) {
            let proof = tree.prove(&key(i));
            let back = SmtProof::from_bytes(&proof.to_bytes()).expect("roundtrip decodes");
            assert_eq!(back, proof);
            let value = expected_value(i);
            assert!(
                verify_proof(&root, &key(i), value.as_deref(), &back),
                "round-tripped proof must verify for key {i}"
            );
            // The same proof must not prove the opposite claim.
            let opposite = match value {
                Some(_) => None,
                None => Some(value_bytes(i)),
            };
            assert!(
                !verify_proof(&root, &key(i), opposite.as_deref(), &back),
                "proof proved the opposite claim for key {i}"
            );
        }
    }

    #[test]
    fn truncated_smt_proof_never_verifies() {
        let (tree, root) = fixture();
        for i in PROBES {
            let wire = tree.prove(&key(i)).to_bytes();
            let value = expected_value(i);
            for len in 0..wire.len() {
                if let Ok(p) = SmtProof::from_bytes(&wire[..len]) {
                    assert!(
                        !verify_proof(&root, &key(i), value.as_deref(), &p),
                        "key {i}: truncation to {len}/{} bytes still verifies",
                        wire.len()
                    );
                }
            }
        }
    }

    #[test]
    fn bitflipped_smt_proof_never_verifies() {
        let (tree, root) = fixture();
        for i in PROBES {
            let wire = tree.prove(&key(i)).to_bytes();
            let value = expected_value(i);
            for idx in 0..wire.len() {
                for bit in 0..8 {
                    let mut bytes = wire.clone();
                    bytes[idx] ^= 1 << bit;
                    if let Ok(p) = SmtProof::from_bytes(&bytes) {
                        assert!(
                            !verify_proof(&root, &key(i), value.as_deref(), &p),
                            "key {i}: flip at byte {idx} bit {bit} still verifies"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sibling_swapped_smt_proof_never_verifies() {
        let (tree, root) = fixture();
        for i in PROBES {
            let proof = tree.prove(&key(i));
            let value = expected_value(i);
            let n = proof.siblings.len();
            assert!(n > 1, "key {i}: proof too shallow to swap");
            for a in 0..n {
                for b in a + 1..n {
                    if proof.siblings[a] == proof.siblings[b] {
                        // Swapping identical digests (e.g. two empty
                        // subtrees) is byte-identical — not a mutation.
                        continue;
                    }
                    let mut mutated = proof.clone();
                    mutated.siblings.swap(a, b);
                    assert!(
                        !verify_proof(&root, &key(i), value.as_deref(), &mutated),
                        "key {i}: swapping siblings {a}<->{b} still verifies"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Corrupted-in-flight variants: the exact damage the chaos layer's
// byzantine links inflict — truncation at every prefix length and a bit
// flip at every byte position — applied exhaustively to the codecs that
// cross the simulated network (tx, block, gossip model). Every variant
// must produce `Err` or a semantically-rejected value; none may panic.
// ---------------------------------------------------------------------------

mod corrupted_in_flight {
    use pds2_chain::address::Address;
    use pds2_chain::block::Block;
    use pds2_chain::chain::Blockchain;
    use pds2_chain::contract::ContractRegistry;
    use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
    use pds2_crypto::codec::{Decode, Encode};
    use pds2_crypto::KeyPair;
    use pds2_learning::gossip::GossipMsg;

    fn sample_transaction() -> SignedTransaction {
        let kp = KeyPair::from_seed(1);
        Transaction {
            from: kp.public.clone(),
            nonce: 9,
            kind: TxKind::Transfer {
                to: Address::of(&KeyPair::from_seed(2).public),
                amount: 1_234,
            },
            gas_limit: 90_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&kp)
    }

    fn sample_block() -> Block {
        let alice = KeyPair::from_seed(1);
        let mut chain = Blockchain::single_validator(
            55,
            &[(Address::of(&alice.public), 10_000)],
            ContractRegistry::new(),
        );
        chain
            .submit(
                Transaction {
                    from: alice.public.clone(),
                    nonce: 0,
                    kind: TxKind::Transfer {
                        to: Address::of(&KeyPair::from_seed(2).public),
                        amount: 5,
                    },
                    gas_limit: 100_000,
                    max_fee_per_gas: 0,
                    priority_fee_per_gas: 0,
                }
                .sign(&alice),
            )
            .unwrap();
        chain.produce_block()
    }

    fn sample_gossip_msg() -> GossipMsg {
        GossipMsg::new(vec![0.25, -1.5, 3.75, 0.0], 17, true)
    }

    /// Decoding every strict prefix must error — truncation in flight can
    /// never yield a usable value, let alone a panic.
    fn assert_truncation_rejected<T: Decode>(wire: &[u8], what: &str) {
        for len in 0..wire.len() {
            assert!(
                T::from_bytes(&wire[..len]).is_err(),
                "{what}: truncation to {len}/{} bytes decoded successfully",
                wire.len()
            );
        }
    }

    #[test]
    fn truncated_transaction_always_errors() {
        assert_truncation_rejected::<SignedTransaction>(&sample_transaction().to_bytes(), "tx");
    }

    #[test]
    fn truncated_block_always_errors() {
        assert_truncation_rejected::<Block>(&sample_block().to_bytes(), "block");
    }

    #[test]
    fn truncated_gossip_msg_always_errors() {
        assert_truncation_rejected::<GossipMsg>(&sample_gossip_msg().to_bytes(), "gossip");
    }

    #[test]
    fn bitflipped_transaction_every_position() {
        let tx = sample_transaction();
        let wire = tx.to_bytes();
        for idx in 0..wire.len() {
            for bit in 0..8 {
                let mut bytes = wire.clone();
                bytes[idx] ^= 1 << bit;
                if let Ok(decoded) = SignedTransaction::from_bytes(&bytes) {
                    assert!(
                        !decoded.verify_signature() || decoded == tx,
                        "flip at byte {idx} bit {bit} produced a different tx \
                         with a valid signature"
                    );
                }
            }
        }
    }

    #[test]
    fn bitflipped_block_every_position() {
        let block = sample_block();
        let wire = block.to_bytes();
        for idx in 0..wire.len() {
            for bit in 0..8 {
                let mut bytes = wire.clone();
                bytes[idx] ^= 1 << bit;
                if let Ok(decoded) = Block::from_bytes(&bytes) {
                    // A decodable mutant must be caught by the block's own
                    // integrity checks: proposer signature over the header,
                    // or the tx-root commitment over the body.
                    let intact = decoded.header.verify_signature()
                        && decoded.header.tx_root == Block::compute_tx_root(&decoded.transactions)
                        && decoded.transactions.iter().all(|t| t.verify_signature());
                    assert!(
                        !intact || decoded == block,
                        "flip at byte {idx} bit {bit} produced a different block \
                         passing all integrity checks"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_signature_always_errors() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(b"truncation probe");
        assert_truncation_rejected::<pds2_crypto::Signature>(&sig.to_bytes(), "signature");
    }

    #[test]
    fn truncated_public_key_always_errors() {
        let kp = KeyPair::from_seed(7);
        assert_truncation_rejected::<pds2_crypto::PublicKey>(&kp.public.to_bytes(), "public key");
    }

    /// A bit-flipped signature encoding either fails to decode or decodes
    /// to a signature the (unchanged) key rejects — on both the fast and
    /// the schoolbook verification paths.
    #[test]
    fn bitflipped_signature_every_position() {
        let kp = KeyPair::from_seed(7);
        let msg = b"bit flip probe";
        let sig = kp.sign(msg);
        let wire = sig.to_bytes();
        for idx in 0..wire.len() {
            for bit in 0..8 {
                let mut bytes = wire.clone();
                bytes[idx] ^= 1 << bit;
                if let Ok(decoded) = pds2_crypto::Signature::from_bytes(&bytes) {
                    let fast = kp.public.verify(msg, &decoded);
                    let reference = kp.public.verify_reference(msg, &decoded);
                    assert_eq!(fast, reference, "paths split at byte {idx} bit {bit}");
                    assert!(
                        !fast || decoded == sig,
                        "flip at byte {idx} bit {bit} produced a different \
                         signature that still verifies"
                    );
                }
            }
        }
    }

    /// A bit-flipped public-key encoding either fails to decode or decodes
    /// to a key that rejects the original signature — again identically on
    /// both verification paths.
    #[test]
    fn bitflipped_public_key_every_position() {
        let kp = KeyPair::from_seed(7);
        let msg = b"bit flip probe";
        let sig = kp.sign(msg);
        let wire = kp.public.to_bytes();
        for idx in 0..wire.len() {
            for bit in 0..8 {
                let mut bytes = wire.clone();
                bytes[idx] ^= 1 << bit;
                if let Ok(decoded) = pds2_crypto::PublicKey::from_bytes(&bytes) {
                    let fast = decoded.verify(msg, &sig);
                    let reference = decoded.verify_reference(msg, &sig);
                    assert_eq!(fast, reference, "paths split at byte {idx} bit {bit}");
                    assert!(
                        !fast || decoded == kp.public,
                        "flip at byte {idx} bit {bit} produced a different \
                         key accepting the original signature"
                    );
                }
            }
        }
    }

    #[test]
    fn bitflipped_gossip_msg_every_position() {
        let msg = sample_gossip_msg();
        let wire = msg.to_bytes();
        for idx in 0..wire.len() {
            for bit in 0..8 {
                let mut bytes = wire.clone();
                bytes[idx] ^= 1 << bit;
                if let Ok(decoded) = GossipMsg::from_bytes(&bytes) {
                    assert!(
                        !decoded.verify() || decoded == msg,
                        "flip at byte {idx} bit {bit} survived the content digest"
                    );
                }
            }
        }
    }
}
