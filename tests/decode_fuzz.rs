//! Decode-robustness: every parser that faces bytes from the network or
//! the chain must reject hostile input with an error — never panic, never
//! over-allocate.

use pds2::market::authenticity::SignedReading;
use pds2::market::certificate::ParticipationCertificate;
use pds2::market::workload::WorkloadSpec;
use pds2::market::WorkloadState;
use pds2::storage::semantic::Requirement;
use pds2_chain::block::BlockHeader;
use pds2_chain::erc20::Erc20Op;
use pds2_chain::erc721::Erc721Op;
use pds2_chain::tx::SignedTransaction;
use pds2_crypto::codec::Decode;
use proptest::prelude::*;

fn arbitrary_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..512)
}

macro_rules! fuzz_decode {
    ($name:ident, $ty:ty) => {
        proptest! {
            #[test]
            fn $name(bytes in arbitrary_bytes()) {
                // Must return Ok or Err, never panic or hang.
                let _ = <$ty>::from_bytes(&bytes);
            }
        }
    };
}

fuzz_decode!(signed_transaction_never_panics, SignedTransaction);
fuzz_decode!(block_header_never_panics, BlockHeader);
fuzz_decode!(erc20_op_never_panics, Erc20Op);
fuzz_decode!(erc721_op_never_panics, Erc721Op);
fuzz_decode!(workload_spec_never_panics, WorkloadSpec);
fuzz_decode!(signed_reading_never_panics, SignedReading);
fuzz_decode!(certificate_never_panics, ParticipationCertificate);
fuzz_decode!(requirement_never_panics, Requirement);

proptest! {
    #[test]
    fn workload_state_never_panics(bytes in arbitrary_bytes()) {
        let _ = WorkloadState::from_snapshot(&bytes);
    }

    /// Bit-flipping a valid encoding either still decodes (to a different
    /// value whose signature then fails) or errors — never panics.
    #[test]
    fn bitflipped_transaction_is_rejected_or_unverifiable(
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        use pds2_chain::address::Address;
        use pds2_chain::tx::{Transaction, TxKind};
        use pds2_crypto::{Encode, KeyPair};
        let kp = KeyPair::from_seed(1);
        let tx = Transaction {
            from: kp.public.clone(),
            nonce: 3,
            kind: TxKind::Transfer {
                to: Address::of(&KeyPair::from_seed(2).public),
                amount: 77,
            },
            gas_limit: 55_000,
        }
        .sign(&kp);
        let mut bytes = tx.to_bytes();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        match SignedTransaction::from_bytes(&bytes) {
            Err(_) => {} // malformed: rejected at decode
            Ok(decoded) => {
                // Structurally valid: the signature must catch the change.
                prop_assert!(
                    !decoded.verify_signature() || decoded == tx,
                    "bit flip must invalidate the signature"
                );
            }
        }
    }
}
