//! Observability determinism: the `pds2-obs` trace digest must be a
//! pure function of (seed, fault plan, workload) — bit-identical across
//! reruns, `PDS2_THREADS` worker counts, and sink choices — and counter
//! snapshots must mirror the simulator's own accounting.
//!
//! Every test takes `obs::test_lock()`: the registry and collector are
//! process-global, so concurrent tests in this binary would interleave
//! captures and increments.

use pds2::market::marketplace::{Marketplace, StorageChoice};
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::storage::semantic::{MetaValue, Metadata, Requirement};
use pds2::tee::measurement::EnclaveCode;
use pds2_bench::trace_scenario;
use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::sync::{ChainReplica, GenesisFactory};
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::{Digest, KeyPair};
use pds2_learning::gossip::{run_gossip_experiment_with_faults, GossipConfig};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_net::{FaultPlan, LinkEffect, LinkModel, LinkScope, Simulator};
use pds2_obs as obs;
use pds2_obs::report::{RawEvent, TraceAnalysis};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const N_REPLICAS: usize = 4;

fn factory() -> GenesisFactory {
    Arc::new(|| {
        Blockchain::new(
            (0..N_REPLICAS as u64)
                .map(|i| KeyPair::from_seed(9_000 + i))
                .collect(),
            &[(Address::of(&KeyPair::from_seed(1).public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig::default(),
        )
    })
}

fn chaos_chain_run(seed: u64, until_us: u64) -> pds2_net::NetStats {
    let plan = FaultPlan::new(0x0B5)
        .partition(1_500_000, 3_500_000, vec![vec![0, 1], vec![2, 3]])
        .crash(2, 4_000_000, Some(5_500_000))
        .byzantine(
            500_000,
            2_500_000,
            LinkScope::from_node(3),
            LinkEffect::Corrupt { probability: 0.3 },
        );
    let f = factory();
    let replicas: Vec<ChainReplica> = (0..N_REPLICAS)
        .map(|i| ChainReplica::new(f.clone(), Some(i), 200_000, 150_000))
        .collect();
    let link = LinkModel {
        base_latency_us: 5_000,
        jitter_us: 2_000,
        bandwidth_bytes_per_sec: 12_500_000,
        drop_probability: 0.0,
        node_slowdown: Vec::new(),
        topology: None,
    };
    let mut sim = Simulator::new(replicas, link, seed);
    sim.install_fault_plan(plan);
    sim.enable_trace();
    sim.run_until(until_us);
    sim.stats()
}

/// Same (seed, plan, workload) ⇒ identical `trace_digest()` across
/// threads 1/4/8 and with ring-buffer vs JSONL vs null sinks — the
/// tentpole acceptance criterion, on the full chaos stack.
#[test]
fn chain_chaos_trace_digest_is_thread_and_sink_invariant() {
    let _g = obs::test_lock();
    let digest_with = |kind: obs::SinkKind, threads: usize| {
        let cap = obs::capture(kind);
        pds2_par::with_threads(threads, || chaos_chain_run(77, 9_000_000));
        cap.finish().digest
    };

    let ring = digest_with(obs::SinkKind::Ring(4096), 1);
    assert_eq!(
        ring,
        obs::trace_digest(),
        "trace_digest() must report the finished capture"
    );

    let path = std::env::temp_dir().join("pds2_obs_determinism.jsonl");
    let jsonl = digest_with(obs::SinkKind::Jsonl(path.clone()), 1);
    let lines = std::fs::read_to_string(&path).expect("jsonl trace written");
    std::fs::remove_file(&path).ok();
    assert!(!lines.is_empty(), "jsonl sink must record events");
    assert_eq!(ring, jsonl, "ring vs JSONL sink changed the digest");

    for threads in THREAD_COUNTS {
        let d = digest_with(obs::SinkKind::Null, threads);
        assert_eq!(d, ring, "trace digest diverged at {threads} threads");
    }
}

/// The fee market (DESIGN.md §5f) under observation: a congestion ramp
/// that drives the base fee up and back down must produce the same
/// per-block base-fee trajectory, the same selection order, the same
/// state root *and* the same trace digest across ring/JSONL/null sinks
/// and `PDS2_THREADS` ∈ {1, 4, 8}.
#[test]
fn fee_market_trajectory_is_thread_and_sink_invariant() {
    let _g = obs::test_lock();
    let scenario = || {
        pds2_chain::sigcache::clear();
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(9000)],
            &[(Address::of(&alice.public), 1_000_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                block_gas_limit: 60_000,
                initial_base_fee: 100,
                max_txs_per_block: usize::MAX,
                ..Default::default()
            },
        );
        for nonce in 0..24u64 {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce,
                kind: TxKind::Transfer {
                    to: bob,
                    amount: 1 + nonce as u128,
                },
                gas_limit: 30_000,
                max_fee_per_gas: 1_000_000,
                priority_fee_per_gas: nonce % 5,
            }
            .sign(&alice);
            chain.submit(tx).expect("admission");
        }
        let mut fees = Vec::new();
        let mut order: Vec<Digest> = Vec::new();
        for _ in 0..16 {
            let block = chain.produce_block();
            fees.push(block.header.base_fee);
            order.extend(block.transactions.iter().map(|t| t.hash()));
        }
        (fees, order, chain.state.state_root())
    };
    let run_with = |kind: obs::SinkKind, threads: usize| {
        let cap = obs::capture(kind);
        let out = pds2_par::with_threads(threads, scenario);
        (cap.finish(), out)
    };

    let (ring, base) = run_with(obs::SinkKind::Ring(usize::MAX), 1);
    assert!(ring.events > 0, "block production must emit trace events");
    let fees = &base.0;
    assert!(
        fees[11] > fees[0],
        "congestion must raise the fee: {fees:?}"
    );
    assert!(
        fees[15] < fees[11],
        "idle blocks must decay the fee: {fees:?}"
    );
    assert_eq!(base.1.len(), 24, "every transfer must land");

    let path = std::env::temp_dir().join("pds2_obs_fee_market.jsonl");
    let (jsonl, jsonl_out) = run_with(obs::SinkKind::Jsonl(path.clone()), 1);
    let body = std::fs::read_to_string(&path).expect("jsonl trace written");
    std::fs::remove_file(&path).ok();
    assert!(!body.is_empty(), "jsonl sink must record events");
    assert_eq!(ring.digest, jsonl.digest, "ring vs JSONL digest");
    assert_eq!(jsonl_out, base, "ring vs JSONL fee trajectory");

    for threads in THREAD_COUNTS {
        let (cap, out) = run_with(obs::SinkKind::Null, threads);
        assert_eq!(
            cap.digest, ring.digest,
            "fee-market trace diverged at {threads} threads"
        );
        assert_eq!(out, base, "fee trajectory diverged at {threads} threads");
    }
}

/// Counter deltas around one serial run mirror the simulator's own
/// `NetStats` exactly, and repeat exactly on a rerun (the sigcache
/// counters are excluded: warmth legitimately shifts hit/miss splits).
#[test]
fn chain_counters_mirror_net_stats_and_replay() {
    let _g = obs::test_lock();
    let run_with_deltas = || {
        let before = obs::snapshot();
        let stats = chaos_chain_run(78, 8_000_000);
        let deltas = obs::snapshot().counter_deltas(&before);
        (stats, deltas)
    };
    let (stats, deltas) = run_with_deltas();
    assert_eq!(deltas["net.sent"], stats.sent);
    assert_eq!(deltas["net.delivered"], stats.delivered);
    assert_eq!(deltas["net.bytes_delivered"], stats.bytes_delivered);
    assert_eq!(deltas["net.dropped_partition"], stats.dropped_partition);
    assert_eq!(deltas["net.crashes"], stats.crashes);
    assert_eq!(deltas["net.recoveries"], stats.recoveries);
    assert_eq!(
        deltas["net.corrupted"] + deltas["net.dropped_fault"],
        stats.corrupted + stats.dropped_fault
    );
    assert!(deltas["chain.blocks_produced"] > 0, "{deltas:?}");
    assert!(deltas["chain.blocks_validated"] > 0, "{deltas:?}");

    let (stats2, deltas2) = run_with_deltas();
    assert_eq!(stats2, stats, "chaos run must replay bit-identically");
    let strip_sigcache = |d: &std::collections::BTreeMap<String, u64>| {
        d.iter()
            .filter(|(k, _)| !k.starts_with("chain.sigcache"))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip_sigcache(&deltas2),
        strip_sigcache(&deltas),
        "counter deltas must replay exactly for a serial workload"
    );
}

/// The marketplace lifecycle trace — contract phase transitions, escrow
/// funding, block production spans — is deterministic across reruns and
/// thread counts, and the lifecycle counters move as the contract walks
/// Open → Executing → Completed.
#[test]
fn marketplace_lifecycle_trace_is_deterministic() {
    let _g = obs::test_lock();
    let lifecycle = || {
        let mut market = Marketplace::new(5);
        let consumer = market.register_consumer(1, 10_000_000);
        let data = gaussian_blobs(240, 4, 0.7, 3);
        let (train, validation) = data.split(0.2, 4);
        let shards = train.partition_iid(3, 5);
        let mut providers = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            let p = market.register_provider(1000 + i as u64, StorageChoice::Local);
            market.provider_add_device(p).unwrap();
            let meta = Metadata::new().with(
                "type",
                MetaValue::Class("sensor/environment/temperature".into()),
                0,
            );
            market.provider_ingest(p, 0, shard, meta).unwrap();
            providers.push(p);
        }
        let executors: Vec<Address> = (0..2).map(|i| market.register_executor(2000 + i)).collect();
        let code = EnclaveCode::new("trainer", 1, b"trainer-v1".to_vec());
        let spec = WorkloadSpec {
            title: "obs".into(),
            precondition: Requirement::HasClass {
                attr: "type".into(),
                class: "sensor/environment".into(),
            },
            task: TaskKind::BinaryClassification,
            feature_dim: validation.dim() as u32,
            provider_reward: 30_000,
            executor_fee: 1_000,
            reward_scheme: RewardScheme::ProportionalToRecords,
            min_providers: 3,
            min_records: 20,
            code_measurement: code.measurement(),
            validation,
            local_epochs: 4,
            aggregation_rounds: 2,
            dp_noise_multiplier: None,
            reward_token: None,
            data_bounds: None,
        };
        let workload = market.submit_workload(consumer, spec, code, 2).unwrap();
        for &e in &executors {
            market.executor_join(e, workload).unwrap();
        }
        let assignments: Vec<_> = providers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, executors[i % 2]))
            .collect();
        market.run_full_lifecycle(workload, &assignments).unwrap();
    };

    let before = obs::snapshot();
    let cap = obs::capture(obs::SinkKind::Ring(usize::MAX));
    lifecycle();
    let report = cap.finish();
    let deltas = obs::snapshot().counter_deltas(&before);
    assert!(report.events > 0);
    assert_eq!(deltas["market.contracts_created"], 1);
    assert_eq!(deltas["market.contracts_started"], 1);
    assert_eq!(deltas["market.contracts_completed"], 1);
    assert_eq!(deltas["market.executions"], 1);
    assert!(deltas["market.fund_calls"] >= 1);
    assert!(deltas["chain.blocks_produced"] > 0);
    assert!(
        report
            .entries
            .iter()
            .any(|e| e.domain == "market" && e.name == "contract.phase"),
        "phase-transition events must be traced"
    );

    for threads in THREAD_COUNTS {
        let cap = obs::capture(obs::SinkKind::Null);
        pds2_par::with_threads(threads, lifecycle);
        let again = cap.finish();
        assert_eq!(
            again.digest, report.digest,
            "lifecycle trace diverged at {threads} threads"
        );
        assert_eq!(again.events, report.events);
    }
}

/// E16 acceptance: the shared trace-lifecycle scenario (faulty
/// marketplace lifecycle + chaos chain sync + gossip under corruption)
/// produces a causal DAG whose critical-path report — text and digest —
/// is bit-identical across `PDS2_THREADS` ∈ {1, 4, 8} and across the
/// ring and JSONL sinks, and every trace has a non-empty critical path.
#[test]
fn trace_lifecycle_critical_path_is_thread_and_sink_invariant() {
    let _g = obs::test_lock();
    const SEED: u64 = 0xE16;

    // Reference: ring capture analysed from in-memory events.
    let cap = obs::capture(obs::SinkKind::Ring(usize::MAX));
    trace_scenario::run(SEED);
    let ring = cap.finish();
    let raw: Vec<RawEvent> = ring.entries.iter().map(RawEvent::from).collect();
    let ring_analysis = TraceAnalysis::from_events(&raw);
    let ring_text = ring_analysis.render_text();
    assert!(!ring_analysis.traces.is_empty(), "scenario mints traces");
    for t in &ring_analysis.traces {
        assert!(
            !t.critical_path.is_empty(),
            "trace {} has an empty critical path",
            t.root_label
        );
    }
    // The lifecycle spans the whole submit→payout story: at least one
    // workload trace pairs a submit root with a payout, and the chaos
    // plan forces at least one retry event into the DAG.
    assert!(
        !ring_analysis.submit_to_payout_us.is_empty(),
        "completed workload must yield a submit→payout sample"
    );
    assert!(
        !ring_analysis.hop_latencies_us.is_empty(),
        "cross-node deliveries must yield hop latencies"
    );
    assert!(
        !ring_analysis.blocks_to_inclusion.is_empty(),
        "included txs must yield blocks-to-inclusion samples"
    );

    // JSONL capture: re-parse the file and require the identical report.
    let path = std::env::temp_dir().join("pds2_trace_e16_test.jsonl");
    let cap = obs::capture(obs::SinkKind::Jsonl(path.clone()));
    trace_scenario::run(SEED);
    let jsonl = cap.finish();
    let body = std::fs::read_to_string(&path).expect("jsonl written");
    std::fs::remove_file(&path).ok();
    let jsonl_analysis = TraceAnalysis::from_jsonl(&body);
    assert_eq!(ring.digest, jsonl.digest, "capture digest: ring vs jsonl");
    assert_eq!(
        ring_text,
        jsonl_analysis.render_text(),
        "critical-path report: ring vs jsonl reconstruction"
    );
    assert_eq!(
        ring_analysis.report_digest(),
        jsonl_analysis.report_digest()
    );

    // Thread sweep: the capture digest is a pure function of the seed.
    for threads in THREAD_COUNTS {
        let cap = obs::capture(obs::SinkKind::Null);
        pds2_par::with_threads(threads, || trace_scenario::run(SEED));
        let d = cap.finish().digest;
        assert_eq!(d, ring.digest, "E16 digest diverged at {threads} threads");
    }
}

/// Gossip learning under byzantine corruption: eval events are digested
/// deterministically at any thread count, and the migrated
/// `learning.corrupted_dropped` registry counter agrees with the
/// per-node totals summed into `GossipOutcome`.
#[test]
fn gossip_trace_and_corruption_counter_are_deterministic() {
    let _g = obs::test_lock();
    let run = || {
        let data = gaussian_blobs(400, 3, 0.7, 1);
        let (train, test) = data.split(0.25, 2);
        let shards = train.partition_iid(8, 3);
        let plan = FaultPlan::new(0xC0FF).byzantine(
            200_000,
            2_000_000,
            LinkScope::any(),
            LinkEffect::Corrupt { probability: 0.3 },
        );
        run_gossip_experiment_with_faults(
            shards,
            &test,
            GossipConfig {
                period_us: 100_000,
                ..Default::default()
            },
            LinkModel::instant(),
            7,
            &[1_500_000, 4_000_000],
            None,
            Some(plan),
            || LogisticRegression::new(3),
        )
    };

    let before = obs::snapshot();
    let cap = obs::capture(obs::SinkKind::Ring(usize::MAX));
    let out = run();
    let report = cap.finish();
    let deltas = obs::snapshot().counter_deltas(&before);
    assert!(out.corrupted_dropped > 0, "corruption must be observed");
    assert_eq!(
        deltas["learning.corrupted_dropped"], out.corrupted_dropped,
        "registry counter must agree with the bespoke per-node totals"
    );
    assert_eq!(deltas["learning.gossip_evals"], 2);
    let evals: Vec<_> = report
        .entries
        .iter()
        .filter(|e| e.domain == "learning" && e.name == "gossip.eval")
        .collect();
    assert_eq!(evals.len(), 2, "one eval event per evaluation point");

    for threads in THREAD_COUNTS {
        let cap = obs::capture(obs::SinkKind::Null);
        let again = pds2_par::with_threads(threads, run);
        let d = cap.finish().digest;
        assert_eq!(
            d, report.digest,
            "gossip trace diverged at {threads} threads"
        );
        assert_eq!(again.trace_hash, out.trace_hash);
    }
}

/// PR 10 tentpole acceptance: segment checkpoints (per-segment digests,
/// chained values, Merkle root) and burn-rate alert events are part of
/// the deterministic surface — bit-identical across `PDS2_THREADS`
/// ∈ {1, 4, 8} and ring/JSONL/null sinks, with the JSONL sink's
/// interleaved checkpoint rows exactly mirroring the report's.
#[test]
fn segment_checkpoints_and_alert_events_are_thread_and_sink_invariant() {
    let _g = obs::test_lock();
    let rule = pds2_obs::window::SloRule {
        name: "chaos.inclusion_latency",
        threshold: 1_000,
        budget_bp: 100,
        short_window_us: 500_000,
        long_window_us: 2_000_000,
        fire_burn_x100: 1000,
        min_count: 20,
    };
    // Chaos chain sync (multi-segment event volume) followed by a
    // serial latency stream that drives one fire → resolve alert cycle.
    let workload = move || {
        chaos_chain_run(79, 9_000_000);
        chaos_chain_run(80, 9_000_000);
        let mut mon = pds2_obs::window::SloMonitor::new(rule);
        for i in 0..600u64 {
            let v = if (200..300).contains(&i) && i % 2 == 0 {
                5_000
            } else {
                100
            };
            mon.observe(9_000_000 + i * 10_000, v);
        }
        assert_eq!(mon.fired_count(), 1, "the breach phase must fire once");
        assert!(!mon.firing(), "the recovery phase must resolve");
    };
    let run_with = |kind: obs::SinkKind, threads: usize| {
        let cap = obs::capture(kind);
        pds2_par::with_threads(threads, workload);
        cap.finish()
    };

    let ring = run_with(obs::SinkKind::Ring(usize::MAX), 1);
    assert!(
        ring.events > 2 * obs::SEGMENT_EVENTS,
        "workload must span multiple segments, got {} events",
        ring.events
    );
    assert!(ring.segments.len() >= 2);
    for (i, cp) in ring.segments.iter().enumerate() {
        assert_eq!(cp.index, i as u64, "checkpoint indices are dense");
    }
    assert_eq!(
        ring.segment_root,
        obs::segment_merkle_root(&ring.segments).to_hex(),
        "summary root must re-derive from the checkpoint list"
    );
    assert!(
        ring.entries
            .iter()
            .any(|e| e.domain == "slo" && e.name == "alert.fire"),
        "the alert transition must be a digested trace event"
    );

    // JSONL: digest, checkpoint rows and trailer all agree with ring.
    let path = std::env::temp_dir().join("pds2_obs_segments.jsonl");
    let jsonl = run_with(obs::SinkKind::Jsonl(path.clone()), 1);
    let body = std::fs::read_to_string(&path).expect("jsonl trace written");
    std::fs::remove_file(&path).ok();
    assert_eq!(ring.digest, jsonl.digest, "ring vs JSONL digest");
    assert_eq!(ring.segments, jsonl.segments, "ring vs JSONL checkpoints");
    assert_eq!(ring.segment_root, jsonl.segment_root);
    let checkpoint_rows: Vec<&str> = body
        .lines()
        .filter(|l| l.starts_with("{\"checkpoint\""))
        .collect();
    assert_eq!(
        checkpoint_rows.len(),
        jsonl.segments.len(),
        "one interleaved checkpoint row per segment"
    );
    for (row, cp) in checkpoint_rows.iter().zip(jsonl.segments.iter()) {
        assert_eq!(**row, cp.to_json(), "sink row mirrors the report");
    }
    assert!(
        body.lines()
            .any(|l| l.starts_with("{\"segment_root\"") && l.contains(&jsonl.segment_root)),
        "trailer row must carry the Merkle root"
    );

    for threads in THREAD_COUNTS {
        let d = run_with(obs::SinkKind::Null, threads);
        assert_eq!(
            d.digest, ring.digest,
            "digest diverged at {threads} threads"
        );
        assert_eq!(
            d.segments, ring.segments,
            "segment checkpoints diverged at {threads} threads"
        );
        assert_eq!(d.segment_root, ring.segment_root);
    }
}
