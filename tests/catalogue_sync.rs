//! OBSERVABILITY.md's metric catalogue must stay synchronized with the
//! code: every `counter!`/`gauge!`/`histogram!` call-site name in the
//! workspace needs a catalogue row, and every documented name must
//! still exist at a call site. Either direction failing means the
//! operator-facing documentation has drifted (the PR 9 staleness audit
//! found exactly this: mempool counters emitted nowhere despite being
//! the obvious forensics need).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Metric names at `counter!("…")` / `gauge!("…")` / `histogram!("…")`
/// call sites under `crates/*/src`. Names with a `test.` prefix are
/// unit-test fixtures, not part of the operational surface.
fn emitted_names() -> BTreeSet<String> {
    let crates = repo_root().join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates).expect("crates dir").flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            rust_sources(&src, &mut files);
        }
    }
    assert!(
        !files.is_empty(),
        "no rust sources found under crates/*/src"
    );
    let mut names = BTreeSet::new();
    for file in files {
        let body = std::fs::read_to_string(&file).unwrap_or_default();
        for macro_name in ["counter!(\"", "gauge!(\"", "histogram!(\""] {
            for (at, _) in body.match_indices(macro_name) {
                let rest = &body[at + macro_name.len()..];
                if let Some(end) = rest.find('"') {
                    let name = &rest[..end];
                    if !name.is_empty() && !name.starts_with("test.") {
                        names.insert(name.to_string());
                    }
                }
            }
        }
    }
    names
}

fn looks_like_metric_name(s: &str) -> bool {
    s.contains('.')
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".._".contains(c))
}

/// Expands one backtick span from the catalogue into metric names,
/// honouring the doc's `name_a/_b` suffix shorthand
/// (`market.contracts_created/_started` ⇒ both full names).
fn expand_span(span: &str, out: &mut BTreeSet<String>) {
    let parts: Vec<&str> = span.split('/').collect();
    let base = parts[0].trim();
    if !looks_like_metric_name(base) {
        return;
    }
    out.insert(base.to_string());
    for part in &parts[1..] {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(stripped) = part.strip_prefix('_') {
            // Suffix shorthand: replace the base's final _segment.
            if let Some((stem, _)) = base.rsplit_once('_') {
                out.insert(format!("{stem}_{stripped}"));
            }
        } else if looks_like_metric_name(part) {
            out.insert(part.to_string());
        }
    }
}

/// Names documented in OBSERVABILITY.md between "### Counter catalogue"
/// and the sigcache caveat (the table plus the gauges/histogram
/// paragraph).
fn documented_names() -> BTreeSet<String> {
    let doc = std::fs::read_to_string(repo_root().join("OBSERVABILITY.md"))
        .expect("OBSERVABILITY.md readable");
    let start = doc
        .find("### Counter catalogue")
        .expect("OBSERVABILITY.md must keep its '### Counter catalogue' section");
    let end = doc[start..]
        .find("### The sigcache-warmth caveat")
        .map(|o| start + o)
        .unwrap_or(doc.len());
    let section = &doc[start..end];
    let mut names = BTreeSet::new();
    let mut rest = section;
    while let Some(open) = rest.find('`') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('`') else { break };
        expand_span(&rest[..close], &mut names);
        rest = &rest[close + 1..];
    }
    names
}

#[test]
fn metric_catalogue_matches_code() {
    let emitted = emitted_names();
    let documented = documented_names();
    assert!(
        emitted.len() > 40,
        "sanity: workspace scan found only {} metric call sites",
        emitted.len()
    );

    let undocumented: Vec<&String> = emitted.difference(&documented).collect();
    let stale: Vec<&String> = documented.difference(&emitted).collect();
    assert!(
        undocumented.is_empty(),
        "metrics emitted in code but missing from OBSERVABILITY.md's \
         catalogue: {undocumented:?}\n(add a row to the '### Counter \
         catalogue' section, or the gauges/histogram paragraph)"
    );
    assert!(
        stale.is_empty(),
        "metrics documented in OBSERVABILITY.md but emitted nowhere in \
         crates/*/src: {stale:?}\n(remove the stale row or restore the \
         call site)"
    );
}
