//! Serial-vs-parallel equivalence: every result produced through the
//! `pds2-par` execution layer must be byte-identical at any worker count.
//!
//! Each test runs the same computation under `pds2_par::with_threads` at
//! 1, 4 and 8 threads (the programmatic form of the `PDS2_THREADS` knob)
//! and compares exact bytes/bits, not approximate values.

use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
use pds2_crypto::merkle::MerkleTree;
use pds2_crypto::{Digest, KeyPair};
use pds2_ml::linalg::{axpy, dot, dot_naive};
use pds2_rewards::shapley::{monte_carlo_shapley, monte_carlo_shapley_par, FnUtility, McConfig};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

fn make_chain() -> Blockchain {
    let alice = KeyPair::from_seed(1);
    Blockchain::new(
        vec![KeyPair::from_seed(9000)],
        &[(Address::of(&alice.public), 1_000_000_000)],
        ContractRegistry::new(),
        ChainConfig {
            max_txs_per_block: usize::MAX,
            ..Default::default()
        },
    )
}

fn make_block() -> pds2_chain::block::Block {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut producer = make_chain();
    for nonce in 0..64u64 {
        let tx = Transaction {
            from: alice.public.clone(),
            nonce,
            kind: TxKind::Transfer {
                to: bob,
                amount: 1 + nonce as u128,
            },
            gas_limit: 50_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        producer.submit(tx).expect("admission");
    }
    producer.produce_block()
}

/// A copy of the block whose per-tx digest caches are cold, so each run
/// re-does the hashing work under its own thread count.
fn cold_copy(block: &pds2_chain::block::Block) -> pds2_chain::block::Block {
    pds2_chain::block::Block {
        header: block.header.clone(),
        transactions: block
            .transactions
            .iter()
            .map(|t| SignedTransaction::new(t.tx.clone(), t.signature.clone()))
            .collect(),
    }
}

#[test]
fn chain_state_root_is_thread_count_invariant() {
    let block = make_block();
    let results: Vec<(Digest, Digest)> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            pds2_par::with_threads(threads, || {
                let mut verifier = make_chain();
                verifier
                    .apply_external_block(&cold_copy(&block))
                    .expect("valid block");
                (verifier.state.state_root(), verifier.head_hash())
            })
        })
        .collect();
    for pair in &results[1..] {
        assert_eq!(
            pair, &results[0],
            "state root / head hash changed with thread count"
        );
    }
}

/// The Montgomery/Shamir fast verification path (DESIGN.md §5d) must make
/// the same accept/reject decision as the schoolbook reference path on
/// every signature, and the chain must reach bit-identical state roots at
/// every thread count whether the verified-signature cache is cold or warm.
#[test]
fn verification_fast_path_is_thread_and_cache_invariant() {
    let block = make_block();
    // Tampered variant: corrupt one signature scalar. The tx bodies (and
    // therefore the tx root) stay valid, so rejection must come from the
    // signature check itself.
    let q = &pds2_crypto::schnorr::Group::standard().q;
    let mut tampered = cold_copy(&block);
    tampered.transactions[3].signature.s = tampered.transactions[3]
        .signature
        .s
        .add_mod(&pds2_crypto::BigUint::one(), q);

    // Signature level: fast and reference verifiers agree on every tx of
    // both blocks.
    for b in [&block, &tampered] {
        for t in &b.transactions {
            let msg = t.tx.hash();
            assert_eq!(
                t.tx.from.verify(msg.as_bytes(), &t.signature),
                t.tx.from.verify_reference(msg.as_bytes(), &t.signature),
                "verification paths disagree"
            );
        }
    }

    // Chain level: decisions and resulting state are invariant under the
    // thread count, and under cache temperature (the second validation of
    // the valid block hits the verified-signature cache).
    let results: Vec<(Digest, Digest)> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            pds2_par::with_threads(threads, || {
                pds2_chain::sigcache::clear();
                let mut verifier = make_chain();
                assert!(
                    verifier
                        .validate_external_block(&cold_copy(&tampered))
                        .is_err(),
                    "tampered block accepted at {threads} threads"
                );
                verifier
                    .validate_external_block(&cold_copy(&block))
                    .expect("valid block, cold cache");
                verifier
                    .validate_external_block(&cold_copy(&block))
                    .expect("valid block, warm cache");
                assert!(
                    verifier
                        .validate_external_block(&cold_copy(&tampered))
                        .is_err(),
                    "tampered block accepted with a warm cache"
                );
                verifier
                    .apply_external_block(&cold_copy(&block))
                    .expect("valid block");
                (verifier.state.state_root(), verifier.head_hash())
            })
        })
        .collect();
    for pair in &results[1..] {
        assert_eq!(
            pair, &results[0],
            "state root / head hash changed with thread count"
        );
    }
}

/// The fee market (DESIGN.md §5f) is deterministic integer arithmetic:
/// drive the base fee up through congested blocks and back down through
/// idle ones, and require the whole trajectory — per-block base fee, gas
/// used, transaction order, and the final state root (which commits to
/// the burned total) — to be bit-identical at every worker count.
#[test]
fn base_fee_trajectory_is_thread_count_invariant() {
    let run = || {
        pds2_chain::sigcache::clear();
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(9000)],
            &[(Address::of(&alice.public), 1_000_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                // Two 30k-gas transfers fill a block to twice the
                // elastic target, so every full block raises the fee.
                block_gas_limit: 60_000,
                initial_base_fee: 100,
                max_txs_per_block: usize::MAX,
                ..Default::default()
            },
        );
        for nonce in 0..40u64 {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce,
                kind: TxKind::Transfer {
                    to: bob,
                    amount: 1 + nonce as u128,
                },
                gas_limit: 30_000,
                max_fee_per_gas: 1_000_000,
                priority_fee_per_gas: nonce % 7,
            }
            .sign(&alice);
            chain.submit(tx).expect("admission");
        }
        // 20 congested blocks drain the pool, then 6 idle blocks decay
        // the fee back down.
        let mut fees = Vec::new();
        let mut gas = Vec::new();
        let mut order: Vec<Digest> = Vec::new();
        for _ in 0..26 {
            let block = chain.produce_block();
            fees.push(block.header.base_fee);
            gas.push(block.header.gas_used);
            order.extend(block.transactions.iter().map(|t| t.hash()));
        }
        (
            fees,
            gas,
            order,
            chain.state.state_root(),
            chain.head_hash(),
        )
    };
    let base = run();
    let (fees, gas, order, ..) = &base;
    assert_eq!(order.len(), 40, "every transfer must land");
    // Blocks pack two transfers by gas *limit*; what they actually meter
    // is the intrinsic cost, which must still exceed the elastic target
    // (30 000) for the fee to climb.
    assert!(
        gas[..20].iter().all(|&g| g == gas[0] && g > 30_000),
        "congested blocks must run above target: {gas:?}"
    );
    assert!(
        fees[19] > fees[0],
        "congestion must raise the base fee: {fees:?}"
    );
    assert!(
        fees[25] < fees[19],
        "idle blocks must decay the base fee: {fees:?}"
    );
    assert_eq!(run(), base, "rerun diverged");
    for threads in THREAD_COUNTS {
        let r = pds2_par::with_threads(threads, run);
        assert_eq!(r, base, "fee trajectory diverged at {threads} threads");
    }
}

/// Both state-commitment backends — the incremental SMT and the
/// full-rehash oracle — must produce bit-identical roots to each other
/// and to themselves at every worker count, including the
/// `state.smt.nodes_hashed` obs counter (large commits fan node hashing
/// out through `pds2-par`, which must not change what gets hashed).
#[test]
fn state_backends_agree_at_every_thread_count() {
    use pds2_chain::backend::BackendKind;
    let block = make_block();
    let run = |kind: BackendKind| {
        let before = pds2_obs::snapshot();
        let mut verifier = make_chain();
        verifier.state.set_backend(kind);
        verifier
            .apply_external_block(&cold_copy(&block))
            .expect("valid block");
        let root = verifier.state.state_root();
        let d = pds2_obs::snapshot().counter_deltas(&before);
        let hashed = d.get("state.smt.nodes_hashed").copied().unwrap_or(0);
        (root, verifier.head_hash(), hashed)
    };
    let _obs = pds2_obs::test_lock();
    let base_smt = run(BackendKind::Smt);
    let base_oracle = run(BackendKind::FullRehash);
    assert_eq!(base_smt.0, base_oracle.0, "backends disagree on the root");
    assert_eq!(base_smt.1, base_oracle.1, "backends disagree on the head");
    for threads in THREAD_COUNTS {
        let smt = pds2_par::with_threads(threads, || run(BackendKind::Smt));
        let oracle = pds2_par::with_threads(threads, || run(BackendKind::FullRehash));
        assert_eq!(smt, base_smt, "SMT backend diverged at {threads} threads");
        assert_eq!(
            oracle, base_oracle,
            "full-rehash backend diverged at {threads} threads"
        );
    }
}

#[test]
fn merkle_root_is_thread_count_invariant() {
    // Enough leaves to cross the parallel-level threshold in
    // `from_leaf_hashes` (512 pairs) so inner levels also fan out.
    let leaves: Vec<Vec<u8>> = (0..2048u64).map(|i| i.to_le_bytes().repeat(5)).collect();
    let roots: Vec<Digest> = THREAD_COUNTS
        .iter()
        .map(|&threads| pds2_par::with_threads(threads, || MerkleTree::from_leaves(&leaves).root()))
        .collect();
    assert!(
        roots.iter().all(|r| r == &roots[0]),
        "merkle root changed with thread count: {roots:?}"
    );
}

#[test]
fn shapley_estimate_is_bit_identical_across_thread_counts() {
    let cfg = McConfig {
        permutations: 80,
        truncation_tolerance: 1e-9,
        seed: 7,
    };
    let make_utility = || {
        FnUtility::new(32, |s: &[usize]| {
            s.iter().map(|&i| (i as f64 + 1.0).ln() * 2.5).sum::<f64>() + (s.len() as f64).sqrt()
        })
    };
    let serial = monte_carlo_shapley(&mut make_utility(), &cfg);
    for threads in THREAD_COUNTS {
        let par =
            pds2_par::with_threads(threads, || monte_carlo_shapley_par(&make_utility(), &cfg));
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            serial_bits, par_bits,
            "Shapley estimate not bit-identical at {threads} threads"
        );
    }
}

#[test]
fn par_map_preserves_input_order_at_every_thread_count() {
    let items: Vec<u64> = (0..1000).collect();
    for threads in THREAD_COUNTS {
        let out = pds2_par::with_threads(threads, || {
            pds2_par::par_map_indexed(&items, |i, &x| x * 2 + i as u64)
        });
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        assert_eq!(out, expected, "order broken at {threads} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 4-way unrolled dot product may associate differently from the
    /// strict left-to-right sum, but must stay within float summation
    /// error of it (a few ULPs, scaled by the magnitude of the terms).
    #[test]
    fn unrolled_dot_matches_naive(
        a in proptest::collection::vec(-1000.0f64..1000.0, 0..64),
        b_seed in 0u64..1_000,
    ) {
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, _)| ((i as u64 * 37 + b_seed) as f64 * 0.013).sin() * 500.0)
            .collect();
        let fast = dot(&a, &b);
        let slow = dot_naive(&a, &b);
        let scale = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x * y).abs())
            .sum::<f64>()
            .max(1.0);
        prop_assert!(
            (fast - slow).abs() <= scale * 1e-14,
            "dot diverged: {} vs {} (scale {})", fast, slow, scale
        );
    }

    /// The unrolled axpy updates each element independently, so it must be
    /// exactly (bit-for-bit) the naive elementwise loop.
    #[test]
    fn unrolled_axpy_is_exact(
        x in proptest::collection::vec(-100.0f64..100.0, 0..64),
        alpha in -10.0f64..10.0,
    ) {
        let mut fast: Vec<f64> = x.iter().map(|v| v * 0.5 - 1.0).collect();
        let mut slow = fast.clone();
        axpy(alpha, &x, &mut fast);
        for (yi, xi) in slow.iter_mut().zip(&x) {
            *yi += alpha * xi;
        }
        let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
        let slow_bits: Vec<u64> = slow.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fast_bits, slow_bits);
    }
}

/// The event scheduler (timing wheel vs retained heap oracle) is an
/// implementation detail: a gossip-learning run over a generator-backed
/// topology with churn must produce bit-identical delivered-message
/// traces for every (scheduler, thread count) combination.
#[test]
fn scheduler_and_thread_count_never_change_gossip_results() {
    use pds2::learning::gossip::{run_gossip_experiment_at_scale, GossipConfig, ScaleGossipOpts};
    use pds2::ml::model::LogisticRegression;
    use pds2::net::{ChurnModel, LinkModel, SchedulerKind, Topology};

    let data = pds2::ml::data::gaussian_blobs(400, 3, 0.7, 1);
    let (train, test) = data.split(0.25, 2);
    let run = |scheduler, threads| {
        pds2::par::with_threads(threads, || {
            let opts = ScaleGossipOpts {
                n_nodes: 300,
                data_holders: 10,
                eval_sample: 25,
                seed: 21,
                eval_at_us: vec![1_500_000, 3_000_000],
                cfg: GossipConfig {
                    period_us: 300_000,
                    ..Default::default()
                },
                link: LinkModel::regional(
                    Topology::five_continents(21).with_slowdown_spread(1024, 4096),
                ),
                churn: Some(ChurnModel {
                    horizon_us: 3_000_000,
                    mean_uptime_us: 1_500_000,
                    mean_downtime_us: 400_000,
                    churn_fraction_x1024: 128,
                }),
                scheduler: Some(scheduler),
            };
            let out =
                run_gossip_experiment_at_scale(&train, &test, &opts, || LogisticRegression::new(3));
            (
                out.trace_hash.expect("trace enabled"),
                out.models_transferred,
                out.online_nodes,
                out.accuracy_curve
                    .iter()
                    .map(|a| a.to_bits())
                    .collect::<Vec<u64>>(),
            )
        })
    };
    let baseline = run(SchedulerKind::Wheel, 1);
    for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        for threads in THREAD_COUNTS {
            assert_eq!(
                run(scheduler, threads),
                baseline,
                "{scheduler:?} at {threads} threads diverged"
            );
        }
    }
}
