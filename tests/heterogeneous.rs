//! §III-C: gossip learning in "constrained and highly heterogeneous
//! environments" (the Giaretta & Girdzijauskas setting the paper cites).
//!
//! Nodes differ in speed by an order of magnitude, links are lossy, and
//! bandwidth is tight — the protocol must still converge, and slow nodes
//! must not stall fast ones (no synchronization barrier exists).

use pds2::learning::gossip::{run_gossip_experiment, GossipConfig, MergeRule};
use pds2::ml::data::gaussian_blobs;
use pds2::ml::model::LogisticRegression;
use pds2::net::{LinkModel, NetStats, Node, NodeId, Simulator};

#[test]
fn gossip_converges_on_heterogeneous_lossy_network() {
    let n = 16;
    let data = gaussian_blobs(1600, 4, 0.8, 1);
    let (train, test) = data.split(0.25, 2);
    let shards = train.partition_noniid(n, 3);
    // Half the fleet is 10x slower; links drop 10% of messages; bandwidth
    // is constrained enough that model size matters.
    let slowdown: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { 10.0 })
        .collect();
    let link = LinkModel {
        base_latency_us: 50_000,
        jitter_us: 20_000,
        bandwidth_bytes_per_sec: 50_000,
        drop_probability: 0.1,
        node_slowdown: slowdown,
        topology: None,
    };
    let out = run_gossip_experiment(
        shards,
        &test,
        GossipConfig {
            period_us: 500_000,
            merge: MergeRule::AgeWeighted,
            ..Default::default()
        },
        link,
        7,
        &[40_000_000],
        None,
        || LogisticRegression::new(4),
    );
    assert!(
        out.accuracy_curve[0] > 0.9,
        "heterogeneous fleet must still converge: {:?}",
        out.accuracy_curve
    );
    assert!(out.models_transferred > 100);
}

#[test]
fn slow_nodes_do_not_block_fast_nodes() {
    // A two-node microbenchmark of the no-barrier property: the fast node
    // keeps gossiping at its own cadence even when the peer is 50x slower.
    struct Counter {
        sent: u64,
    }
    impl Node for Counter {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut pds2::net::Ctx<'_, ()>) {
            ctx.set_timer(1_000, 0);
        }
        fn on_message(&mut self, _: &mut pds2::net::Ctx<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut pds2::net::Ctx<'_, ()>, _: u64) {
            if let Some(p) = ctx.random_peer() {
                ctx.send(p, ());
                self.sent += 1;
            }
            ctx.set_timer(1_000, 0);
        }
    }
    let link = LinkModel {
        base_latency_us: 100,
        jitter_us: 0,
        bandwidth_bytes_per_sec: u64::MAX,
        drop_probability: 0.0,
        node_slowdown: vec![1.0, 50.0],
        topology: None,
    };
    let mut sim = Simulator::new(vec![Counter { sent: 0 }, Counter { sent: 0 }], link, 1);
    sim.run_until(1_000_000);
    // Timers are local: both nodes fire ~1000 times regardless of link
    // slowness — the protocol has no round barrier to stall on.
    assert!(
        sim.node(0).sent >= 990,
        "fast node sent {}",
        sim.node(0).sent
    );
    assert!(
        sim.node(1).sent >= 990,
        "slow node sent {}",
        sim.node(1).sent
    );
    let stats: NetStats = sim.stats();
    assert_eq!(stats.dropped_loss, 0);
}

#[test]
fn bandwidth_constrains_large_models() {
    // The same gossip run with a 100x larger model moves 100x the bytes;
    // on a tight link that shows up as delivery delay, not loss.
    let n = 6;
    let data = gaussian_blobs(300, 4, 0.8, 5);
    let (train, test) = data.split(0.3, 6);
    let shards = train.partition_iid(n, 7);
    let tight = LinkModel {
        base_latency_us: 1_000,
        jitter_us: 0,
        bandwidth_bytes_per_sec: 10_000, // 10 kB/s
        drop_probability: 0.0,
        node_slowdown: Vec::new(),
        topology: None,
    };
    let out = run_gossip_experiment(
        shards,
        &test,
        GossipConfig {
            period_us: 200_000,
            ..Default::default()
        },
        tight,
        8,
        &[20_000_000],
        None,
        || LogisticRegression::new(4),
    );
    // 5 params * 8B + 16B header = 56B per model, ~5.6ms serialization on
    // a 10kB/s link; gossip still converges.
    assert!(out.accuracy_curve[0] > 0.9, "{:?}", out.accuracy_curve);
    assert!(out.bytes_transferred > 0);
}
