//! Chaos harness for threshold-federated governance (DESIGN.md §5i):
//! the t-of-n signing committee under byzantine shareholders, quorum
//! partitions and crash-recovery races during proactive refresh — plus
//! the full chain-replica chaos suite re-run under
//! `PDS2_SIG_MODE=threshold` sealing.
//!
//! Mirrors `tests/chaos.rs`: every scenario asserts the *protocol*
//! property (t-of-n signs, t−1 cannot, recovery restores the share) and
//! the *harness* property (bit-identical replay from the seed at any
//! `PDS2_THREADS` count, pinned by golden fixtures —
//! `fixtures/gov_golden.txt` for the committee protocol,
//! `fixtures/chaos_golden_threshold.txt` for threshold-sealed sync).

use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::sync::{kind, ChainReplica, GenesisFactory};
use pds2_chain::threshold::SigMode;
use pds2_crypto::sha256::Sha256;
use pds2_crypto::{Digest, KeyPair};
use pds2_gov::dkg::{run_dkg_quiet, ThresholdParams};
use pds2_gov::net::{GovConfig, GovMsg, GovNode};
use pds2_net::{FaultPlan, LinkEffect, LinkModel, LinkScope, NetStats, Simulator};
use pds2_obs as obs;
use std::collections::BTreeSet;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

// ---------------------------------------------------------------------
// Committee protocol scenarios (GovNode over the network simulator).
// ---------------------------------------------------------------------

fn digests(n: usize) -> Vec<[u8; 32]> {
    (0..n as u8)
        .map(|i| {
            let mut d = [0u8; 32];
            d[0] = i + 1;
            d[31] = 0xA5;
            d
        })
        .collect()
}

fn gov_cfg(t: usize, n: usize, n_digests: usize) -> GovConfig {
    GovConfig {
        seed: 0x90F,
        params: ThresholdParams::new(t, n).unwrap(),
        refresh_at: None,
        digests: digests(n_digests),
        byzantine: BTreeSet::new(),
    }
}

fn gov_link() -> LinkModel {
    LinkModel {
        base_latency_us: 2_000,
        jitter_us: 500,
        bandwidth_bytes_per_sec: 12_500_000,
        drop_probability: 0.0,
        node_slowdown: Vec::new(),
        topology: None,
    }
}

/// Everything comparable about one committee run.
#[derive(Clone, Debug, PartialEq)]
struct GovRun {
    trace: Digest,
    /// Digest over the aggregator's completed `(seq, e, s)` signatures.
    sigs: Digest,
    /// The aggregator's completed signatures, by sequence number.
    completed: Vec<(u64, pds2_crypto::schnorr::Signature)>,
    /// Final share epoch per node (u64::MAX = share still lost).
    epochs: Vec<u64>,
    stats: NetStats,
}

fn run_gov(cfg: &GovConfig, sim_seed: u64, plan: Option<FaultPlan>, until: u64) -> GovRun {
    let mut sim = Simulator::new(GovNode::build(cfg), gov_link(), sim_seed);
    if let Some(p) = plan {
        sim.install_fault_plan(p);
    }
    sim.enable_trace();
    sim.run_until(until);
    let agg: &GovNode = sim.node(0);
    let mut h = Sha256::new();
    for (seq, sig) in &agg.completed {
        h.update(&seq.to_le_bytes());
        let e = sig.e.to_bytes_be();
        let s = sig.s.to_bytes_be();
        h.update(&(e.len() as u64).to_le_bytes());
        h.update(&e);
        h.update(&(s.len() as u64).to_le_bytes());
        h.update(&s);
    }
    GovRun {
        trace: sim.trace_hash().expect("trace enabled"),
        sigs: h.finalize(),
        completed: agg
            .completed
            .iter()
            .map(|(seq, sig)| (*seq, sig.clone()))
            .collect(),
        epochs: sim
            .nodes()
            .map(|n: &GovNode| n.share_epoch().unwrap_or(u64::MAX))
            .collect(),
        stats: sim.stats(),
    }
}

/// All digests signed, and every aggregate verifies under the single
/// group public key — proactive refresh must never invalidate one.
fn assert_sigs_verify(cfg: &GovConfig, run: &GovRun) {
    assert_eq!(run.completed.len(), cfg.digests.len(), "{run:?}");
    let (committee, _) = run_dkg_quiet(cfg.seed, cfg.params).unwrap();
    for (seq, sig) in &run.completed {
        assert!(
            committee
                .group_public()
                .verify(&cfg.digests[*seq as usize], sig),
            "aggregate for seq {seq} must verify under the group key"
        );
    }
}

fn assert_gov_replays(
    cfg: &GovConfig,
    sim_seed: u64,
    plan: impl Fn() -> Option<FaultPlan>,
    until: u64,
    base: &GovRun,
) {
    let again = run_gov(cfg, sim_seed, plan(), until);
    assert_eq!(&again, base, "re-run of the same seed diverged");
    for threads in THREAD_COUNTS {
        let r = pds2_par::with_threads(threads, || run_gov(cfg, sim_seed, plan(), until));
        assert_eq!(&r, base, "run diverged at {threads} threads");
    }
}

/// One `"<trace> <sig-digest>"` pair per line: line 1 byzantine
/// shareholder, line 2 partitioned sub-quorum, line 3 crash-recovery
/// across refresh.
fn gov_fixture_line(n: usize) -> (&'static str, &'static str) {
    let fixture = include_str!("fixtures/gov_golden.txt");
    let line = fixture
        .lines()
        .nth(n)
        .unwrap_or_else(|| panic!("fixture line {} missing", n + 1));
    let mut fields = line.split_whitespace();
    (
        fields.next().expect("fixture: trace hash"),
        fields.next().expect("fixture: sig digest"),
    )
}

fn assert_gov_fixture(line: usize, run: &GovRun) {
    let (want_trace, want_sigs) = gov_fixture_line(line);
    assert_eq!(
        run.trace.to_hex(),
        want_trace,
        "gov trace changed; if this is an intended protocol change, \
         update line {} of tests/fixtures/gov_golden.txt to:\n{} {}",
        line + 1,
        run.trace.to_hex(),
        run.sigs.to_hex()
    );
    assert_eq!(
        run.sigs.to_hex(),
        want_sigs,
        "aggregate signatures changed; if intended, update line {} of \
         tests/fixtures/gov_golden.txt to:\n{} {}",
        line + 1,
        run.trace.to_hex(),
        run.sigs.to_hex()
    );
}

#[test]
fn byzantine_shareholder_is_blacklisted_and_quorum_signs() {
    let _obs = obs::test_lock();
    let mut cfg = gov_cfg(3, 5, 3);
    cfg.byzantine.insert(2); // validator 3 sends corrupt partials
    let before = obs::snapshot();
    let run = run_gov(&cfg, 0xB1, None, 5_000_000);
    let d = obs::snapshot().counter_deltas(&before);
    assert!(
        d.get("gov.partials_rejected").copied().unwrap_or(0) > 0,
        "the byzantine partial must be caught by the dual-exp check: {d:?}"
    );
    assert!(
        d.get("gov.aggregations").copied().unwrap_or(0) >= 3,
        "{d:?}"
    );
    assert_sigs_verify(&cfg, &run);
    assert_gov_replays(&cfg, 0xB1, || None, 5_000_000, &run);
    assert_gov_fixture(0, &run);
}

#[test]
fn partitioned_subquorum_stalls_then_heals() {
    let _obs = obs::test_lock();
    let cfg = gov_cfg(3, 5, 3);
    // Aggregator's island holds only 2 shares (< t): signing must stall
    // for the whole partition and complete after the heal via retries.
    // (The partition starts at t=1µs — before any round-trip can land —
    // so this is also the t−1 liveness bound: a sub-threshold island
    // retries forever and never produces a signature.)
    let plan =
        || Some(FaultPlan::new(0x9A27).partition(1, 1_500_000, vec![vec![0, 1], vec![2, 3, 4]]));
    let mid = run_gov(&cfg, 0x5E, plan(), 1_400_000);
    assert!(
        mid.completed.is_empty(),
        "a sub-quorum island must not produce any signature: {mid:?}"
    );
    let run = run_gov(&cfg, 0x5E, plan(), 6_000_000);
    assert!(
        run.stats.dropped_partition > 0,
        "partition must sever committee traffic: {:?}",
        run.stats
    );
    assert_sigs_verify(&cfg, &run);
    assert_gov_replays(&cfg, 0x5E, plan, 6_000_000, &run);
    assert_gov_fixture(1, &run);
}

#[test]
fn crash_recovery_race_across_refresh_rebuilds_share() {
    let _obs = obs::test_lock();
    let mut cfg = gov_cfg(3, 5, 4);
    cfg.refresh_at = Some(500_000);
    // Node 3 crashes before the refresh and recovers after it: its
    // share is gone, the epoch moved on underneath it, and break-glass
    // recovery must rebuild the *epoch-1* share from t helpers.
    let plan = || Some(FaultPlan::new(0xC3A5).crash(3, 400_000, Some(700_000)));
    let before = obs::snapshot();
    let run = run_gov(&cfg, 0x7C, plan(), 8_000_000);
    let d = obs::snapshot().counter_deltas(&before);
    assert!(
        d.get("gov.share_recoveries").copied().unwrap_or(0) > 0,
        "recovery must run: {d:?}"
    );
    assert!(
        d.get("gov.share_refreshes").copied().unwrap_or(0) > 0,
        "refresh must run: {d:?}"
    );
    assert_eq!(run.stats.crashes, 1);
    assert_eq!(run.stats.recoveries, 1);
    // Everyone — including the recovered node — ends at epoch 1 with a
    // live share, and every digest got signed despite the churn.
    assert_eq!(run.epochs, vec![1, 1, 1, 1, 1], "{run:?}");
    assert_sigs_verify(&cfg, &run);
    assert_gov_replays(&cfg, 0x7C, plan, 8_000_000, &run);
    assert_gov_fixture(2, &run);
}

// ---------------------------------------------------------------------
// Threshold-sealed chain replicas under the golden chaos plan.
// ---------------------------------------------------------------------

const N_REPLICAS: usize = 4;

fn threshold_factory() -> GenesisFactory {
    Arc::new(|| {
        Blockchain::new(
            (0..N_REPLICAS as u64)
                .map(|i| KeyPair::from_seed(9_000 + i))
                .collect(),
            &[(Address::of(&KeyPair::from_seed(1).public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                sig_mode: SigMode::Threshold,
                ..ChainConfig::default()
            },
        )
    })
}

fn fast_link() -> LinkModel {
    LinkModel {
        base_latency_us: 5_000,
        jitter_us: 2_000,
        bandwidth_bytes_per_sec: 12_500_000,
        drop_probability: 0.0,
        node_slowdown: Vec::new(),
        topology: None,
    }
}

#[derive(Clone, Debug, PartialEq)]
struct ChainRun {
    trace: Digest,
    heads: Vec<Digest>,
    roots: Vec<Digest>,
    heights: Vec<u64>,
    stats: NetStats,
}

fn run_threshold_chain(seed: u64, plan: FaultPlan, until_us: u64) -> ChainRun {
    let f = threshold_factory();
    let replicas: Vec<ChainReplica> = (0..N_REPLICAS)
        .map(|i| ChainReplica::new(f.clone(), Some(i), 200_000, 150_000))
        .collect();
    let mut sim = Simulator::new(replicas, fast_link(), seed);
    sim.install_fault_plan(plan);
    sim.enable_trace();
    sim.run_until(until_us);
    ChainRun {
        trace: sim.trace_hash().expect("trace enabled"),
        heads: sim.nodes().map(|r| r.chain().head_hash()).collect(),
        roots: sim.nodes().map(|r| r.chain().state.state_root()).collect(),
        heights: sim.nodes().map(|r| r.chain().height()).collect(),
        stats: sim.stats(),
    }
}

/// The same all-faults plan as `chaos.rs::golden_plan` — the point is
/// that threshold sealing survives the identical gauntlet.
fn golden_plan() -> FaultPlan {
    FaultPlan::new(0x601D)
        .partition(1_500_000, 3_500_000, vec![vec![0, 3], vec![1, 2]])
        .crash(1, 4_000_000, Some(5_500_000))
        .byzantine(
            500_000,
            2_500_000,
            LinkScope::from_node(3),
            LinkEffect::Corrupt { probability: 0.3 },
        )
        .drop_kind(6_000_000, 7_000_000, LinkScope::any(), kind::NEW_BLOCK, 1.0)
}

#[test]
fn threshold_sealed_chain_survives_golden_chaos() {
    let _obs = obs::test_lock();
    let run = run_threshold_chain(0x601D, golden_plan(), 10_050_000);
    for i in 1..N_REPLICAS {
        assert_eq!(run.heads[i], run.heads[0], "replica {i} head diverged");
        assert_eq!(run.roots[i], run.roots[0], "replica {i} root diverged");
    }
    assert!(run.heights[0] >= 10, "{:?}", run.heights);
    // Bit-identical replay at every worker count.
    let again = run_threshold_chain(0x601D, golden_plan(), 10_050_000);
    assert_eq!(again, run, "re-run of the same seed diverged");
    for threads in THREAD_COUNTS {
        let r = pds2_par::with_threads(threads, || {
            run_threshold_chain(0x601D, golden_plan(), 10_050_000)
        });
        assert_eq!(r, run, "run diverged at {threads} threads");
    }
    // Pinned fixture (line 1 of chaos_golden_threshold.txt).
    let fixture = include_str!("fixtures/chaos_golden_threshold.txt");
    let mut fields = fixture
        .lines()
        .next()
        .expect("fixture line 1 missing")
        .split_whitespace();
    let want_trace = fields.next().expect("fixture: trace hash");
    let want_root = fields.next().expect("fixture: state root");
    assert_eq!(
        run.trace.to_hex(),
        want_trace,
        "threshold chaos trace changed; if this is an intended protocol \
         change, update line 1 of tests/fixtures/chaos_golden_threshold.txt to:\n{} {}",
        run.trace.to_hex(),
        run.roots[0].to_hex()
    );
    assert_eq!(
        run.roots[0].to_hex(),
        want_root,
        "threshold chaos state root changed; if intended, update line 1 \
         of tests/fixtures/chaos_golden_threshold.txt to:\n{} {}",
        run.trace.to_hex(),
        run.roots[0].to_hex()
    );
}

/// The obs trace digest of a threshold-sealed chaos run is sink- and
/// thread-invariant — `gov/sign` spans and the committee cache must not
/// leak nondeterminism into the digest.
#[test]
fn threshold_chain_obs_digest_is_thread_and_sink_invariant() {
    let _obs = obs::test_lock();
    let digest_with = |kind: obs::SinkKind, threads: usize| {
        let cap = obs::capture(kind);
        pds2_par::with_threads(threads, || {
            run_threshold_chain(0x601D, golden_plan(), 6_000_000)
        });
        cap.finish().digest
    };
    let ring = digest_with(obs::SinkKind::Ring(usize::MAX), 1);
    let path = std::env::temp_dir().join("pds2_chaos_gov_obs.jsonl");
    let jsonl = digest_with(obs::SinkKind::Jsonl(path.clone()), 1);
    std::fs::remove_file(&path).ok();
    assert_eq!(ring, jsonl, "ring vs JSONL sink changed the digest");
    for threads in THREAD_COUNTS {
        let d = digest_with(obs::SinkKind::Null, threads);
        assert_eq!(d, ring, "obs digest diverged at {threads} threads");
    }
}

/// Drive one GovMsg through the trace to make sure the enum stays
/// object-safe for the simulator's tracing (kind/size sanity).
#[test]
fn gov_msg_kinds_and_sizes_are_stable() {
    use pds2_net::sim::Node;
    let req = GovMsg::RecoverReq { epoch: 0 };
    assert_eq!(<GovNode as Node>::msg_kind(&req), 4);
    assert_eq!(<GovNode as Node>::msg_size(&req), 8);
}
