//! Integration tests: the full Fig. 2 lifecycle across every crate.

use pds2::market::marketplace::{Marketplace, StorageChoice};
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::market::Phase;
use pds2::ml::data::{gaussian_blobs, Dataset};
use pds2::storage::semantic::{MetaValue, Metadata, Requirement};
use pds2::tee::measurement::EnclaveCode;
use pds2_chain::address::Address;

fn temperature_meta() -> Metadata {
    Metadata::new()
        .with(
            "type",
            MetaValue::Class("sensor/environment/temperature".into()),
            0,
        )
        .with("sample-rate-hz", MetaValue::Num(1.0), 1)
}

fn classification_spec(
    code: &EnclaveCode,
    validation: Dataset,
    scheme: RewardScheme,
    min_providers: u32,
) -> WorkloadSpec {
    WorkloadSpec {
        title: "integration".into(),
        precondition: Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment".into(),
        },
        task: TaskKind::BinaryClassification,
        feature_dim: validation.dim() as u32,
        provider_reward: 30_000,
        executor_fee: 1_000,
        reward_scheme: scheme,
        min_providers,
        min_records: 20,
        code_measurement: code.measurement(),
        validation,
        local_epochs: 8,
        aggregation_rounds: 3,
        dp_noise_multiplier: None,
        reward_token: None,
        data_bounds: None,
    }
}

/// Builds a marketplace world and returns everything needed to drive it.
fn build(
    seed: u64,
    n_providers: usize,
    n_executors: usize,
    scheme: RewardScheme,
) -> (Marketplace, Address, Vec<Address>, Vec<Address>, u64) {
    let mut market = Marketplace::new(seed);
    let consumer = market.register_consumer(1, 10_000_000);
    let data = gaussian_blobs(80 * n_providers, 4, 0.7, seed ^ 7);
    let (train, validation) = data.split(0.2, seed ^ 8);
    let shards = train.partition_iid(n_providers, seed ^ 9);
    let mut providers = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let p = market.register_provider(1000 + i as u64, StorageChoice::Local);
        market.provider_add_device(p).unwrap();
        market
            .provider_ingest(p, 0, shard, temperature_meta())
            .unwrap();
        providers.push(p);
    }
    let executors: Vec<Address> = (0..n_executors)
        .map(|i| market.register_executor(2000 + i as u64))
        .collect();
    let code = EnclaveCode::new("trainer", 1, b"trainer-v1".to_vec());
    let spec = classification_spec(&code, validation, scheme, n_providers as u32);
    let workload = market
        .submit_workload(consumer, spec, code, n_executors as u32)
        .unwrap();
    for &e in &executors {
        market.executor_join(e, workload).unwrap();
    }
    (market, consumer, providers, executors, workload)
}

#[test]
fn end_to_end_lifecycle_with_two_executors() {
    let (mut market, _consumer, providers, executors, workload) =
        build(11, 6, 2, RewardScheme::ProportionalToRecords);
    let assignments: Vec<_> = providers
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, executors[i % 2]))
        .collect();
    let (exec, fin) = market.run_full_lifecycle(workload, &assignments).unwrap();
    assert!(exec.validation_score > 0.85, "{}", exec.validation_score);
    assert_eq!(fin.provider_shares.len(), 6);
    assert!(fin.slashed.is_empty());
    let st = market.workload_state(workload).unwrap();
    assert_eq!(st.phase, Phase::Completed);
    assert_eq!(st.result, Some(exec.result_hash));
    // Event trail covers every lifecycle step.
    for topic in [
        "workload.funded",
        "workload.executor_registered",
        "workload.participation",
        "workload.started",
        "workload.result_submitted",
        "workload.completed",
    ] {
        assert!(
            !market.chain.events_by_topic(topic).is_empty(),
            "missing {topic} events"
        );
    }
}

#[test]
fn lifecycle_is_deterministic_across_runs() {
    let run = || {
        let (mut market, _, providers, executors, workload) = build(
            42,
            4,
            2,
            RewardScheme::ShapleyMonteCarlo { permutations: 10 },
        );
        let assignments: Vec<_> = providers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, executors[i % 2]))
            .collect();
        let (exec, fin) = market.run_full_lifecycle(workload, &assignments).unwrap();
        (exec.result_hash, fin.provider_shares)
    };
    let (h1, s1) = run();
    let (h2, s2) = run();
    assert_eq!(h1, h2, "same seeds must reproduce the same on-chain result");
    assert_eq!(s1, s2, "reward shares must be replayable");
}

#[test]
fn rewards_conserve_escrow_exactly() {
    let (mut market, consumer, providers, executors, workload) = build(
        13,
        5,
        2,
        RewardScheme::ShapleyMonteCarlo { permutations: 15 },
    );
    // Escrow was already paid at submission inside `build`; compare the
    // final balance against the consumer's initial grant.
    let initial_funds: u128 = 10_000_000;
    let assignments: Vec<_> = providers.iter().map(|&p| (p, executors[0])).collect();
    let (_, fin) = market.run_full_lifecycle(workload, &assignments).unwrap();
    let st = market.workload_state(workload).unwrap();
    let provider_total: u128 = fin.provider_shares.iter().map(|(_, v)| v).sum();
    assert_eq!(provider_total, st.provider_reward);
    // Native supply is globally conserved: the consumer ends up having
    // paid exactly the provider rewards plus honest-executor fees, with
    // the unused escrow refunded at finalization.
    let paid_fees = fin.paid_executors.len() as u128 * st.executor_fee;
    let consumer_after = market.chain.state.balance(&consumer);
    assert_eq!(
        initial_funds - consumer_after,
        provider_total + paid_fees,
        "consumer paid exactly rewards plus honest-executor fees (refund received)"
    );
    // Contract is fully drained.
    let contract = market.workload_contract(workload).unwrap();
    assert_eq!(market.chain.state.balance(&contract), 0);
}

#[test]
fn two_sequential_workloads_share_infrastructure() {
    let (mut market, consumer, providers, executors, w1) =
        build(17, 3, 1, RewardScheme::ProportionalToRecords);
    let assignments: Vec<_> = providers.iter().map(|&p| (p, executors[0])).collect();
    market.run_full_lifecycle(w1, &assignments).unwrap();

    // Same consumer posts a second workload over the same provider pool.
    let code = EnclaveCode::new("trainer", 2, b"trainer-v2".to_vec());
    let validation = gaussian_blobs(30, 4, 0.7, 99);
    let spec = classification_spec(&code, validation, RewardScheme::ShapleyExact, 3);
    let w2 = market.submit_workload(consumer, spec, code, 1).unwrap();
    market.executor_join(executors[0], w2).unwrap();
    let (exec2, fin2) = market.run_full_lifecycle(w2, &assignments).unwrap();
    assert!(exec2.validation_score > 0.8);
    assert_eq!(fin2.provider_shares.len(), 3);
    // Providers accumulated rewards from both workloads.
    for &p in &providers {
        assert!(market.chain.state.balance(&p) > 0);
    }
    assert_ne!(w1, w2);
}

#[test]
fn regression_workload_end_to_end() {
    use pds2::ml::data::iot_sensor_series;
    let mut market = Marketplace::new(23);
    let consumer = market.register_consumer(1, 10_000_000);
    let mut providers = Vec::new();
    for i in 0..4u64 {
        let p = market.register_provider(100 + i, StorageChoice::Local);
        market.provider_add_device(p).unwrap();
        let series = iot_sensor_series(72, i as f64 * 0.5, 0.2, 40 + i);
        market
            .provider_ingest(p, 0, &series, temperature_meta())
            .unwrap();
        providers.push(p);
    }
    let executor = market.register_executor(500);
    let code = EnclaveCode::new("forecaster", 1, b"forecaster-v1".to_vec());
    let validation = iot_sensor_series(48, 2.0, 0.2, 99);
    let spec = WorkloadSpec {
        title: "forecast".into(),
        precondition: Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment".into(),
        },
        task: TaskKind::Regression,
        feature_dim: 4,
        provider_reward: 10_000,
        executor_fee: 500,
        reward_scheme: RewardScheme::ProportionalToRecords,
        min_providers: 3,
        min_records: 100,
        code_measurement: code.measurement(),
        validation,
        local_epochs: 1,
        aggregation_rounds: 2,
        dp_noise_multiplier: None,
        reward_token: None,
        data_bounds: None,
    };
    let workload = market.submit_workload(consumer, spec, code, 1).unwrap();
    market.executor_join(executor, workload).unwrap();
    let assignments: Vec<_> = providers.iter().map(|&p| (p, executor)).collect();
    let (exec, _) = market.run_full_lifecycle(workload, &assignments).unwrap();
    // -MSE close to the noise floor (sigma = 0.2 -> MSE ~ 0.04..0.5).
    assert!(
        exec.validation_score > -1.0 && exec.validation_score <= 0.0,
        "score {}",
        exec.validation_score
    );
}

#[test]
fn enclave_costs_are_reported() {
    let (mut market, _, providers, executors, workload) =
        build(29, 3, 2, RewardScheme::ProportionalToRecords);
    let assignments: Vec<_> = providers
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, executors[i % 2]))
        .collect();
    let (exec, _) = market.run_full_lifecycle(workload, &assignments).unwrap();
    assert_eq!(exec.enclave_costs.len(), 2);
    for meter in exec.enclave_costs.values() {
        assert!(meter.charged_ns > 0, "enclave work must be charged");
        assert!(meter.transitions >= 1);
    }
}

#[test]
fn participation_proofs_verify_against_chain_headers() {
    let (mut market, _, providers, executors, workload) =
        build(31, 3, 1, RewardScheme::ProportionalToRecords);
    let assignments: Vec<_> = providers.iter().map(|&p| (p, executors[0])).collect();
    market.run_full_lifecycle(workload, &assignments).unwrap();
    for &p in &providers {
        let (proof, header) = market.prove_participation(workload, p).unwrap();
        assert!(header.verify_signature(), "header signed by a validator");
        assert!(proof.verify(&header), "inclusion proof for {p}");
    }
    // A non-participant has no proof.
    let outsider = Address::of(&pds2_crypto::KeyPair::from_seed(9_999).public);
    assert!(market.prove_participation(workload, outsider).is_err());
}

#[test]
fn token_denominated_workload_pays_in_erc20() {
    use pds2_chain::erc20::TokenId;
    let mut market = Marketplace::new(37);
    let consumer = market.register_consumer(1, 1_000_000);
    // Consumer issues the reward token (e.g. a stable research-credit).
    let token: TokenId = market
        .consumer_create_reward_token(consumer, "RWD", 1_000_000)
        .unwrap();

    let data = gaussian_blobs(180, 3, 0.7, 7);
    let (train, validation) = data.split(0.2, 8);
    let shards = train.partition_iid(3, 9);
    let mut providers = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let p = market.register_provider(100 + i as u64, StorageChoice::Local);
        market.provider_add_device(p).unwrap();
        market
            .provider_ingest(p, 0, shard, temperature_meta())
            .unwrap();
        providers.push(p);
    }
    let executor = market.register_executor(500);
    let code = EnclaveCode::new("trainer", 1, b"bin".to_vec());
    let mut spec = classification_spec(&code, validation, RewardScheme::ProportionalToRecords, 3);
    spec.reward_token = Some(token);
    let workload = market.submit_workload(consumer, spec, code, 1).unwrap();
    market.executor_join(executor, workload).unwrap();
    let assignments: Vec<_> = providers.iter().map(|&p| (p, executor)).collect();
    let (_, fin) = market.run_full_lifecycle(workload, &assignments).unwrap();

    // Rewards arrived as ERC-20 balances, not native currency.
    let mut provider_tokens = 0u128;
    for (p, share) in &fin.provider_shares {
        assert_eq!(market.chain.state.erc20.balance_of(token, p), *share);
        assert_eq!(market.chain.state.balance(p), 0, "no native payout");
        provider_tokens += share;
    }
    assert_eq!(provider_tokens, 30_000);
    // Executor fee in tokens too.
    assert_eq!(market.chain.state.erc20.balance_of(token, &executor), 1_000);
    // Escrow fully drained from the contract's token account; the refund
    // returned to the consumer.
    let contract = market.workload_contract(workload).unwrap();
    assert_eq!(market.chain.state.erc20.balance_of(token, &contract), 0);
    assert_eq!(
        market.chain.state.erc20.balance_of(token, &consumer),
        1_000_000 - 30_000 - 1_000
    );
    // Total token supply conserved.
    assert_eq!(
        market.chain.state.erc20.total_supply(token),
        Some(1_000_000)
    );
    // On-chain audit includes the token payouts.
    assert!(!market
        .chain
        .events_by_topic("erc20.contract_payout")
        .is_empty());
}

#[test]
fn executor_side_data_bounds_filter_out_of_range_readings() {
    // §IV-C complementary verification: a workload declares feature value
    // bounds; authentic-but-out-of-range readings are discarded by the
    // executor, and the provider is only credited for in-range rows.
    let mut market = Marketplace::new(41);
    let consumer = market.register_consumer(1, 1_000_000);
    let p = market.register_provider(100, StorageChoice::Local);
    market.provider_add_device(p).unwrap();
    // Mix in extreme outliers (sensor glitches / spam).
    let mut data = gaussian_blobs(80, 3, 0.7, 7);
    for row in data.x.iter_mut().take(20) {
        row[0] = 1e6;
    }
    market
        .provider_ingest(p, 0, &data, temperature_meta())
        .unwrap();
    let executor = market.register_executor(500);
    let code = EnclaveCode::new("trainer", 1, b"bin".to_vec());
    let mut spec = classification_spec(
        &code,
        gaussian_blobs(30, 3, 0.7, 8),
        RewardScheme::ProportionalToRecords,
        1,
    );
    spec.data_bounds = Some((-100.0, 100.0));
    let workload = market.submit_workload(consumer, spec, code, 1).unwrap();
    market.executor_join(executor, workload).unwrap();
    let (exec, _) = market
        .run_full_lifecycle(workload, &[(p, executor)])
        .unwrap();
    assert_eq!(exec.readings_out_of_bounds, 20, "outliers discarded");
    assert_eq!(exec.readings_accepted, 80, "all readings were authentic");
    // On-chain contribution reflects only the in-range rows.
    let st = market.workload_state(workload).unwrap();
    assert_eq!(st.total_records(), 60);
}
