//! Chaos harness: seeded fault plans — partitions, byzantine links,
//! crash-recovery, typed censorship — driven through the deterministic
//! network simulator against the real consumers (PoA block sync and
//! gossip learning).
//!
//! Every scenario asserts two things: the *protocol* property (the
//! cluster converges / recovers / rejects corruption) and the *harness*
//! property (the run replays bit-identically from its seed, at any
//! `PDS2_THREADS` worker count).

use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::sync::{kind, ChainReplica, GenesisFactory};
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::{Digest, KeyPair};
use pds2_learning::gossip::{run_gossip_experiment_with_faults, GossipConfig};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_net::{FaultPlan, LinkEffect, LinkModel, LinkScope, NetStats, Simulator};
use pds2_obs as obs;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const N_REPLICAS: usize = 4;

fn factory() -> GenesisFactory {
    Arc::new(|| {
        Blockchain::new(
            (0..N_REPLICAS as u64)
                .map(|i| KeyPair::from_seed(9_000 + i))
                .collect(),
            &[(Address::of(&KeyPair::from_seed(1).public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig::default(),
        )
    })
}

fn fast_link() -> LinkModel {
    LinkModel {
        base_latency_us: 5_000,
        jitter_us: 2_000,
        bandwidth_bytes_per_sec: 12_500_000,
        drop_probability: 0.0,
        node_slowdown: Vec::new(),
        topology: None,
    }
}

/// Everything comparable about one chaos run, for replay assertions.
#[derive(Clone, Debug, PartialEq)]
struct ChainRun {
    trace: Digest,
    heads: Vec<Digest>,
    roots: Vec<Digest>,
    heights: Vec<u64>,
    applied: Vec<u64>,
    rejected: Vec<u64>,
    forks: Vec<u64>,
    syncing: Vec<bool>,
    stats: NetStats,
}

fn run_chain(seed: u64, plan: FaultPlan, until_us: u64) -> ChainRun {
    let f = factory();
    let replicas: Vec<ChainReplica> = (0..N_REPLICAS)
        .map(|i| ChainReplica::new(f.clone(), Some(i), 200_000, 150_000))
        .collect();
    let mut sim = Simulator::new(replicas, fast_link(), seed);
    sim.install_fault_plan(plan);
    sim.enable_trace();
    sim.run_until(until_us);
    ChainRun {
        trace: sim.trace_hash().expect("trace enabled"),
        heads: sim.nodes().map(|r| r.chain().head_hash()).collect(),
        roots: sim.nodes().map(|r| r.chain().state.state_root()).collect(),
        heights: sim.nodes().map(|r| r.chain().height()).collect(),
        applied: sim.nodes().map(|r| r.blocks_applied).collect(),
        rejected: sim.nodes().map(|r| r.blocks_rejected).collect(),
        forks: sim.nodes().map(|r| r.forks_adopted).collect(),
        syncing: sim.nodes().map(|r| r.is_syncing()).collect(),
        stats: sim.stats(),
    }
}

/// Runs the scenario once and cross-checks the `pds2-obs` counter
/// deltas against the simulator's own `NetStats` accounting. Callers
/// hold [`obs::test_lock`]: counters are process-global, so a
/// concurrently running test would pollute the deltas.
fn run_chain_counted(seed: u64, plan: FaultPlan, until_us: u64) -> ChainRun {
    let before = obs::snapshot();
    let run = run_chain(seed, plan, until_us);
    let d = obs::snapshot().counter_deltas(&before);
    let delta = |name: &str| d.get(name).copied().unwrap_or(0);
    assert_eq!(delta("net.sent"), run.stats.sent, "net.sent counter");
    assert_eq!(delta("net.delivered"), run.stats.delivered);
    assert_eq!(delta("net.bytes_delivered"), run.stats.bytes_delivered);
    assert_eq!(delta("net.dropped_partition"), run.stats.dropped_partition);
    assert_eq!(delta("net.dropped_fault"), run.stats.dropped_fault);
    assert_eq!(delta("net.corrupted"), run.stats.corrupted);
    assert_eq!(delta("net.crashes"), run.stats.crashes);
    assert_eq!(delta("net.recoveries"), run.stats.recoveries);
    assert_eq!(delta("net.timers_fired"), run.stats.timers_fired);
    assert!(delta("chain.blocks_produced") > 0, "{d:?}");
    // `>=`: failed fork-choice candidates apply (and count) blocks the
    // replica's own accounting never credits.
    assert!(
        delta("chain.blocks_applied") >= run.applied.iter().sum::<u64>(),
        "{d:?} vs {:?}",
        run.applied
    );
    run
}

fn assert_converged(run: &ChainRun) {
    for i in 1..N_REPLICAS {
        assert_eq!(
            run.heads[i], run.heads[0],
            "replica {i} head diverged: heights {:?}",
            run.heights
        );
        assert_eq!(
            run.roots[i], run.roots[0],
            "replica {i} state root diverged"
        );
    }
}

fn assert_replays_identically(seed: u64, plan: impl Fn() -> FaultPlan, until_us: u64) {
    let base = run_chain(seed, plan(), until_us);
    // Same seed, same plan: the whole run is bit-identical — including at
    // forced worker counts (the programmatic form of `PDS2_THREADS`).
    let again = run_chain(seed, plan(), until_us);
    assert_eq!(again, base, "re-run of the same seed diverged");
    for threads in THREAD_COUNTS {
        let r = pds2_par::with_threads(threads, || run_chain(seed, plan(), until_us));
        assert_eq!(r, base, "run diverged at {threads} threads");
    }
}

#[test]
fn partition_then_heal_chain_converges() {
    let _obs = obs::test_lock();
    let plan =
        || FaultPlan::new(0xC4A0).partition(2_000_000, 5_000_000, vec![vec![0, 1], vec![2, 3]]);
    let run = run_chain_counted(11, plan(), 15_000_000);
    assert!(
        run.stats.dropped_partition > 0,
        "the partition must actually sever traffic: {:?}",
        run.stats
    );
    // PoA round-robin means each island stalls once the scheduled
    // proposer is on the far side; after healing, announce-driven
    // catch-up repairs both sides to one canonical chain.
    assert_converged(&run);
    assert!(
        run.heights[0] >= 10,
        "chain must keep growing after the heal: {:?}",
        run.heights
    );
    assert!(
        run.applied.iter().sum::<u64>() > 0,
        "catch-up must apply external blocks"
    );
    assert_replays_identically(11, plan, 15_000_000);
}

#[test]
fn crash_recovery_resyncs_to_canonical_chain() {
    let _obs = obs::test_lock();
    let plan = || FaultPlan::new(0xDEAD).crash(2, 3_000_000, Some(6_000_000));
    let run = run_chain_counted(23, plan(), 15_000_000);
    assert_eq!(run.stats.crashes, 1);
    assert_eq!(run.stats.recoveries, 1);
    // The crashed replica lost everything volatile; it must have pulled
    // the canonical chain back from its peers before the deadline.
    assert_converged(&run);
    assert!(
        !run.syncing[2],
        "recovered replica still stuck in syncing mode"
    );
    assert!(
        run.applied[2] > 0 || run.forks[2] > 0,
        "recovery must resync via catch-up or fork choice: {run:?}"
    );
    assert!(
        run.heights[0] >= 20,
        "production must resume after recovery: {:?}",
        run.heights
    );
    assert_replays_identically(23, plan, 15_000_000);
}

#[test]
fn byzantine_corruption_is_detected_and_dropped() {
    let _obs = obs::test_lock();
    let plan = || {
        FaultPlan::new(0xB12A).byzantine(
            500_000,
            4_000_000,
            LinkScope::any(),
            LinkEffect::Corrupt { probability: 0.25 },
        )
    };
    let run = run_chain_counted(37, plan(), 12_000_000);
    assert!(
        run.stats.corrupted + run.stats.dropped_fault > 0,
        "byzantine window must corrupt traffic: {:?}",
        run.stats
    );
    // Corrupted frames either fail to decode (destroyed in flight) or
    // decode to blocks/batches that fail validation — state never
    // absorbs them, and the cluster still converges once the window
    // closes.
    assert_converged(&run);
    assert!(run.heights[0] >= 10, "{:?}", run.heights);
    assert_replays_identically(37, plan, 12_000_000);
}

#[test]
fn typed_block_censorship_is_repaired_by_catchup() {
    // Censor every NewBlock broadcast for a while: proposals vanish, but
    // announce/request/blocks still flow, so replicas stay in sync purely
    // through the catch-up path.
    let _obs = obs::test_lock();
    let plan = || {
        FaultPlan::new(0x7D0).drop_kind(500_000, 6_000_000, LinkScope::any(), kind::NEW_BLOCK, 1.0)
    };
    let run = run_chain_counted(41, plan(), 12_000_000);
    assert!(
        run.stats.dropped_fault > 0,
        "censorship must drop NewBlock frames: {:?}",
        run.stats
    );
    assert_converged(&run);
    assert!(
        run.applied.iter().sum::<u64>() > 0,
        "catch-up batches must carry the censored blocks"
    );
    assert_replays_identically(41, plan, 12_000_000);
}

/// A fork/reorg run: everything in [`ChainRun`] plus the reorg-specific
/// accounting (reinstated transactions and the contested balance).
#[derive(Clone, Debug, PartialEq)]
struct ReorgRun {
    base: ChainRun,
    reinstated: Vec<u64>,
    bob_balances: Vec<u128>,
}

/// Forces a *genuine* fork in round-robin PoA. Partitions alone cannot:
/// the island missing the scheduled proposer just stalls. Instead the
/// plan makes proposer 1 sign height 1 twice with different contents:
///
/// 1. Replica 1 produces `B1` carrying the alice→bob transfer (seeded
///    only into replica 1's mempool). Directed drops on links 1→2 and
///    1→3 mean only replica 0 receives it.
/// 2. Replica 1 crashes, forgetting `B1` and its mempool, and recovers
///    by resyncing from replicas 2/3 — which never saw `B1`. Replica 0
///    is mute (all its outbound traffic dropped) so it cannot leak the
///    orphan branch back.
/// 3. At its next turn replica 1 re-signs height 1 as an *empty* `B1'`.
///    Replicas 2/3 extend that branch while replica 0 sits on the
///    `B1` fork.
/// 4. When replica 0 is unmuted it hears announcements for the longer
///    branch, fails suffix catch-up (mismatched parent), falls back to
///    a full-chain fetch, and adopts via fork choice — reinstating the
///    orphaned transfer into its mempool. At replica 0's next proposal
///    turn the transfer finally lands on the canonical chain.
fn reorg_plan() -> FaultPlan {
    let mute = LinkEffect::Drop { probability: 1.0 };
    FaultPlan::new(0xF02C)
        .byzantine(390_000, 600_000, LinkScope::link(1, 2), mute)
        .byzantine(390_000, 600_000, LinkScope::link(1, 3), mute)
        .byzantine(390_000, 1_600_000, LinkScope::from_node(0), mute)
        .crash(1, 460_000, Some(800_000))
}

fn run_reorg(seed: u64, plan: FaultPlan, until_us: u64) -> ReorgRun {
    let f = factory();
    let replicas: Vec<ChainReplica> = (0..N_REPLICAS)
        .map(|i| ChainReplica::new(f.clone(), Some(i), 200_000, 150_000))
        .collect();
    let mut sim = Simulator::new(replicas, fast_link(), seed);
    // The contested transfer: only replica 1 ever hears about it, so it
    // rides the block the fault plan orphans.
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let tx = Transaction {
        from: alice.public.clone(),
        nonce: 0,
        kind: TxKind::Transfer {
            to: bob,
            amount: 42,
        },
        gas_limit: 100_000,
        max_fee_per_gas: 0,
        priority_fee_per_gas: 0,
    }
    .sign(&alice);
    sim.node_mut(1)
        .chain_mut()
        .submit(tx)
        .expect("seed transfer");
    sim.install_fault_plan(plan);
    sim.enable_trace();
    sim.run_until(until_us);
    ReorgRun {
        base: ChainRun {
            trace: sim.trace_hash().expect("trace enabled"),
            heads: sim.nodes().map(|r| r.chain().head_hash()).collect(),
            roots: sim.nodes().map(|r| r.chain().state.state_root()).collect(),
            heights: sim.nodes().map(|r| r.chain().height()).collect(),
            applied: sim.nodes().map(|r| r.blocks_applied).collect(),
            rejected: sim.nodes().map(|r| r.blocks_rejected).collect(),
            forks: sim.nodes().map(|r| r.forks_adopted).collect(),
            syncing: sim.nodes().map(|r| r.is_syncing()).collect(),
            stats: sim.stats(),
        },
        reinstated: sim.nodes().map(|r| r.txs_reinstated).collect(),
        bob_balances: sim.nodes().map(|r| r.chain().state.balance(&bob)).collect(),
    }
}

#[test]
fn fork_reorg_reinstates_orphaned_transactions() {
    let _obs = obs::test_lock();
    let run = run_reorg(0xF02C, reorg_plan(), 4_000_000);
    assert_eq!(run.base.stats.crashes, 1, "{:?}", run.base.stats);
    assert_eq!(run.base.stats.recoveries, 1);
    assert!(
        run.base.stats.dropped_fault > 0,
        "the directed drops must sever traffic: {:?}",
        run.base.stats
    );
    // The protocol property: the cluster converges on one chain, the
    // orphaned branch's transfer was reinstated (not lost) somewhere,
    // and it ultimately executed — bob's balance agrees everywhere.
    assert_converged(&run.base);
    assert!(
        run.reinstated.iter().sum::<u64>() > 0,
        "fork choice must reinstate the orphaned transfer: {run:?}"
    );
    assert!(
        run.base.forks.iter().sum::<u64>() > 0,
        "at least one replica must adopt a competing branch: {run:?}"
    );
    for (i, bal) in run.bob_balances.iter().enumerate() {
        assert_eq!(
            *bal, 42,
            "replica {i}: the reinstated transfer must land on the \
             canonical chain: {run:?}"
        );
    }
    // The harness property: bit-identical replay, at any worker count.
    let again = run_reorg(0xF02C, reorg_plan(), 4_000_000);
    assert_eq!(again, run, "re-run of the same seed diverged");
    for threads in THREAD_COUNTS {
        let r = pds2_par::with_threads(threads, || run_reorg(0xF02C, reorg_plan(), 4_000_000));
        assert_eq!(r, run, "run diverged at {threads} threads");
    }
    // Pinned trace + root (fixture line 2; line 1 is the golden run).
    let (want_trace, want_root) = fixture_line(1);
    assert_eq!(
        run.base.trace.to_hex(),
        want_trace,
        "reorg trace changed; if this is an intended protocol change, \
         update line 2 of tests/fixtures/chaos_golden.txt to:\n{} {}",
        run.base.trace.to_hex(),
        run.base.roots[0].to_hex()
    );
    assert_eq!(
        run.base.roots[0].to_hex(),
        want_root,
        "reorg state root changed; if intended, update line 2 of \
         tests/fixtures/chaos_golden.txt to:\n{} {}",
        run.base.trace.to_hex(),
        run.base.roots[0].to_hex()
    );
}

/// A persistent-crash run: everything in [`ChainRun`] plus each
/// replica's final mempool population (the journal must preserve
/// pending transactions across the crash).
#[derive(Clone, Debug, PartialEq)]
struct PersistRun {
    base: ChainRun,
    pools: Vec<usize>,
}

/// Like [`run_chain`], but replica 2 (the one the fault plans crash)
/// optionally journals into a durable [`ChainLog`] that survives the
/// crash, snapshotting every 4 blocks.
fn run_persistent_crash(seed: u64, plan: FaultPlan, until_us: u64, persistent: bool) -> PersistRun {
    use pds2_storage::chainlog::ChainLog;
    let f = factory();
    let store = Arc::new(parking_lot::Mutex::new(ChainLog::new()));
    let replicas: Vec<ChainReplica> = (0..N_REPLICAS)
        .map(|i| {
            if persistent && i == 2 {
                ChainReplica::new_persistent(f.clone(), Some(i), 200_000, 150_000, store.clone(), 4)
            } else {
                ChainReplica::new(f.clone(), Some(i), 200_000, 150_000)
            }
        })
        .collect();
    let mut sim = Simulator::new(replicas, fast_link(), seed);
    // A nonce-gapped transfer seeded only into replica 2's mempool: the
    // gap (nonce 1 with state nonce 0) keeps it pending forever, so
    // whether it survives the crash depends entirely on the journal.
    let alice = KeyPair::from_seed(1);
    let tx = Transaction {
        from: alice.public.clone(),
        nonce: 1,
        kind: TxKind::Transfer {
            to: Address::of(&KeyPair::from_seed(2).public),
            amount: 5,
        },
        gas_limit: 100_000,
        max_fee_per_gas: 0,
        priority_fee_per_gas: 0,
    }
    .sign(&alice);
    sim.node_mut(2)
        .chain_mut()
        .submit(tx)
        .expect("seed pending tx");
    sim.install_fault_plan(plan);
    sim.enable_trace();
    sim.run_until(until_us);
    PersistRun {
        base: ChainRun {
            trace: sim.trace_hash().expect("trace enabled"),
            heads: sim.nodes().map(|r| r.chain().head_hash()).collect(),
            roots: sim.nodes().map(|r| r.chain().state.state_root()).collect(),
            heights: sim.nodes().map(|r| r.chain().height()).collect(),
            applied: sim.nodes().map(|r| r.blocks_applied).collect(),
            rejected: sim.nodes().map(|r| r.blocks_rejected).collect(),
            forks: sim.nodes().map(|r| r.forks_adopted).collect(),
            syncing: sim.nodes().map(|r| r.is_syncing()).collect(),
            stats: sim.stats(),
        },
        pools: sim.nodes().map(|r| r.chain().mempool_len()).collect(),
    }
}

#[test]
fn persistent_crash_recovers_from_snapshot_and_log() {
    let _obs = obs::test_lock();
    let plan = || FaultPlan::new(0x5707).crash(2, 3_000_000, Some(6_000_000));
    let before = obs::snapshot();
    let run = run_persistent_crash(29, plan(), 15_000_000, true);
    let d = obs::snapshot().counter_deltas(&before);
    let delta = |name: &str| d.get(name).copied().unwrap_or(0);
    assert_eq!(run.base.stats.crashes, 1);
    assert_eq!(run.base.stats.recoveries, 1);
    assert_eq!(delta("chain.recoveries"), 1, "{d:?}");
    assert!(delta("chain.snapshots_written") > 0, "{d:?}");
    assert!(delta("chain.txs_reinstated") > 0, "{d:?}");
    // The recovered replica rejoins the canonical chain bit-for-bit:
    // same head, same state root as the replicas that never crashed.
    assert_converged(&run.base);
    assert!(!run.base.syncing[2], "recovered replica still syncing");
    assert_eq!(
        run.pools[2], 1,
        "the journaled pending transaction must survive the crash: {run:?}"
    );
    // Volatile baseline under the same plan: the crash wipes the
    // mempool, so the pending transaction is gone — the journal is
    // what preserved it above.
    let volatile = run_persistent_crash(29, plan(), 15_000_000, false);
    assert_converged(&volatile.base);
    assert_eq!(
        volatile.pools[2], 0,
        "a volatile replica must forget the pending transaction: {volatile:?}"
    );
    // Harness property: bit-identical replay, at any worker count.
    let again = run_persistent_crash(29, plan(), 15_000_000, true);
    assert_eq!(again, run, "re-run of the same seed diverged");
    for threads in THREAD_COUNTS {
        let r = pds2_par::with_threads(threads, || {
            run_persistent_crash(29, plan(), 15_000_000, true)
        });
        assert_eq!(r, run, "run diverged at {threads} threads");
    }
    // Pinned trace + recovered root (fixture line 3).
    let (want_trace, want_root) = fixture_line(2);
    assert_eq!(
        run.base.trace.to_hex(),
        want_trace,
        "persistent-recovery trace changed; if this is an intended \
         protocol change, update line 3 of tests/fixtures/chaos_golden.txt to:\n{} {}",
        run.base.trace.to_hex(),
        run.base.roots[2].to_hex()
    );
    assert_eq!(
        run.base.roots[2].to_hex(),
        want_root,
        "recovered state root changed; if intended, update line 3 of \
         tests/fixtures/chaos_golden.txt to:\n{} {}",
        run.base.trace.to_hex(),
        run.base.roots[2].to_hex()
    );
}

/// One `"<trace> <state_root>"` pair per fixture line: line 0 pins the
/// golden all-faults scenario, line 1 the fork/reorg scenario, line 2
/// the persistent crash-recovery scenario.
fn fixture_line(n: usize) -> (&'static str, &'static str) {
    let fixture = include_str!("fixtures/chaos_golden.txt");
    let line = fixture
        .lines()
        .nth(n)
        .unwrap_or_else(|| panic!("fixture line {} missing", n + 1));
    let mut fields = line.split_whitespace();
    (
        fields.next().expect("fixture: trace hash"),
        fields.next().expect("fixture: state root"),
    )
}

/// The golden scenario exercises every fault type at once.
fn golden_plan() -> FaultPlan {
    FaultPlan::new(0x601D)
        .partition(1_500_000, 3_500_000, vec![vec![0, 3], vec![1, 2]])
        .crash(1, 4_000_000, Some(5_500_000))
        .byzantine(
            500_000,
            2_500_000,
            LinkScope::from_node(3),
            LinkEffect::Corrupt { probability: 0.3 },
        )
        .drop_kind(6_000_000, 7_000_000, LinkScope::any(), kind::NEW_BLOCK, 1.0)
}

#[test]
fn golden_trace_regression() {
    let _obs = obs::test_lock();
    let run = run_chain_counted(0x601D, golden_plan(), 10_050_000);
    assert_converged(&run);
    let (want_trace, want_root) = fixture_line(0);
    assert_eq!(
        run.trace.to_hex(),
        want_trace,
        "delivered-message trace changed; if this is an intended protocol \
         change, update line 1 of tests/fixtures/chaos_golden.txt to:\n{} {}",
        run.trace.to_hex(),
        run.roots[0].to_hex()
    );
    assert_eq!(
        run.roots[0].to_hex(),
        want_root,
        "final state root changed; if intended, update line 1 of \
         tests/fixtures/chaos_golden.txt to:\n{} {}",
        run.trace.to_hex(),
        run.roots[0].to_hex()
    );
}

#[test]
fn gossip_partition_heals_and_accuracy_recovers() {
    let _obs = obs::test_lock();
    let run = || {
        let data = gaussian_blobs(600, 3, 0.7, 1);
        let (train, test) = data.split(0.25, 2);
        let shards = train.partition_iid(10, 3);
        let plan = FaultPlan::new(0x9055).partition(
            1_000_000,
            4_000_000,
            vec![(0..5).collect(), (5..10).collect()],
        );
        run_gossip_experiment_with_faults(
            shards,
            &test,
            GossipConfig {
                period_us: 100_000,
                ..Default::default()
            },
            LinkModel::instant(),
            7,
            &[3_000_000, 10_000_000],
            None,
            Some(plan),
            || LogisticRegression::new(3),
        )
    };
    let before = obs::snapshot();
    let out = run();
    let deltas = obs::snapshot().counter_deltas(&before);
    assert_eq!(
        deltas.get("learning.gossip_evals").copied().unwrap_or(0),
        2,
        "one gossip_evals tick per evaluation point"
    );
    // Mid-run the halves learn separately; after healing, models mix
    // across the former boundary and the final accuracy recovers.
    assert!(
        out.accuracy_curve[1] > 0.9,
        "post-heal accuracy {:?}",
        out.accuracy_curve
    );
    assert_eq!(out.online_nodes, 10, "partitions must not kill nodes");
    let trace = out.trace_hash.expect("trace enabled");
    let bits: Vec<u64> = out.accuracy_curve.iter().map(|a| a.to_bits()).collect();
    // Bit-identical replay at forced worker counts.
    for threads in THREAD_COUNTS {
        let again = pds2_par::with_threads(threads, run);
        assert_eq!(
            again.trace_hash,
            Some(trace),
            "gossip trace diverged at {threads} threads"
        );
        let again_bits: Vec<u64> = again.accuracy_curve.iter().map(|a| a.to_bits()).collect();
        assert_eq!(
            again_bits, bits,
            "accuracy curve not bit-identical at {threads} threads"
        );
    }
}

/// Divergence forensics on the live fork: while the reorg scenario's
/// competing branches coexist, the per-block digest checkpoints must
/// localize the disagreement to the exact forking height — bisection
/// over `(height, hash)` pairs, no block bodies — and must agree with
/// a linear ground-truth scan of the full chains. Once fork choice
/// repairs the cluster the divergence report goes away.
#[test]
fn replica_divergence_localizes_to_forking_height() {
    let _obs = obs::test_lock();
    let f = factory();
    let replicas: Vec<ChainReplica> = (0..N_REPLICAS)
        .map(|i| ChainReplica::new(f.clone(), Some(i), 200_000, 150_000))
        .collect();
    let mut sim = Simulator::new(replicas, fast_link(), 0xF02C);
    let alice = KeyPair::from_seed(1);
    let tx = Transaction {
        from: alice.public.clone(),
        nonce: 0,
        kind: TxKind::Transfer {
            to: Address::of(&KeyPair::from_seed(2).public),
            amount: 42,
        },
        gas_limit: 100_000,
        max_fee_per_gas: 0,
        priority_fee_per_gas: 0,
    }
    .sign(&alice);
    sim.node_mut(1)
        .chain_mut()
        .submit(tx)
        .expect("seed transfer");
    sim.install_fault_plan(reorg_plan());

    // Ground truth: linear scan over full block bodies.
    let scan = |a: &ChainReplica, b: &ChainReplica| -> Option<u64> {
        let (ba, bb) = (a.chain().blocks(), b.chain().blocks());
        for (x, y) in ba.iter().zip(bb.iter()) {
            if x.header.hash() != y.header.hash() {
                return Some(x.header.height);
            }
        }
        match ba.len().cmp(&bb.len()) {
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Less => Some(bb[ba.len()].header.height),
            std::cmp::Ordering::Greater => Some(ba[bb.len()].header.height),
        }
    };

    // Mid-run: replica 0 sits on the orphaned B1 branch while 2/3
    // extend B1', and replica 0 is still muted.
    sim.run_until(1_200_000);
    {
        let a = sim.node(0);
        let c = sim.node(2);
        assert_ne!(
            a.chain().head_hash(),
            c.chain().head_hash(),
            "the fork must be live at the probe instant"
        );
        assert_eq!(
            scan(a, c),
            Some(1),
            "the scenario forges height 1 twice; ground truth must say so"
        );
        assert_eq!(
            a.first_divergent_height(c),
            Some(1),
            "checkpoint bisection must localize the fork to height 1"
        );
        // Checkpoints mirror the held chain exactly on every replica.
        for id in 0..N_REPLICAS {
            let r = sim.node(id);
            let blocks = r.chain().blocks();
            assert_eq!(r.block_checkpoints().len(), blocks.len());
            for (cp, b) in r.block_checkpoints().iter().zip(blocks.iter()) {
                assert_eq!(*cp, (b.header.height, b.header.hash()));
            }
        }
        // Same-branch replicas: bisection agrees with the body scan
        // (equal chains or a pure extension, never a fake fork).
        assert_eq!(
            sim.node(2).first_divergent_height(sim.node(3)),
            scan(sim.node(2), sim.node(3))
        );
    }

    // After heal + fork choice the cluster converges and the
    // divergence report clears.
    sim.run_until(4_000_000);
    for i in 0..N_REPLICAS {
        for j in i + 1..N_REPLICAS {
            let (a, b) = (sim.node(i), sim.node(j));
            assert_eq!(
                a.first_divergent_height(b),
                scan(a, b),
                "bisection vs ground truth, replicas {i}/{j}"
            );
        }
    }
    assert_eq!(
        sim.node(0).first_divergent_height(sim.node(2)),
        None,
        "converged replicas must report no divergence"
    );
}
