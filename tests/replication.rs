//! Multi-validator replication: several governance nodes stay in
//! consensus by replaying each other's blocks — the decentralization
//! property §III-A relies on ("free of any privileged entity").

use pds2_chain::address::Address;
use pds2_chain::block::BlockHeader;
use pds2_chain::chain::{Blockchain, ChainConfig, ChainError};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::tx::{Transaction, TxKind};
use pds2_core::contract::{calls, WorkloadContract, WORKLOAD_CODE_ID};
use pds2_crypto::sha256;
use pds2_crypto::KeyPair;

fn committee_chain(alice: &KeyPair) -> Blockchain {
    let validators: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(7000 + i)).collect();
    let mut registry = ContractRegistry::new();
    registry.register(WORKLOAD_CODE_ID, WorkloadContract::construct);
    Blockchain::new(
        validators,
        &[(Address::of(&alice.public), 1_000_000)],
        registry,
        ChainConfig::default(),
    )
}

fn transfer(
    kp: &KeyPair,
    nonce: u64,
    to: Address,
    amount: u128,
) -> pds2_chain::tx::SignedTransaction {
    Transaction {
        from: kp.public.clone(),
        nonce,
        kind: TxKind::Transfer { to, amount },
        gas_limit: 100_000,
        max_fee_per_gas: 0,
        priority_fee_per_gas: 0,
    }
    .sign(kp)
}

#[test]
fn replica_converges_with_producer() {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut producer = committee_chain(&alice);
    let mut replica = committee_chain(&alice);

    // Mixed workload: transfers plus a contract deploy/fund/cancel cycle.
    producer.submit(transfer(&alice, 0, bob, 100)).unwrap();
    producer
        .submit(
            Transaction {
                from: alice.public.clone(),
                nonce: 1,
                kind: TxKind::Deploy {
                    code_id: WORKLOAD_CODE_ID.into(),
                    init: WorkloadContract::init_bytes(
                        sha256(b"spec"),
                        sha256(b"code"),
                        1_000,
                        50,
                        1,
                        1,
                        0,
                        0,
                        None,
                    ),
                },
                gas_limit: 1_000_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(&alice),
        )
        .unwrap();
    let b0 = producer.produce_block();
    let contract = producer
        .receipt(&b0.transactions[1].hash())
        .unwrap()
        .deployed
        .unwrap();
    producer
        .submit(
            Transaction {
                from: alice.public.clone(),
                nonce: 2,
                kind: TxKind::Call {
                    contract,
                    input: calls::fund(),
                    value: 2_000,
                },
                gas_limit: 1_000_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(&alice),
        )
        .unwrap();
    producer.submit(transfer(&alice, 3, bob, 7)).unwrap();
    let b1 = producer.produce_block();

    // Replica replays both blocks.
    replica.apply_external_block(&b0).unwrap();
    replica.apply_external_block(&b1).unwrap();

    assert_eq!(replica.height(), producer.height());
    assert_eq!(replica.head_hash(), producer.head_hash());
    assert_eq!(
        replica.state.state_root(),
        producer.state.state_root(),
        "replica state must be byte-identical"
    );
    assert_eq!(replica.state.balance(&bob), 107);
    assert_eq!(replica.state.balance(&contract), 2_000);
    // Receipts and events replicated too.
    assert_eq!(replica.events().len(), producer.events().len());
    assert!(replica.receipt(&b1.transactions[0].hash()).is_some());
}

#[test]
fn replica_rejects_out_of_order_blocks() {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut producer = committee_chain(&alice);
    let mut replica = committee_chain(&alice);
    producer.submit(transfer(&alice, 0, bob, 1)).unwrap();
    let b0 = producer.produce_block();
    let b1 = producer.produce_block();
    // Applying b1 before b0 fails on height/parent.
    assert!(matches!(
        replica.apply_external_block(&b1),
        Err(ChainError::InvalidBlock(_))
    ));
    replica.apply_external_block(&b0).unwrap();
    replica.apply_external_block(&b1).unwrap();
    assert_eq!(replica.head_hash(), producer.head_hash());
}

#[test]
fn replica_rejects_lying_state_root() {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut producer = committee_chain(&alice);
    let mut replica = committee_chain(&alice);
    producer.submit(transfer(&alice, 0, bob, 1)).unwrap();
    let good = producer.produce_block();
    // The proposer (validator 0, seed 7000) signs a header with a forged
    // post-state root.
    let proposer = KeyPair::from_seed(7000);
    let forged_header = BlockHeader::new_signed(
        &proposer,
        good.header.height,
        good.header.parent,
        sha256(b"i-lied-about-the-state"),
        good.header.tx_root,
        good.header.timestamp,
        good.header.base_fee,
        good.header.gas_used,
    );
    let forged = pds2_chain::block::Block {
        header: forged_header,
        transactions: good.transactions.clone(),
    };
    assert_eq!(
        replica.apply_external_block(&forged),
        Err(ChainError::InvalidBlock("state root mismatch"))
    );
}

#[test]
fn duplicate_block_application_rejected() {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut producer = committee_chain(&alice);
    let mut replica = committee_chain(&alice);
    producer.submit(transfer(&alice, 0, bob, 5)).unwrap();
    let b0 = producer.produce_block();
    replica.apply_external_block(&b0).unwrap();
    // Re-applying the same block fails (wrong height now).
    assert!(replica.apply_external_block(&b0).is_err());
    assert_eq!(replica.state.balance(&bob), 5, "no double execution");
}

#[test]
fn included_transactions_leave_the_replica_mempool() {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut producer = committee_chain(&alice);
    let mut replica = committee_chain(&alice);
    let tx = transfer(&alice, 0, bob, 5);
    // Both nodes hold the tx in their mempool (gossiped).
    producer.submit(tx.clone()).unwrap();
    replica.submit(tx).unwrap();
    assert_eq!(replica.mempool_len(), 1);
    let b0 = producer.produce_block();
    replica.apply_external_block(&b0).unwrap();
    assert_eq!(replica.mempool_len(), 0, "included tx pruned from the pool");
}
