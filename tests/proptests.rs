//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs across the PDS² stack.

use pds2::market::authenticity::Device;
use pds2::market::certificate::ParticipationCertificate;
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::ml::data::Dataset;
use pds2::mpc::Fp;
use pds2::storage::semantic::{MetaValue, Metadata, Ontology, Requirement};
use pds2::storage::store::RecordId;
use pds2::tee::measurement::Measurement;
use pds2_chain::address::Address;
use pds2_crypto::codec::{Decode, Encode};
use pds2_crypto::{sha256, KeyPair};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Workload specifications round-trip through the canonical codec for
    /// arbitrary field values.
    #[test]
    fn workload_spec_codec_roundtrip(
        title in "[a-z]{1,20}",
        reward in 0u128..1_000_000_000,
        fee in 0u128..1_000_000,
        min_providers in 1u32..100,
        min_records in 1u64..100_000,
        epochs in 1u32..50,
        dp in proptest::option::of(0.01f64..10.0),
        n_rows in 0usize..10,
    ) {
        let validation = Dataset::new(
            (0..n_rows).map(|i| vec![i as f64, -(i as f64)]).collect(),
            (0..n_rows).map(|i| (i % 2) as f64).collect(),
        );
        let spec = WorkloadSpec {
            title,
            precondition: Requirement::Exists { attr: "type".into() },
            task: TaskKind::BinaryClassification,
            feature_dim: 2,
            provider_reward: reward,
            executor_fee: fee,
            reward_scheme: RewardScheme::ShapleyMonteCarlo { permutations: 7 },
            min_providers,
            min_records,
            code_measurement: Measurement::of(b"code", 1),
            validation,
            local_epochs: epochs,
            aggregation_rounds: 1,
            dp_noise_multiplier: dp,
            reward_token: None,
            data_bounds: None,
        };
        let back = WorkloadSpec::from_bytes(&spec.to_bytes()).unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.spec_hash(), spec.spec_hash());
    }

    /// Participation certificates verify after a codec round trip and
    /// reject any scope change, for arbitrary contents.
    #[test]
    fn certificate_scope_binding(
        workload_id in any::<u64>(),
        n_records in 1usize..10,
        n_readings in 1u64..10_000,
        expiry in 1u64..u64::MAX,
        provider_seed in 0u64..1_000,
    ) {
        let provider = KeyPair::from_seed(provider_seed);
        let executor = Address::of(&KeyPair::from_seed(provider_seed + 1).public);
        let contract = Address::contract(&executor, 3);
        let records: Vec<RecordId> = (0..n_records)
            .map(|i| RecordId(sha256(&[i as u8])))
            .collect();
        let cert = ParticipationCertificate::issue(
            &provider, workload_id, contract, records, n_readings, executor, expiry,
        );
        let back = ParticipationCertificate::from_bytes(&cert.to_bytes()).unwrap();
        prop_assert!(back.verify(workload_id, contract, executor, 0));
        prop_assert!(!back.verify(workload_id.wrapping_add(1), contract, executor, 0));
        prop_assert!(!back.verify(workload_id, contract, Address::contract(&executor, 9), 0));
    }

    /// Device readings always verify when untampered and never verify
    /// after any single-field tamper.
    #[test]
    fn reading_tamper_detection(
        seed in 0u64..500,
        ts in 0u64..1_000_000,
        features in proptest::collection::vec(-1e6f64..1e6, 0..8),
        target in -1e6f64..1e6,
        tamper_field in 0usize..3,
    ) {
        let mut device = Device::new(seed);
        let reading = device.sign_reading(ts, features.clone(), target);
        prop_assert!(reading.signature_valid());
        let mut tampered = reading.clone();
        match tamper_field {
            0 => tampered.target += 1.0,
            1 => tampered.timestamp = tampered.timestamp.wrapping_add(1),
            _ => tampered.sequence = tampered.sequence.wrapping_add(1),
        }
        prop_assert!(!tampered.signature_valid());
    }

    /// Field axioms for the SMC prime field under arbitrary u64 inputs.
    #[test]
    fn fp_field_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (Fp::new(a), Fp::new(b), Fp::new(c));
        prop_assert_eq!(x.add(y), y.add(x));
        prop_assert_eq!(x.mul(y), y.mul(x));
        prop_assert_eq!(x.mul(y.add(z)), x.mul(y).add(x.mul(z)));
        prop_assert_eq!(x.add(x.neg()), Fp::ZERO);
        if x != Fp::ZERO {
            prop_assert_eq!(x.mul(x.inv().unwrap()), Fp::ONE);
        }
    }

    /// Shamir reconstruct∘split is the identity for any (t, n) and secret.
    #[test]
    fn shamir_roundtrip(secret in any::<u64>(), t in 1usize..6, extra in 0usize..4) {
        use pds2::mpc::shamir::{reconstruct, split};
        let n = t + extra;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(secret);
        let shares = split(&mut rng, Fp::new(secret), t, n).unwrap();
        prop_assert_eq!(reconstruct(&shares[..t], t).unwrap(), Fp::new(secret));
        prop_assert_eq!(reconstruct(&shares[extra..], t).unwrap(), Fp::new(secret));
    }

    /// Reward shares never exceed the pool and always sum to it (after
    /// integer conversion) for arbitrary valuations.
    #[test]
    fn reward_shares_are_a_partition(
        valuations in proptest::collection::vec(-100.0f64..100.0, 1..20),
        total in 1u128..1_000_000,
    ) {
        use pds2::rewards::shapley::to_reward_shares;
        let shares = to_reward_shares(&valuations, total as f64);
        let sum: f64 = shares.iter().sum();
        prop_assert!(shares.iter().all(|&s| s >= 0.0));
        prop_assert!((sum - total as f64).abs() < 1e-6 * total as f64 + 1e-6);
    }

    /// Metadata redaction is monotone: raising the level never hides an
    /// attribute that a lower level exposed, and leakage is monotone too.
    #[test]
    fn redaction_monotonicity(
        ranks in proptest::collection::vec(0u8..6, 1..10),
    ) {
        let mut meta = Metadata::new();
        for (i, &rank) in ranks.iter().enumerate() {
            meta = meta.with(&format!("attr{i}"), MetaValue::Num(i as f64), rank);
        }
        let ontology = Ontology::new();
        let mut previous_len = 0;
        let mut previous_leak = 0.0;
        for level in 0u8..6 {
            let view = meta.redact(level);
            prop_assert!(view.len() >= previous_len);
            let leak = view.leakage_bits(&ontology);
            prop_assert!(leak >= previous_leak - 1e-9);
            previous_len = view.len();
            previous_leak = leak;
        }
        prop_assert_eq!(meta.redact(5).len(), ranks.len());
    }

    /// Chain transfers conserve total native supply for arbitrary
    /// transfer sequences (failed ones included).
    #[test]
    fn chain_conserves_supply(
        amounts in proptest::collection::vec(0u128..2_000, 1..20),
    ) {
        use pds2_chain::chain::Blockchain;
        use pds2_chain::contract::ContractRegistry;
        use pds2_chain::tx::{Transaction, TxKind};
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let initial = 10_000u128;
        let mut chain = Blockchain::single_validator(
            77,
            &[(Address::of(&alice.public), initial)],
            ContractRegistry::new(),
        );
        for (nonce, &amount) in amounts.iter().enumerate() {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce: nonce as u64,
                kind: TxKind::Transfer { to: bob, amount },
                gas_limit: 100_000,
            }
            .sign(&alice);
            chain.submit(tx).unwrap();
        }
        chain.produce_until_empty(100);
        prop_assert_eq!(chain.state.total_native_supply(), initial);
    }
}
