//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs across the PDS² stack.

use pds2::market::authenticity::Device;
use pds2::market::certificate::ParticipationCertificate;
use pds2::market::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2::ml::data::Dataset;
use pds2::mpc::Fp;
use pds2::storage::semantic::{MetaValue, Metadata, Ontology, Requirement};
use pds2::storage::store::RecordId;
use pds2::tee::measurement::Measurement;
use pds2_chain::address::Address;
use pds2_crypto::codec::{Decode, Encode};
use pds2_crypto::{sha256, KeyPair};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Workload specifications round-trip through the canonical codec for
    /// arbitrary field values.
    #[test]
    fn workload_spec_codec_roundtrip(
        title in "[a-z]{1,20}",
        reward in 0u128..1_000_000_000,
        fee in 0u128..1_000_000,
        min_providers in 1u32..100,
        min_records in 1u64..100_000,
        epochs in 1u32..50,
        dp in proptest::option::of(0.01f64..10.0),
        n_rows in 0usize..10,
    ) {
        let validation = Dataset::new(
            (0..n_rows).map(|i| vec![i as f64, -(i as f64)]).collect(),
            (0..n_rows).map(|i| (i % 2) as f64).collect(),
        );
        let spec = WorkloadSpec {
            title,
            precondition: Requirement::Exists { attr: "type".into() },
            task: TaskKind::BinaryClassification,
            feature_dim: 2,
            provider_reward: reward,
            executor_fee: fee,
            reward_scheme: RewardScheme::ShapleyMonteCarlo { permutations: 7 },
            min_providers,
            min_records,
            code_measurement: Measurement::of(b"code", 1),
            validation,
            local_epochs: epochs,
            aggregation_rounds: 1,
            dp_noise_multiplier: dp,
            reward_token: None,
            data_bounds: None,
        };
        let back = WorkloadSpec::from_bytes(&spec.to_bytes()).unwrap();
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.spec_hash(), spec.spec_hash());
    }

    /// Participation certificates verify after a codec round trip and
    /// reject any scope change, for arbitrary contents.
    #[test]
    fn certificate_scope_binding(
        workload_id in any::<u64>(),
        n_records in 1usize..10,
        n_readings in 1u64..10_000,
        expiry in 1u64..u64::MAX,
        provider_seed in 0u64..1_000,
    ) {
        let provider = KeyPair::from_seed(provider_seed);
        let executor = Address::of(&KeyPair::from_seed(provider_seed + 1).public);
        let contract = Address::contract(&executor, 3);
        let records: Vec<RecordId> = (0..n_records)
            .map(|i| RecordId(sha256(&[i as u8])))
            .collect();
        let cert = ParticipationCertificate::issue(
            &provider, workload_id, contract, records, n_readings, executor, expiry,
        );
        let back = ParticipationCertificate::from_bytes(&cert.to_bytes()).unwrap();
        prop_assert!(back.verify(workload_id, contract, executor, 0));
        prop_assert!(!back.verify(workload_id.wrapping_add(1), contract, executor, 0));
        prop_assert!(!back.verify(workload_id, contract, Address::contract(&executor, 9), 0));
    }

    /// Device readings always verify when untampered and never verify
    /// after any single-field tamper.
    #[test]
    fn reading_tamper_detection(
        seed in 0u64..500,
        ts in 0u64..1_000_000,
        features in proptest::collection::vec(-1e6f64..1e6, 0..8),
        target in -1e6f64..1e6,
        tamper_field in 0usize..3,
    ) {
        let mut device = Device::new(seed);
        let reading = device.sign_reading(ts, features.clone(), target);
        prop_assert!(reading.signature_valid());
        let mut tampered = reading.clone();
        match tamper_field {
            0 => tampered.target += 1.0,
            1 => tampered.timestamp = tampered.timestamp.wrapping_add(1),
            _ => tampered.sequence = tampered.sequence.wrapping_add(1),
        }
        prop_assert!(!tampered.signature_valid());
    }

    /// Field axioms for the SMC prime field under arbitrary u64 inputs.
    #[test]
    fn fp_field_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (Fp::new(a), Fp::new(b), Fp::new(c));
        prop_assert_eq!(x.add(y), y.add(x));
        prop_assert_eq!(x.mul(y), y.mul(x));
        prop_assert_eq!(x.mul(y.add(z)), x.mul(y).add(x.mul(z)));
        prop_assert_eq!(x.add(x.neg()), Fp::ZERO);
        if x != Fp::ZERO {
            prop_assert_eq!(x.mul(x.inv().unwrap()), Fp::ONE);
        }
    }

    /// Shamir reconstruct∘split is the identity for any (t, n) and secret.
    #[test]
    fn shamir_roundtrip(secret in any::<u64>(), t in 1usize..6, extra in 0usize..4) {
        use pds2::mpc::shamir::{reconstruct, split};
        let n = t + extra;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(secret);
        let shares = split(&mut rng, Fp::new(secret), t, n).unwrap();
        prop_assert_eq!(reconstruct(&shares[..t], t).unwrap(), Fp::new(secret));
        prop_assert_eq!(reconstruct(&shares[extra..], t).unwrap(), Fp::new(secret));
    }

    /// Reward shares never exceed the pool and always sum to it (after
    /// integer conversion) for arbitrary valuations.
    #[test]
    fn reward_shares_are_a_partition(
        valuations in proptest::collection::vec(-100.0f64..100.0, 1..20),
        total in 1u128..1_000_000,
    ) {
        use pds2::rewards::shapley::to_reward_shares;
        let shares = to_reward_shares(&valuations, total as f64);
        let sum: f64 = shares.iter().sum();
        prop_assert!(shares.iter().all(|&s| s >= 0.0));
        prop_assert!((sum - total as f64).abs() < 1e-6 * total as f64 + 1e-6);
    }

    /// Metadata redaction is monotone: raising the level never hides an
    /// attribute that a lower level exposed, and leakage is monotone too.
    #[test]
    fn redaction_monotonicity(
        ranks in proptest::collection::vec(0u8..6, 1..10),
    ) {
        let mut meta = Metadata::new();
        for (i, &rank) in ranks.iter().enumerate() {
            meta = meta.with(&format!("attr{i}"), MetaValue::Num(i as f64), rank);
        }
        let ontology = Ontology::new();
        let mut previous_len = 0;
        let mut previous_leak = 0.0;
        for level in 0u8..6 {
            let view = meta.redact(level);
            prop_assert!(view.len() >= previous_len);
            let leak = view.leakage_bits(&ontology);
            prop_assert!(leak >= previous_leak - 1e-9);
            previous_len = view.len();
            previous_leak = leak;
        }
        prop_assert_eq!(meta.redact(5).len(), ranks.len());
    }

    /// Chain transfers conserve total native supply for arbitrary
    /// transfer sequences (failed ones included).
    #[test]
    fn chain_conserves_supply(
        amounts in proptest::collection::vec(0u128..2_000, 1..20),
    ) {
        use pds2_chain::chain::Blockchain;
        use pds2_chain::contract::ContractRegistry;
        use pds2_chain::tx::{Transaction, TxKind};
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let initial = 10_000u128;
        let mut chain = Blockchain::single_validator(
            77,
            &[(Address::of(&alice.public), initial)],
            ContractRegistry::new(),
        );
        for (nonce, &amount) in amounts.iter().enumerate() {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce: nonce as u64,
                kind: TxKind::Transfer { to: bob, amount },
                gas_limit: 100_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(&alice);
            chain.submit(tx).unwrap();
        }
        chain.produce_until_empty(100);
        prop_assert_eq!(chain.state.total_native_supply(), initial);
    }
}

// ---------------------------------------------------------------------------
// Differential test for the pluggable state-commitment backends: the same
// random transaction workload runs on two chains — one committing through
// the incremental sparse Merkle tree (dirty-key tracking), one through
// the full-rehash reference oracle that rebuilds the tree from every leaf
// on every commit. The roots must agree after EVERY block: any missed or
// spurious dirty mark in the execution layer splits them immediately.
// ---------------------------------------------------------------------------

mod state_backend_props {
    use super::*;
    use pds2_chain::backend::BackendKind;
    use pds2_chain::chain::Blockchain;
    use pds2_chain::contract::ContractRegistry;
    use pds2_chain::erc20::Erc20Op;
    use pds2_chain::tx::{Transaction, TxKind};
    use proptest::prop_oneof;

    const N_ACCOUNTS: usize = 3;

    /// One random transaction: native transfers (some overdrawn, so they
    /// fail), ERC-20 creates/mints/transfers/burns (some unauthorized or
    /// overdrawn — failed token ops still create zero-balance entries,
    /// the classic dirty-tracking trap), and burns via priority fees.
    #[derive(Clone, Debug)]
    enum WorkOp {
        Native {
            from: usize,
            to: usize,
            amount: u128,
        },
        Erc20Create {
            from: usize,
        },
        Erc20Mint {
            from: usize,
            to: usize,
            amount: u128,
        },
        Erc20Transfer {
            from: usize,
            to: usize,
            amount: u128,
        },
        Erc20Burn {
            from: usize,
            amount: u128,
        },
    }

    fn op_strategy() -> impl Strategy<Value = WorkOp> {
        prop_oneof![
            (0usize..N_ACCOUNTS, 0usize..N_ACCOUNTS, 0u128..200_000)
                .prop_map(|(from, to, amount)| WorkOp::Native { from, to, amount }),
            (0usize..N_ACCOUNTS).prop_map(|from| WorkOp::Erc20Create { from }),
            (0usize..N_ACCOUNTS, 0usize..N_ACCOUNTS, 0u128..500)
                .prop_map(|(from, to, amount)| WorkOp::Erc20Mint { from, to, amount }),
            (0usize..N_ACCOUNTS, 0usize..N_ACCOUNTS, 0u128..500)
                .prop_map(|(from, to, amount)| WorkOp::Erc20Transfer { from, to, amount }),
            (0usize..N_ACCOUNTS, 0u128..500)
                .prop_map(|(from, amount)| WorkOp::Erc20Burn { from, amount }),
        ]
    }

    fn build_chain(kind: BackendKind) -> Blockchain {
        let mut chain = Blockchain::single_validator(
            77,
            &[
                (Address::of(&KeyPair::from_seed(100).public), 100_000),
                (Address::of(&KeyPair::from_seed(101).public), 50_000),
                (Address::of(&KeyPair::from_seed(102).public), 0),
            ],
            ContractRegistry::new(),
        );
        chain.state.set_backend(kind);
        chain
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn backends_agree_on_random_workloads(
            ops in proptest::collection::vec(op_strategy(), 1..40),
        ) {
            let keys: Vec<KeyPair> =
                (0..N_ACCOUNTS as u64).map(|i| KeyPair::from_seed(100 + i)).collect();
            let mut smt = build_chain(BackendKind::Smt);
            let mut oracle = build_chain(BackendKind::FullRehash);
            prop_assert_eq!(smt.state.backend_name(), "smt");
            prop_assert_eq!(oracle.state.backend_name(), "rehash");
            prop_assert_eq!(smt.state.state_root(), oracle.state.state_root());

            let mut nonces = [0u64; N_ACCOUNTS];
            for batch in ops.chunks(4) {
                for op in batch {
                    let (from, kind) = match *op {
                        WorkOp::Native { from, to, amount } => (from, TxKind::Transfer {
                            to: Address::of(&keys[to].public),
                            amount,
                        }),
                        WorkOp::Erc20Create { from } => (from, TxKind::Erc20(Erc20Op::Create {
                            symbol: "TOK".into(),
                            initial_supply: 1_000,
                        })),
                        WorkOp::Erc20Mint { from, to, amount } => {
                            (from, TxKind::Erc20(Erc20Op::Mint {
                                token: pds2_chain::TokenId(0),
                                to: Address::of(&keys[to].public),
                                amount,
                            }))
                        }
                        WorkOp::Erc20Transfer { from, to, amount } => {
                            (from, TxKind::Erc20(Erc20Op::Transfer {
                                token: pds2_chain::TokenId(0),
                                to: Address::of(&keys[to].public),
                                amount,
                            }))
                        }
                        WorkOp::Erc20Burn { from, amount } => {
                            (from, TxKind::Erc20(Erc20Op::Burn { token: pds2_chain::TokenId(0), amount }))
                        }
                    };
                    let tx = Transaction {
                        from: keys[from].public.clone(),
                        nonce: nonces[from],
                        kind,
                        gas_limit: 200_000,
                        max_fee_per_gas: 2,
                        priority_fee_per_gas: 1,
                    }
                    .sign(&keys[from]);
                    nonces[from] += 1;
                    // Admission can fail (unaffordable fees on a drained
                    // account) — identically on both chains.
                    let a = smt.submit(tx.clone());
                    let b = oracle.submit(tx);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "admission diverged");
                    if a.is_err() {
                        nonces[from] -= 1;
                    }
                }
                let b1 = smt.produce_block();
                let b2 = oracle.produce_block();
                // Bit-identical blocks, and therefore bit-identical roots,
                // after every block — not just at the end.
                prop_assert_eq!(&b1.header.state_root, &b2.header.state_root,
                    "state roots diverged at height {}", b1.header.height);
                prop_assert_eq!(b1.header.hash(), b2.header.hash());
                prop_assert_eq!(
                    smt.state.total_native_supply(),
                    smt.state.recompute_native_supply(),
                    "O(1) supply counter drifted from the ground truth"
                );
            }
            // Cross-check the proof path against the oracle root: an
            // account proof taken from the SMT chain verifies against the
            // root the full-rehash oracle computed independently.
            let addr = Address::of(&keys[0].public);
            let proof = smt.prove_account(&addr);
            prop_assert!(pds2_chain::verify_account_proof(
                &oracle.state.state_root(),
                &addr,
                &proof,
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Model-based state machine for the sparse Merkle tree itself: random
// insert/update/delete sequences run against the real COW tree while a
// HashMap mirror tracks the exact leaf set. After every commit the tree
// root must equal a from-scratch build of the mirror, lookups must agree,
// and (non-)inclusion proofs must verify for present and absent keys.
// ---------------------------------------------------------------------------

mod smt_model {
    use super::*;
    use pds2_chain::smt::{SmtTree, MAX_DEPTH};
    use proptest::prop_oneof;
    use std::collections::HashMap;

    #[derive(Clone, Debug)]
    enum SmtOp {
        Insert(u16, u64),
        Delete(u16),
    }

    fn op_strategy() -> impl Strategy<Value = SmtOp> {
        prop_oneof![
            // Inserts listed three times so they dominate the mix.
            (0u16..64, any::<u64>()).prop_map(|(k, v)| SmtOp::Insert(k, v)),
            (0u16..64, any::<u64>()).prop_map(|(k, v)| SmtOp::Insert(k, v)),
            (0u16..64, any::<u64>()).prop_map(|(k, v)| SmtOp::Insert(k, v)),
            (0u16..64).prop_map(SmtOp::Delete),
        ]
    }

    fn key(k: u16) -> pds2_crypto::Digest {
        sha256(&k.to_le_bytes())
    }

    fn value(v: u64) -> pds2_crypto::Digest {
        sha256(&v.to_le_bytes())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn smt_matches_hashmap_mirror(
            batches in proptest::collection::vec(
                proptest::collection::vec(op_strategy(), 1..12),
                1..10,
            ),
        ) {
            prop_assert_eq!(MAX_DEPTH, 256);
            let mut tree = SmtTree::new();
            let mut mirror: HashMap<u16, u64> = HashMap::new();
            for batch in &batches {
                let updates: Vec<(pds2_crypto::Digest, Option<pds2_crypto::Digest>)> = batch
                    .iter()
                    .map(|op| match *op {
                        SmtOp::Insert(k, v) => (key(k), Some(value(v))),
                        SmtOp::Delete(k) => (key(k), None),
                    })
                    .collect();
                for op in batch {
                    match *op {
                        SmtOp::Insert(k, v) => {
                            mirror.insert(k, v);
                        }
                        SmtOp::Delete(k) => {
                            mirror.remove(&k);
                        }
                    }
                }
                tree.commit(updates);

                // Root equals a from-scratch build over the mirror.
                let leaves: Vec<(pds2_crypto::Digest, pds2_crypto::Digest)> =
                    mirror.iter().map(|(&k, &v)| (key(k), value(v))).collect();
                let (scratch, _) = SmtTree::from_leaves(leaves);
                prop_assert_eq!(tree.root_hash(), scratch.root_hash(),
                    "incremental and from-scratch roots diverged");
                prop_assert_eq!(tree.len(), mirror.len());

                // Lookups and proofs agree with the mirror on every probed
                // key, present or absent.
                let root = tree.root_hash();
                for k in 0u16..64 {
                    let got = tree.get(&key(k));
                    let want = mirror.get(&k).map(|&v| value(v));
                    prop_assert_eq!(got, want, "lookup diverged for key {}", k);
                    let proof = tree.prove(&key(k));
                    match mirror.get(&k) {
                        Some(&v) => prop_assert!(
                            proof.verify_inclusion(&root, &key(k), &value(v)),
                            "inclusion proof failed for key {}", k
                        ),
                        None => prop_assert!(
                            proof.verify_absence(&root, &key(k)),
                            "absence proof failed for key {}", k
                        ),
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Model-based state machine for the fee-market mempool.
//
// Random op sequences (insert / remove / prune / select) run against the
// real pool with a small capacity (so eviction actually fires) while a
// shadow mirror tracks what must be pending. The invariants under test:
//   * the pool's secondary indexes stay consistent (`check_invariants`)
//     and the size bound holds after every op;
//   * eviction only ever removes an account's *tail* nonce (so it can
//     never orphan a cheaper transaction that later nonces depend on)
//     and never the submitting account's own chain;
//   * selections are per-account gapless runs starting exactly at the
//     account's state nonce, within the gas and count budgets;
//   * the same insert sequence drains in the same order on every rerun
//     and at every worker count (the programmatic `PDS2_THREADS`).
// ---------------------------------------------------------------------------

mod mempool_props {
    use super::*;
    use pds2_chain::mempool::{InsertOutcome, Mempool, SelectionStats, SubmitError};
    use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
    use pds2_crypto::{Digest, Signature};
    use proptest::prop_oneof;
    use std::collections::BTreeMap;

    const N_ACCOUNTS: usize = 4;
    const CAPACITY: usize = 8;
    const TX_GAS: u64 = 50_000;
    const BLOCK_GAS: u64 = 1_000_000;

    #[derive(Clone, Debug)]
    enum Op {
        /// Insert at `state_nonce + offset` (the chain never hands the
        /// pool a stale nonce, so neither does the generator).
        Insert {
            account: usize,
            offset: u64,
            max_fee: u64,
            prio: u64,
        },
        /// Remove the i-th pending hash (mod population), as block
        /// inclusion does.
        RemoveNth(usize),
        /// An external block consumed `advance` nonces the pool never
        /// saw: prune below the new state nonce.
        Prune { account: usize, advance: u64 },
        /// Build a block: select under a gas/count budget.
        Select {
            base_fee: u64,
            max_txs: usize,
            gas_blocks: u64,
        },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Inserts listed twice: admission (and thus eviction) should
        // dominate the mix.
        prop_oneof![
            (0usize..N_ACCOUNTS, 0u64..4, 1u64..60, 0u64..60).prop_map(
                |(account, offset, max_fee, prio)| Op::Insert {
                    account,
                    offset,
                    max_fee,
                    prio,
                }
            ),
            (0usize..N_ACCOUNTS, 0u64..2, 30u64..90, 0u64..90).prop_map(
                |(account, offset, max_fee, prio)| Op::Insert {
                    account,
                    offset,
                    max_fee,
                    prio,
                }
            ),
            (0usize..16).prop_map(Op::RemoveNth),
            (0usize..N_ACCOUNTS, 1u64..3)
                .prop_map(|(account, advance)| Op::Prune { account, advance }),
            (0u64..20, 1usize..5, 1u64..5).prop_map(|(base_fee, max_txs, gas_blocks)| {
                Op::Select {
                    base_fee,
                    max_txs,
                    gas_blocks,
                }
            }),
        ]
    }

    /// A transaction the mempool will accept. The signature is a shared
    /// donor: admission never verifies signatures (the chain does, before
    /// the pool ever sees the transaction), and skipping per-tx signing
    /// keeps the generators cheap.
    fn ptx(
        keys: &[KeyPair],
        donor: &Signature,
        account: usize,
        nonce: u64,
        max_fee: u64,
        prio: u64,
    ) -> SignedTransaction {
        SignedTransaction::new(
            Transaction {
                from: keys[account].public.clone(),
                nonce,
                kind: TxKind::Transfer {
                    to: Address::of(&KeyPair::from_seed(999).public),
                    amount: 1,
                },
                gas_limit: TX_GAS,
                max_fee_per_gas: max_fee,
                priority_fee_per_gas: prio,
            },
            donor.clone(),
        )
    }

    fn test_keys() -> (Vec<KeyPair>, Signature) {
        let keys: Vec<KeyPair> = (0..N_ACCOUNTS as u64)
            .map(|i| KeyPair::from_seed(3_000 + i))
            .collect();
        let donor = KeyPair::from_seed(2_999).sign(b"mempool-proptest-donor");
        (keys, donor)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mempool_state_machine(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let (keys, donor) = test_keys();
            let addrs: Vec<Address> =
                keys.iter().map(|k| Address::of(&k.public)).collect();
            let mut pool = Mempool::new(CAPACITY);
            // Shadow mirror: address → nonce → pending hash, plus each
            // account's state nonce.
            let mut mirror: BTreeMap<Address, BTreeMap<u64, Digest>> = BTreeMap::new();
            let mut nonces: BTreeMap<Address, u64> =
                addrs.iter().map(|a| (*a, 0)).collect();

            for op in &ops {
                match *op {
                    Op::Insert { account, offset, max_fee, prio } => {
                        let sender = addrs[account];
                        let nonce = nonces[&sender] + offset;
                        let t = ptx(&keys, &donor, account, nonce, max_fee, prio);
                        let hash = t.hash();
                        let was_full = pool.len() == CAPACITY;
                        let mut evicted = Vec::new();
                        match pool.insert(t, nonces[&sender], BLOCK_GAS, &mut evicted) {
                            Ok(outcome) => {
                                // Evictions (applied before the insert)
                                // may only take other accounts' tails.
                                for h in &evicted {
                                    let victim = mirror
                                        .iter_mut()
                                        .find(|(_, chain)| chain.values().any(|v| v == h))
                                        .map(|(a, chain)| (*a, chain));
                                    let (addr, chain) =
                                        victim.expect("evicted hash must be mirrored");
                                    prop_assert_ne!(addr, sender, "evicted the submitter");
                                    let (&tail, _) = chain.iter().next_back().unwrap();
                                    prop_assert_eq!(
                                        chain.get(&tail), Some(h),
                                        "eviction took a non-tail nonce"
                                    );
                                    chain.remove(&tail);
                                    if chain.is_empty() {
                                        mirror.remove(&addr);
                                    }
                                }
                                if let InsertOutcome::Replaced(old) = outcome {
                                    let slot = mirror
                                        .get_mut(&sender)
                                        .and_then(|c| c.remove(&nonce));
                                    prop_assert_eq!(slot, Some(old), "replaced wrong slot");
                                }
                                mirror.entry(sender).or_default().insert(nonce, hash);
                                prop_assert!(pool.contains(&hash));
                            }
                            Err(SubmitError::ReplacementUnderpriced { .. }) => {
                                prop_assert!(
                                    mirror.get(&sender).is_some_and(|c| c.contains_key(&nonce)),
                                    "replacement error without a pending slot"
                                );
                                prop_assert!(evicted.is_empty());
                            }
                            Err(SubmitError::Underpriced { .. } | SubmitError::PoolFull { .. }) => {
                                prop_assert!(was_full, "refusal from a non-full pool");
                                prop_assert!(evicted.is_empty());
                            }
                            Err(e @ SubmitError::GasLimitTooHigh { .. }) => {
                                prop_assert!(false, "unexpected {}", e);
                            }
                        }
                    }
                    Op::RemoveNth(i) => {
                        let pending: Vec<(Address, u64, Digest)> = mirror
                            .iter()
                            .flat_map(|(a, c)| c.iter().map(|(n, h)| (*a, *n, *h)))
                            .collect();
                        if pending.is_empty() {
                            prop_assert!(!pool.remove_by_hash(&pds2_crypto::sha256(b"absent")));
                        } else {
                            let (addr, nonce, hash) = pending[i % pending.len()];
                            prop_assert!(pool.remove_by_hash(&hash));
                            prop_assert!(!pool.remove_by_hash(&hash), "double remove");
                            let chain = mirror.get_mut(&addr).unwrap();
                            chain.remove(&nonce);
                            if chain.is_empty() {
                                mirror.remove(&addr);
                            }
                        }
                    }
                    Op::Prune { account, advance } => {
                        let sender = addrs[account];
                        let new_nonce = nonces[&sender] + advance;
                        let expect = mirror
                            .get(&sender)
                            .map_or(0, |c| c.range(..new_nonce).count());
                        prop_assert_eq!(pool.prune_stale(sender, new_nonce), expect);
                        if let Some(chain) = mirror.get_mut(&sender) {
                            *chain = chain.split_off(&new_nonce);
                            if chain.is_empty() {
                                mirror.remove(&sender);
                            }
                        }
                        nonces.insert(sender, new_nonce);
                    }
                    Op::Select { base_fee, max_txs, gas_blocks } => {
                        let gas_limit = gas_blocks * TX_GAS;
                        let mut stats = SelectionStats::default();
                        let sel = {
                            let lookup = &nonces;
                            pool.select(base_fee, gas_limit, max_txs, |a| lookup[a], &mut stats)
                        };
                        prop_assert!(sel.len() <= max_txs);
                        let gas: u64 = sel.iter().map(|t| t.tx.gas_limit).sum();
                        prop_assert!(gas <= gas_limit, "selection blew the gas budget");
                        prop_assert_eq!(stats.stale_dropped, 0, "mirror never goes stale");
                        let mut per: BTreeMap<Address, Vec<u64>> = BTreeMap::new();
                        for t in &sel {
                            prop_assert!(
                                t.tx.effective_tip(base_fee).is_some(),
                                "selected an unaffordable transaction"
                            );
                            prop_assert!(!pool.contains(&t.hash()), "selected but still pending");
                            per.entry(t.tx.sender()).or_default().push(t.tx.nonce);
                        }
                        for (addr, got) in per {
                            let start = nonces[&addr];
                            let want: Vec<u64> =
                                (start..start + got.len() as u64).collect();
                            prop_assert_eq!(
                                &got, &want,
                                "selection for {} is not a gapless run from its state nonce",
                                addr
                            );
                            let chain = mirror.get_mut(&addr).unwrap();
                            for n in &want {
                                prop_assert!(chain.remove(n).is_some(), "selected unmirrored tx");
                            }
                            if chain.is_empty() {
                                mirror.remove(&addr);
                            }
                            nonces.insert(addr, start + want.len() as u64);
                        }
                    }
                }
                // After every op: indexes consistent, bound held, mirror agreed.
                pool.check_invariants();
                prop_assert!(pool.len() <= CAPACITY);
                let mirrored: usize = mirror.values().map(|c| c.len()).sum();
                prop_assert_eq!(pool.len(), mirrored, "pool and mirror disagree on size");
            }
            // Final census: the pool holds exactly the mirrored transactions.
            let left: Vec<(Address, u64)> = pool
                .all()
                .iter()
                .map(|t| (t.tx.sender(), t.tx.nonce))
                .collect();
            let want: Vec<(Address, u64)> = mirror
                .iter()
                .flat_map(|(a, c)| c.keys().map(|n| (*a, *n)))
                .collect();
            prop_assert_eq!(left, want);
        }

        /// Draining the same insert sequence selects the same transactions
        /// in the same order on a rerun and at every worker count.
        #[test]
        fn mempool_selection_is_deterministic(
            txs in proptest::collection::vec(
                (0usize..N_ACCOUNTS, 0u64..6, 1u64..60, 0u64..60),
                1..40,
            ),
            base_fee in 0u64..20,
        ) {
            let (keys, donor) = test_keys();
            let drain = || {
                let mut pool = Mempool::new(64);
                let mut evicted = Vec::new();
                for &(account, nonce, max_fee, prio) in &txs {
                    let _ = pool.insert(
                        ptx(&keys, &donor, account, nonce, max_fee, prio),
                        0,
                        BLOCK_GAS,
                        &mut evicted,
                    );
                }
                let mut nonces: BTreeMap<Address, u64> = keys
                    .iter()
                    .map(|k| (Address::of(&k.public), 0))
                    .collect();
                let mut order = Vec::new();
                loop {
                    let mut stats = SelectionStats::default();
                    let sel = {
                        let lookup = &nonces;
                        pool.select(base_fee, 3 * TX_GAS, 2, |a| lookup[a], &mut stats)
                    };
                    if sel.is_empty() {
                        break; // drained, or only gap/fee-blocked txs remain
                    }
                    for t in sel {
                        nonces.insert(t.tx.sender(), t.tx.nonce + 1);
                        order.push(t.hash());
                    }
                }
                (order, pool.len())
            };
            let base = drain();
            prop_assert_eq!(&drain(), &base, "rerun diverged");
            for threads in [1usize, 4, 8] {
                let r = pds2_par::with_threads(threads, drain);
                prop_assert_eq!(&r, &base, "selection diverged at {} threads", threads);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Model-based state machine for the workload contract lifecycle.
//
// Random call sequences run against the real chain while a shadow model
// predicts, for every call, whether it must succeed and what every balance
// must be afterwards. The invariants under test:
//   * escrow is never double-spent (contract balance matches the model
//     exactly, and native supply is conserved);
//   * refund XOR payout: the escrow leaves the contract exactly once —
//     either entirely back to the consumer (cancel/expire/abort) or as
//     payouts + remainder-refund (finalize);
//   * terminal phases are absorbing: after Completed/Cancelled every
//     further call fails and no balance moves.
// ---------------------------------------------------------------------------

mod workload_lifecycle {
    use super::*;
    use pds2_chain::chain::Blockchain;
    use pds2_chain::contract::ContractRegistry;
    use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
    use pds2_core::contract::{calls, WorkloadContract, WORKLOAD_CODE_ID};
    use proptest::prop_oneof;
    use std::collections::BTreeMap;

    const PROVIDER_REWARD: u128 = 1_000;
    const EXECUTOR_FEE: u128 = 50;
    const MIN_PROVIDERS: u32 = 1;
    const MIN_RECORDS: u64 = 10;
    const DEADLINE_HEIGHT: u64 = 6;
    const EXEC_TIMEOUT_BLOCKS: u64 = 2;

    #[derive(Clone, Debug)]
    pub enum Op {
        Fund(u128),
        Register(usize),
        Participate {
            executor: usize,
            provider: usize,
            records: u64,
        },
        Start,
        SubmitResult {
            executor: usize,
        },
        Finalize {
            share: u128,
        },
        Cancel,
        Expire,
        Abort,
        Mine,
    }

    pub fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u128..3_000).prop_map(Op::Fund),
            (0usize..2).prop_map(Op::Register),
            (0usize..2, 0usize..2, 1u64..40).prop_map(|(executor, provider, records)| {
                Op::Participate {
                    executor,
                    provider,
                    records,
                }
            }),
            Just(Op::Start),
            (0usize..2).prop_map(|executor| Op::SubmitResult { executor }),
            (0u128..1_200).prop_map(|share| Op::Finalize { share }),
            Just(Op::Cancel),
            Just(Op::Expire),
            Just(Op::Abort),
            Just(Op::Mine),
        ]
    }

    #[derive(Clone, Copy, PartialEq, Debug)]
    pub enum ModelPhase {
        Open,
        Executing,
        Terminal,
    }

    /// Shadow model of the on-chain contract: enough state to predict the
    /// outcome of every call and the exact post-state of every balance.
    pub struct Model {
        pub phase: ModelPhase,
        pub escrow: u128,
        pub started_height: u64,
        pub registered: [bool; 2],
        pub voted: [bool; 2],
        /// (provider index, records, executor index)
        pub contributions: Vec<(usize, u64, usize)>,
    }

    impl Model {
        pub fn new() -> Self {
            Model {
                phase: ModelPhase::Open,
                escrow: 0,
                started_height: 0,
                registered: [false; 2],
                voted: [false; 2],
                contributions: Vec::new(),
            }
        }

        fn registered_count(&self) -> u128 {
            self.registered.iter().filter(|r| **r).count() as u128
        }

        fn all_contributing_executors_voted(&self) -> bool {
            self.contributions.iter().all(|&(_, _, e)| self.voted[e])
        }

        /// Predicts whether the call must succeed at `exec_height`.
        pub fn predict(&self, op: &Op, exec_height: u64) -> bool {
            use ModelPhase::*;
            match *op {
                Op::Fund(_) => self.phase == Open,
                Op::Register(e) => self.phase == Open && !self.registered[e],
                Op::Participate {
                    executor, provider, ..
                } => {
                    self.phase == Open
                        && self.registered[executor]
                        && !self.contributions.iter().any(|&(p, _, _)| p == provider)
                }
                Op::Start => {
                    self.phase == Open
                        && self.contributions.len() as u32 >= MIN_PROVIDERS
                        && self.contributions.iter().map(|&(_, r, _)| r).sum::<u64>() >= MIN_RECORDS
                        && self.escrow >= PROVIDER_REWARD + EXECUTOR_FEE * self.registered_count()
                }
                Op::SubmitResult { executor } => {
                    self.phase == Executing && self.registered[executor] && !self.voted[executor]
                }
                Op::Finalize { share } => {
                    self.phase == Executing
                        && self.all_contributing_executors_voted()
                        && share <= PROVIDER_REWARD
                }
                Op::Cancel => self.phase == Open,
                Op::Expire => self.phase == Open && exec_height > DEADLINE_HEIGHT,
                Op::Abort => {
                    self.phase == Executing
                        && exec_height > self.started_height + EXEC_TIMEOUT_BLOCKS
                }
                Op::Mine => true,
            }
        }
    }

    fn call_tx(
        kp: &KeyPair,
        nonce: u64,
        contract: Address,
        input: Vec<u8>,
        value: u128,
    ) -> SignedTransaction {
        Transaction {
            from: kp.public.clone(),
            nonce,
            kind: TxKind::Call {
                contract,
                input,
                value,
            },
            gas_limit: 1_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(kp)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn contract_lifecycle_state_machine(
            ops in proptest::collection::vec(op_strategy(), 1..30),
        ) {
            let consumer = KeyPair::from_seed(1);
            let executors = [KeyPair::from_seed(10), KeyPair::from_seed(11)];
            let providers = [
                Address::of(&KeyPair::from_seed(20).public),
                Address::of(&KeyPair::from_seed(21).public),
            ];
            let consumer_addr = Address::of(&consumer.public);
            let executor_addrs = [
                Address::of(&executors[0].public),
                Address::of(&executors[1].public),
            ];
            let mut registry = ContractRegistry::new();
            registry.register(WORKLOAD_CODE_ID, WorkloadContract::construct);
            let mut chain = Blockchain::single_validator(
                77,
                &[
                    (consumer_addr, 1_000_000),
                    (executor_addrs[0], 1_000),
                    (executor_addrs[1], 1_000),
                ],
                registry,
            );
            let initial_supply = chain.state.total_native_supply();

            // Deploy the workload with a short deadline and execution
            // timeout so the sequence can actually reach both.
            let deploy = Transaction {
                from: consumer.public.clone(),
                nonce: 0,
                kind: TxKind::Deploy {
                    code_id: WORKLOAD_CODE_ID.into(),
                    init: WorkloadContract::init_bytes(
                        sha256(b"spec"),
                        sha256(b"code"),
                        PROVIDER_REWARD,
                        EXECUTOR_FEE,
                        MIN_PROVIDERS,
                        MIN_RECORDS,
                        DEADLINE_HEIGHT,
                        EXEC_TIMEOUT_BLOCKS,
                        None,
                    ),
                },
                gas_limit: 1_000_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(&consumer);
            let deploy_hash = deploy.hash();
            chain.submit(deploy).unwrap();
            chain.produce_block();
            let contract = chain
                .receipt(&deploy_hash)
                .expect("deploy receipt")
                .deployed
                .expect("deploy succeeds");

            let mut model = Model::new();
            let mut expected: BTreeMap<Address, u128> = BTreeMap::new();
            expected.insert(consumer_addr, 1_000_000);
            expected.insert(executor_addrs[0], 1_000);
            expected.insert(executor_addrs[1], 1_000);
            expected.insert(providers[0], 0);
            expected.insert(providers[1], 0);
            expected.insert(contract, 0);
            let mut consumer_nonce: u64 = 1;
            let mut executor_nonces: [u64; 2] = [0, 0];
            let result_digest = sha256(b"result");

            for op in &ops {
                // `produce_block` executes at the pre-production height.
                let exec_height = chain.height();
                let predicted = model.predict(op, exec_height);
                let was_terminal = model.phase == ModelPhase::Terminal;

                let tx = match *op {
                    Op::Fund(v) => {
                        let t = call_tx(&consumer, consumer_nonce, contract, calls::fund(), v);
                        consumer_nonce += 1;
                        Some(t)
                    }
                    Op::Register(e) => {
                        let t = call_tx(
                            &executors[e],
                            executor_nonces[e],
                            contract,
                            calls::register_executor(),
                            0,
                        );
                        executor_nonces[e] += 1;
                        Some(t)
                    }
                    Op::Participate {
                        executor,
                        provider,
                        records,
                    } => {
                        let input = calls::submit_participation(&[(
                            providers[provider],
                            records,
                            sha256(b"cert"),
                        )]);
                        let t = call_tx(
                            &executors[executor],
                            executor_nonces[executor],
                            contract,
                            input,
                            0,
                        );
                        executor_nonces[executor] += 1;
                        Some(t)
                    }
                    Op::Start => {
                        let t = call_tx(&consumer, consumer_nonce, contract, calls::start(), 0);
                        consumer_nonce += 1;
                        Some(t)
                    }
                    Op::SubmitResult { executor } => {
                        let t = call_tx(
                            &executors[executor],
                            executor_nonces[executor],
                            contract,
                            calls::submit_result(result_digest),
                            0,
                        );
                        executor_nonces[executor] += 1;
                        Some(t)
                    }
                    Op::Finalize { share } => {
                        let shares = match model.contributions.first() {
                            Some(&(p, _, _)) => vec![(providers[p], share)],
                            None => Vec::new(),
                        };
                        let t = call_tx(
                            &consumer,
                            consumer_nonce,
                            contract,
                            calls::finalize(&shares),
                            0,
                        );
                        consumer_nonce += 1;
                        Some(t)
                    }
                    Op::Cancel => {
                        let t = call_tx(&consumer, consumer_nonce, contract, calls::cancel(), 0);
                        consumer_nonce += 1;
                        Some(t)
                    }
                    // Expire and abort are public: send them from executors
                    // to exercise the anyone-may-call path.
                    Op::Expire => {
                        let t = call_tx(
                            &executors[0],
                            executor_nonces[0],
                            contract,
                            calls::expire(),
                            0,
                        );
                        executor_nonces[0] += 1;
                        Some(t)
                    }
                    Op::Abort => {
                        let t = call_tx(
                            &executors[1],
                            executor_nonces[1],
                            contract,
                            calls::abort(),
                            0,
                        );
                        executor_nonces[1] += 1;
                        Some(t)
                    }
                    Op::Mine => None,
                };

                let success = match tx {
                    Some(tx) => {
                        let hash = tx.hash();
                        chain.submit(tx).unwrap();
                        chain.produce_block();
                        chain.receipt(&hash).expect("receipt recorded").success
                    }
                    None => {
                        chain.produce_block();
                        true
                    }
                };

                prop_assert_eq!(
                    success, predicted,
                    "model disagreed on {:?} at height {} (phase {:?})",
                    op, exec_height, model.phase
                );
                // Terminal phases absorb every call.
                if was_terminal && !matches!(op, Op::Mine) {
                    prop_assert!(!success, "{op:?} succeeded after terminal phase");
                }

                // Apply the successful op to the model and expected balances.
                if success {
                    match *op {
                        Op::Fund(v) => {
                            model.escrow += v;
                            *expected.get_mut(&consumer_addr).unwrap() -= v;
                            *expected.get_mut(&contract).unwrap() += v;
                        }
                        Op::Register(e) => model.registered[e] = true,
                        Op::Participate {
                            executor,
                            provider,
                            records,
                        } => model.contributions.push((provider, records, executor)),
                        Op::Start => {
                            model.phase = ModelPhase::Executing;
                            model.started_height = exec_height;
                        }
                        Op::SubmitResult { executor } => model.voted[executor] = true,
                        Op::Finalize { share } => {
                            // Unanimous result: every voter earns the fee,
                            // the first contributor's provider earns the
                            // share, the consumer gets the remainder.
                            let mut paid: u128 = 0;
                            if share > 0 {
                                let (p, _, _) = model.contributions[0];
                                *expected.get_mut(&providers[p]).unwrap() += share;
                                paid += share;
                            }
                            for (addr, voted) in executor_addrs.iter().zip(&model.voted) {
                                if *voted {
                                    *expected.get_mut(addr).unwrap() += EXECUTOR_FEE;
                                    paid += EXECUTOR_FEE;
                                }
                            }
                            prop_assert!(paid <= model.escrow, "payout exceeds escrow");
                            *expected.get_mut(&consumer_addr).unwrap() += model.escrow - paid;
                            *expected.get_mut(&contract).unwrap() = 0;
                            model.escrow = 0;
                            model.phase = ModelPhase::Terminal;
                        }
                        Op::Cancel | Op::Expire | Op::Abort => {
                            // Full refund, exactly once.
                            *expected.get_mut(&consumer_addr).unwrap() += model.escrow;
                            *expected.get_mut(&contract).unwrap() = 0;
                            model.escrow = 0;
                            model.phase = ModelPhase::Terminal;
                        }
                        Op::Mine => {}
                    }
                }

                // Invariants, every step.
                prop_assert_eq!(
                    chain.state.total_native_supply(),
                    initial_supply,
                    "supply not conserved after {:?}",
                    op
                );
                for (addr, want) in &expected {
                    prop_assert_eq!(
                        chain.state.balance(addr),
                        *want,
                        "balance of {} wrong after {:?} (phase {:?})",
                        addr, op, model.phase
                    );
                }
                if model.phase == ModelPhase::Terminal {
                    prop_assert_eq!(
                        chain.state.balance(&contract),
                        0,
                        "terminal contract still holds escrow"
                    );
                }
            }
        }
    }
}

/// The link model's fixed-point slowdown (1/1024ths) against the old
/// f64 formula: for any multiplier, the integer delay matches the f64
/// delay computed from the *quantized* multiplier to within 1 tick
/// (the quantization itself is the intended platform-independence fix,
/// so the comparison holds it fixed).
mod link_fixed_point {
    use pds2::net::link::{apply_slowdown, quantize_slowdown};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn fixed_point_slowdown_matches_f64_within_one_tick(
            raw_us in 0u64..100_000_000,
            slowdown in 0.5f64..1_000.0,
        ) {
            let q = quantize_slowdown(slowdown);
            let fixed = apply_slowdown(raw_us, q);
            let float = (raw_us as f64 * (q as f64 / 1024.0)) as u64;
            prop_assert!(
                fixed.abs_diff(float) <= 1,
                "raw={raw_us} s={slowdown} q={q}: fixed={fixed} float={float}"
            );
            // Exact multiples of 1/1024 reproduce the f64 product exactly.
            let exact = (q as f64) / 1024.0;
            let q2 = quantize_slowdown(exact);
            prop_assert_eq!(q2, q);
            prop_assert_eq!(apply_slowdown(raw_us, q2), (raw_us as f64 * exact) as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Threshold governance (DESIGN.md §5i). Three invariants the protocol
// stands on: any t-of-n quorum reconstructs the same group secret (and
// signs validly under the one group key), proactive refresh re-randomizes
// every share without moving the group key, and t−1 shares reconstruct
// garbage — the whole point of the threshold.
// ---------------------------------------------------------------------------

mod threshold_gov_props {
    use super::*;
    use pds2_crypto::bigint::BigUint;
    use pds2_crypto::schnorr::{Group, PublicKey};
    use pds2_gov::dkg::{
        lagrange_at, refresh_committee, refresh_share, run_dkg_quiet, ThresholdParams,
        ValidatorShare,
    };
    use pds2_gov::sign::sign_with_quorum;

    /// Interpolates `f(0)` (the group secret) from a share subset.
    fn interpolate(shares: &[&ValidatorShare], q: &BigUint) -> BigUint {
        let signers: Vec<u64> = shares.iter().map(|s| s.index).collect();
        let mut x = BigUint::zero();
        for s in shares {
            let lambda = lagrange_at(&signers, s.index, 0, q).unwrap();
            x = x.add_mod(&s.scalar.mul_mod(&lambda, q), q);
        }
        x
    }

    /// A rotated size-`k` subset of the share vector starting at `start`.
    fn subset(shares: &[ValidatorShare], k: usize, start: usize) -> Vec<&ValidatorShare> {
        (0..k)
            .map(|i| &shares[(start + i) % shares.len()])
            .collect()
    }

    proptest! {
        // DKG + modexp per case is much heavier than the other modules'
        // subjects; 16 cases still sweeps (seed, n, subset) thoroughly.
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn any_t_subset_reconstructs_the_same_secret_and_signs(
            seed in any::<u64>(),
            n in 3usize..7,
            start in 0usize..8,
        ) {
            let params = ThresholdParams::majority(n);
            let (committee, shares) = run_dkg_quiet(seed, params).unwrap();
            let group = Group::standard();
            let a = subset(&shares, params.t, start % n);
            let b = subset(&shares, params.t, (start + 1) % n);
            let xa = interpolate(&a, &group.q);
            prop_assert_eq!(
                &xa, &interpolate(&b, &group.q),
                "two different quorums disagree on the group secret"
            );
            prop_assert_eq!(
                &PublicKey::from_element(group.pow_g(&xa)),
                committee.group_public(),
                "interpolated secret does not open the group commitment"
            );
            // Both quorums' aggregates verify under the single group key.
            let sig_a = sign_with_quorum(&committee, &a, b"gov-prop").unwrap();
            prop_assert!(committee.group_public().verify(b"gov-prop", &sig_a));
            let sig_b = sign_with_quorum(&committee, &b, b"gov-prop").unwrap();
            prop_assert!(committee.group_public().verify(b"gov-prop", &sig_b));
        }

        #[test]
        fn refresh_preserves_group_key_and_changes_every_share(
            seed in any::<u64>(),
            n in 3usize..7,
        ) {
            let params = ThresholdParams::majority(n);
            let (mut committee, mut shares) = run_dkg_quiet(seed, params).unwrap();
            let key_before = committee.group_public().clone();
            let old: Vec<BigUint> = shares.iter().map(|s| s.scalar.clone()).collect();
            refresh_committee(&mut committee);
            for share in &mut shares {
                refresh_share(params, seed, share);
            }
            prop_assert_eq!(
                committee.group_public(), &key_before,
                "proactive refresh moved the group public key"
            );
            for (share, old_scalar) in shares.iter().zip(&old) {
                prop_assert_ne!(
                    &share.scalar, old_scalar,
                    "share {} survived the refresh unchanged", share.index
                );
                prop_assert_eq!(share.epoch, 1);
            }
            // Refreshed quorums still reconstruct the ORIGINAL secret and
            // sign under the unchanged key.
            let group = Group::standard();
            let q = subset(&shares, params.t, 1 % n);
            prop_assert_eq!(
                &PublicKey::from_element(group.pow_g(&interpolate(&q, &group.q))),
                &key_before
            );
            let sig = sign_with_quorum(&committee, &q, b"post-refresh").unwrap();
            prop_assert!(key_before.verify(b"post-refresh", &sig));
        }

        #[test]
        fn t_minus_one_shares_reconstruct_the_wrong_secret(
            seed in any::<u64>(),
            n in 3usize..7,
            start in 0usize..8,
        ) {
            let params = ThresholdParams::majority(n);
            let (committee, shares) = run_dkg_quiet(seed, params).unwrap();
            // majority(n≥3) always has t ≥ 2, so t−1 ≥ 1 shares exist.
            prop_assert!(params.t >= 2);
            let group = Group::standard();
            let short = subset(&shares, params.t - 1, start % n);
            let x = interpolate(&short, &group.q);
            prop_assert_ne!(
                &PublicKey::from_element(group.pow_g(&x)),
                committee.group_public(),
                "t−1 shares must NOT reconstruct the group secret"
            );
        }
    }
}
