//! Integration tests for the privacy stack: the three §III-B techniques
//! agree on results, and differential privacy measurably reduces
//! membership-inference leakage (§IV-D, experiment E11 in miniature).

use pds2::he;
use pds2::learning::attack::loss_threshold_attack;
use pds2::learning::dp::{gaussian_sigma, PrivacyAccountant};
use pds2::learning::gossip::{run_gossip_experiment, DpConfig, GossipConfig};
use pds2::ml::data::gaussian_blobs;
use pds2::ml::model::LogisticRegression;
use pds2::ml::sgd::{train, SgdConfig};
use pds2::mpc::{secure_linear_inference, MpcEngine};
use pds2::net::LinkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All three privacy techniques compute the same linear score.
#[test]
fn he_smc_tee_agree_with_plaintext() {
    let weights = [0.5, -1.25, 2.0, 0.125];
    let features = [4.0, 2.0, 0.5, -8.0];
    let bias = 0.75;
    let expected: f64 = weights
        .iter()
        .zip(&features)
        .map(|(w, x)| w * x)
        .sum::<f64>()
        + bias;

    // HE (Paillier, fixed-point).
    let mut rng = StdRng::seed_from_u64(1);
    let sk = he::generate_keypair(&mut rng, 256).unwrap();
    let fx = |v: f64| (v * 65536.0).round() as i64;
    let enc_w: Vec<_> = weights
        .iter()
        .map(|&w| sk.public.encrypt_signed(&mut rng, fx(w)).unwrap())
        .collect();
    let fixed_x: Vec<i64> = features.iter().map(|&x| fx(x)).collect();
    let dot = he::encrypted_dot(&sk.public, &enc_w, &fixed_x).unwrap();
    let bias_ct = sk
        .public
        .encrypt_signed(&mut rng, fx(bias) * 65536)
        .unwrap();
    let total = sk.public.add(&dot, &bias_ct);
    let he_result = sk.decrypt_signed(&total).unwrap() as f64 / (65536.0 * 65536.0);
    assert!((he_result - expected).abs() < 1e-3, "HE: {he_result}");

    // SMC (3-party).
    let mut engine = MpcEngine::new(3, StdRng::seed_from_u64(2));
    let (smc_result, cost) = secure_linear_inference(&mut engine, &weights, bias, &features);
    assert!((smc_result - expected).abs() < 1e-2, "SMC: {smc_result}");
    assert!(cost.rounds >= 4);

    // TEE: exact plaintext math inside the enclave, with overhead charged.
    use pds2::tee::cost::CostModel;
    use pds2::tee::measurement::EnclaveCode;
    use pds2::tee::platform::Platform;
    let p = Platform::new(3, CostModel::default());
    let mut e = p.launch(&EnclaveCode::new("inf", 1, b"inf".to_vec()));
    let tee_result = e.execute(1_000, 1_000, || {
        weights
            .iter()
            .zip(&features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + bias
    });
    assert_eq!(tee_result, expected);
    assert!(e.meter().charged_ns > 1_000, "overhead charged on top");
}

/// DP-noised gossip training reduces membership-inference advantage on an
/// overfit-prone task, at some accuracy cost.
#[test]
fn dp_reduces_membership_inference_advantage() {
    // Small, high-dimensional, well-separated-but-sparse data overfits.
    let data = gaussian_blobs(80, 16, 2.0, 7);
    let (members, non_members) = data.split(0.5, 8);
    let shards = members.partition_iid(4, 9);

    let run = |dp: Option<DpConfig>| {
        run_gossip_experiment(
            shards.clone(),
            &members, // evaluate on members to extract a model snapshot
            GossipConfig {
                period_us: 100_000,
                local_steps: 6,
                learning_rate: 0.4,
                dp,
                ..Default::default()
            },
            LinkModel::instant(),
            11,
            &[20_000_000],
            None,
            || LogisticRegression::new(16),
        )
    };
    // Train two standalone models directly for the attack comparison
    // (gossip harness returns aggregate accuracy; for the MIA we train the
    // equivalent local models with/without clipped-noisy updates).
    let mut clean = LogisticRegression::new(16);
    train(
        &mut clean,
        &members,
        &SgdConfig {
            learning_rate: 0.5,
            epochs: 300,
            lr_decay: 1.0,
            ..Default::default()
        },
    );
    let clean_attack = loss_threshold_attack(&clean, &members, &non_members);

    // DP-SGD: clipped full-batch gradients plus per-coordinate Gaussian
    // noise on every step.
    use pds2::learning::dp::gaussian_noise;
    use pds2::ml::linalg::clip_norm;
    use pds2::ml::model::Model;
    let mut noisy = LogisticRegression::new(16);
    let mut dp_rng = StdRng::seed_from_u64(5);
    let batch: Vec<usize> = (0..members.len()).collect();
    for _ in 0..300 {
        let mut grad = noisy.gradient(&members, &batch);
        clip_norm(&mut grad, 1.0);
        for g in &mut grad {
            *g += gaussian_noise(&mut dp_rng, 0.25);
        }
        let mut params = noisy.params();
        for (p, g) in params.iter_mut().zip(&grad) {
            *p -= 0.5 * g;
        }
        noisy.set_params(&params);
    }
    let noisy_attack = loss_threshold_attack(&noisy, &members, &non_members);

    assert!(
        clean_attack.advantage > noisy_attack.advantage,
        "DP-style training must reduce leakage: clean {:.3} vs dp {:.3}",
        clean_attack.advantage,
        noisy_attack.advantage
    );

    // The gossip harness itself runs with DP without crashing and still
    // produces a usable model.
    let out = run(Some(DpConfig {
        clip: 1.0,
        noise_multiplier: 0.5,
    }));
    assert!(out.accuracy_curve[0] > 0.6, "{:?}", out.accuracy_curve);
}

/// The privacy accountant composes across a workload's updates and the
/// Gaussian calibration matches the analytic formula.
#[test]
fn privacy_budget_accounting() {
    let mut acc = PrivacyAccountant::new();
    let per_step_eps = 0.05;
    let steps = 40;
    for _ in 0..steps {
        acc.spend(per_step_eps, 1e-7);
    }
    assert!((acc.total_epsilon() - 2.0).abs() < 1e-9);
    // Budget check with a float-safe margin (40 × 0.05 accumulates ULPs).
    assert!(acc.within(2.0 + 1e-9, 1e-4));
    assert!(!acc.within(1.9, 1e-4));
    // Noise needed for the whole budget vs per step.
    assert!(gaussian_sigma(1.0, per_step_eps, 1e-7) > gaussian_sigma(1.0, 2.0, 1e-7));
}

/// Sealed third-party storage leaks no plaintext even under full lifecycle
/// use (spot-check of the §II-E requirement that details of data are
/// invisible to all actors but the provider).
#[test]
fn third_party_operator_sees_only_ciphertext_and_redacted_metadata() {
    use pds2::storage::semantic::{MetaValue, Metadata};
    use pds2::storage::store::{Record, StorageBackend, ThirdPartyStore};
    let key = [9u8; 32];
    let mut store = ThirdPartyStore::new(key, 0);
    let secret_payload = b"very-identifying-sensor-trace".to_vec();
    let meta = Metadata::new()
        .with(
            "type",
            MetaValue::Class("sensor/health/heart-rate".into()),
            0,
        )
        .with("patient-id", MetaValue::Str("P-12345".into()), 9);
    let id = store.put(Record {
        payload: secret_payload.clone(),
        metadata: meta,
        timestamp: 0,
    });
    // Published metadata hides the rank-9 identifier.
    let published = store.published_metadata(id).unwrap();
    assert!(published.get("patient-id").is_none());
    assert!(published.get("type").is_some());
}
