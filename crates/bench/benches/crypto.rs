//! Criterion micro-benchmarks for the cryptographic substrate
//! (supports E3/E9 throughput numbers).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pds2_crypto::bigint::BigUint;
use pds2_crypto::merkle::MerkleTree;
use pds2_crypto::{sha256, KeyPair};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(black_box(&data)));
        });
    }
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = KeyPair::from_seed(1);
    let msg = b"a typical sensor reading payload of moderate size......";
    let sig = kp.sign(msg);
    c.bench_function("schnorr/sign", |b| b.iter(|| kp.sign(black_box(msg))));
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| assert!(kp.public.verify(black_box(msg), &sig)))
    });
}

fn bench_bigint(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = BigUint::random_bits(&mut rng, 1024);
    let m = BigUint::random_bits(&mut rng, 1024).set_bit(0); // odd modulus
    let e = BigUint::random_bits(&mut rng, 256);
    c.bench_function("bigint/mul_1024", |b| b.iter(|| a.mul(black_box(&a))));
    c.bench_function("bigint/modpow_1024_e256", |b| {
        b.iter(|| a.modpow(black_box(&e), &m))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..1024u32).map(|i| i.to_le_bytes().to_vec()).collect();
    c.bench_function("merkle/build_1024", |b| {
        b.iter_batched(
            || leaves.clone(),
            |l| MerkleTree::from_leaves(&l),
            BatchSize::SmallInput,
        )
    });
    let tree = MerkleTree::from_leaves(&leaves);
    let root = tree.root();
    let proof = tree.prove(500).unwrap();
    c.bench_function("merkle/verify_proof", |b| {
        b.iter(|| assert!(proof.verify(black_box(&leaves[500]), &root)))
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_schnorr,
    bench_bigint,
    bench_merkle
);
criterion_main!(benches);
