//! Criterion benchmark for the end-to-end marketplace lifecycle
//! (experiment E1's microbenchmark companion).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pds2_bench::{build_world, round_robin_assignments};
use pds2_core::marketplace::StorageChoice;
use pds2_core::workload::RewardScheme;

fn bench_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("marketplace");
    group.sample_size(10);
    for n_providers in [4usize, 8] {
        group.bench_function(format!("full_lifecycle_{n_providers}prov"), |b| {
            b.iter_batched(
                || {
                    let world = build_world(
                        n_providers as u64,
                        n_providers,
                        2,
                        30,
                        RewardScheme::ProportionalToRecords,
                        |_| StorageChoice::Local,
                    );
                    let assignments = round_robin_assignments(&world);
                    (world, assignments)
                },
                |(mut world, assignments)| {
                    world
                        .market
                        .run_full_lifecycle(world.workload, &assignments)
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    use pds2_bench::temperature_metadata;
    use pds2_core::marketplace::Marketplace;
    use pds2_ml::data::gaussian_blobs;
    let data = gaussian_blobs(50, 4, 0.7, 1);
    let mut group = c.benchmark_group("marketplace");
    group.sample_size(10);
    group.bench_function("ingest_50_signed_readings", |b| {
        b.iter_batched(
            || {
                let mut market = Marketplace::new(1);
                let p = market.register_provider(2, StorageChoice::Local);
                market.provider_add_device(p).unwrap();
                (market, p)
            },
            |(mut market, p)| {
                market
                    .provider_ingest(p, 0, &data, temperature_metadata())
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_lifecycle, bench_ingest);
criterion_main!(benches);
