//! Criterion benchmarks for the §III-B privacy techniques (experiment E4).

use criterion::{criterion_group, criterion_main, Criterion};
use pds2_he as he;
use pds2_mpc::{secure_linear_inference, MpcEngine};
use pds2_tee::measurement::EnclaveCode;
use pds2_tee::platform::Platform;
use pds2_tee::CostModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const DIM: usize = 32;

fn vectors() -> (Vec<f64>, Vec<f64>) {
    let w: Vec<f64> = (0..DIM).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
    let x: Vec<f64> = (0..DIM).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();
    (w, x)
}

fn bench_plaintext(c: &mut Criterion) {
    let (w, x) = vectors();
    c.bench_function("privacy/plaintext_dot32", |b| {
        b.iter(|| black_box(w.iter().zip(black_box(&x)).map(|(a, b)| a * b).sum::<f64>()))
    });
}

fn bench_he(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let sk = he::generate_keypair(&mut rng, 512).unwrap();
    let (w, x) = vectors();
    let fx = |v: f64| (v * 65536.0).round() as i64;
    let enc_w: Vec<_> = w
        .iter()
        .map(|&v| sk.public.encrypt_signed(&mut rng, fx(v)).unwrap())
        .collect();
    let fixed_x: Vec<i64> = x.iter().map(|&v| fx(v)).collect();
    let mut group = c.benchmark_group("privacy");
    group.sample_size(10);
    group.bench_function("paillier_encrypt", |b| {
        b.iter(|| sk.public.encrypt_signed(&mut rng, 12345).unwrap())
    });
    group.bench_function("paillier_dot32", |b| {
        b.iter(|| he::encrypted_dot(&sk.public, black_box(&enc_w), &fixed_x).unwrap())
    });
    let ct = he::encrypted_dot(&sk.public, &enc_w, &fixed_x).unwrap();
    group.bench_function("paillier_decrypt", |b| {
        b.iter(|| sk.decrypt_signed(black_box(&ct)).unwrap())
    });
    group.finish();
}

fn bench_smc(c: &mut Criterion) {
    let (w, x) = vectors();
    c.bench_function("privacy/smc_dot32_3pc", |b| {
        b.iter(|| {
            let mut engine = MpcEngine::new(3, StdRng::seed_from_u64(2));
            secure_linear_inference(&mut engine, black_box(&w), 0.0, &x)
        })
    });
}

fn bench_tee(c: &mut Criterion) {
    let (w, x) = vectors();
    let platform = Platform::new(3, CostModel::default());
    c.bench_function("privacy/tee_dot32_with_attest", |b| {
        b.iter(|| {
            let mut e = platform.launch(&EnclaveCode::new("inf", 1, b"inf".to_vec()));
            e.execute(100, 1024, || {
                w.iter().zip(&x).map(|(a, b)| a * b).sum::<f64>()
            })
        })
    });
}

fn bench_oblivious(c: &mut Criterion) {
    // Side-channel ablation: the §III-B oblivious primitives vs their
    // trace-leaking counterparts.
    use pds2_tee::oblivious::{o_access, o_sort};
    let data: Vec<u64> = (0..256u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();
    c.bench_function("oblivious/o_sort_256", |b| {
        b.iter(|| {
            let mut v = data.clone();
            o_sort(&mut v);
            black_box(v)
        })
    });
    c.bench_function("oblivious/std_sort_256", |b| {
        b.iter(|| {
            let mut v = data.clone();
            v.sort_unstable();
            black_box(v)
        })
    });
    c.bench_function("oblivious/o_access_256", |b| {
        b.iter(|| black_box(o_access(&data, 77)))
    });
    c.bench_function("oblivious/direct_access", |b| {
        b.iter(|| black_box(data[77]))
    });
}

criterion_group!(
    benches,
    bench_plaintext,
    bench_he,
    bench_smc,
    bench_tee,
    bench_oblivious
);
criterion_main!(benches);
