//! Criterion benchmarks for reward computation (experiment E7).

use criterion::{criterion_group, criterion_main, Criterion};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::sgd::SgdConfig;
use pds2_rewards::shapley::{exact_shapley, monte_carlo_shapley, FnUtility, McConfig};
use pds2_rewards::utility::MlUtility;

fn bench_exact_toy(c: &mut Criterion) {
    let mut group = c.benchmark_group("shapley_exact_toy");
    for n in [8usize, 12, 16] {
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                let mut u = FnUtility::new(n, |s: &[usize]| s.len() as f64);
                exact_shapley(&mut u)
            })
        });
    }
    group.finish();
}

fn bench_mc_ml(c: &mut Criterion) {
    let data = gaussian_blobs(200, 3, 0.7, 1);
    let (train, test) = data.split(0.3, 2);
    let shards = train.partition_iid(8, 3);
    let sgd = SgdConfig {
        epochs: 2,
        ..Default::default()
    };
    let mut group = c.benchmark_group("shapley_mc_ml_8prov");
    group.sample_size(10);
    for perms in [10usize, 50] {
        group.bench_function(format!("perms{perms}"), |b| {
            b.iter(|| {
                let mut u = MlUtility::new(shards.clone(), test.clone(), sgd.clone());
                monte_carlo_shapley(
                    &mut u,
                    &McConfig {
                        permutations: perms,
                        truncation_tolerance: 0.005,
                        seed: 4,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_toy, bench_mc_ml);
criterion_main!(benches);
