//! Criterion benchmarks for the governance chain (experiment E3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pds2_chain::address::Address;
use pds2_chain::chain::Blockchain;
use pds2_chain::contract::ContractRegistry;
use pds2_chain::erc721::{AssetKind, Erc721Op};
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::{sha256, KeyPair};

fn chain_with_pending(n: usize, kind: impl Fn(u64) -> TxKind) -> Blockchain {
    let alice = KeyPair::from_seed(1);
    let mut chain = Blockchain::single_validator(
        9000,
        &[(Address::of(&alice.public), u128::MAX / 2)],
        ContractRegistry::new(),
    );
    for nonce in 0..n as u64 {
        let tx = Transaction {
            from: alice.public.clone(),
            nonce,
            kind: kind(nonce),
            gas_limit: 1_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        chain.submit(tx).unwrap();
    }
    chain
}

fn bench_block_production(c: &mut Criterion) {
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut group = c.benchmark_group("chain");
    group.sample_size(10);
    for n in [100usize, 500] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("produce_block_{n}_transfers"), |b| {
            b.iter_batched(
                || chain_with_pending(n, |_| TxKind::Transfer { to: bob, amount: 1 }),
                |mut chain| chain.produce_until_empty(100),
                BatchSize::SmallInput,
            )
        });
    }
    group.throughput(Throughput::Elements(200));
    group.bench_function("produce_block_200_nft_mints", |b| {
        b.iter_batched(
            || {
                chain_with_pending(200, |nonce| {
                    TxKind::Erc721(Erc721Op::Mint {
                        kind: AssetKind::Dataset,
                        content: sha256(&nonce.to_le_bytes()),
                        label: String::new(),
                    })
                })
            },
            |mut chain| chain.produce_until_empty(100),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_tx_admission(c: &mut Criterion) {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let tx = Transaction {
        from: alice.public.clone(),
        nonce: 0,
        kind: TxKind::Transfer { to: bob, amount: 1 },
        gas_limit: 100_000,
        max_fee_per_gas: 0,
        priority_fee_per_gas: 0,
    }
    .sign(&alice);
    c.bench_function("chain/tx_signature_verify", |b| {
        b.iter(|| assert!(tx.verify_signature()))
    });
}

criterion_group!(benches, bench_block_production, bench_tx_admission);
criterion_main!(benches);
