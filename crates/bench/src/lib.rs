//! # pds2-bench
//!
//! Shared harness code for the PDS² experiment binaries (`src/bin/exp_*`)
//! and Criterion micro-benchmarks (`benches/`). Each experiment binary
//! regenerates one row-set of EXPERIMENTS.md; see DESIGN.md §4 for the
//! experiment index.

use pds2_chain::address::Address;
use pds2_core::marketplace::{Marketplace, StorageChoice};
use pds2_core::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2_ml::data::{gaussian_blobs, Dataset};
use pds2_storage::semantic::{MetaValue, Metadata, Requirement};
use pds2_tee::measurement::EnclaveCode;

/// Prints a fixed-width table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row);
    }
}

/// Standard temperature-sensor metadata used by the experiments.
pub fn temperature_metadata() -> Metadata {
    Metadata::new()
        .with(
            "type",
            MetaValue::Class("sensor/environment/temperature".into()),
            0,
        )
        .with("sample-rate-hz", MetaValue::Num(1.0), 1)
}

/// A classification workload spec bound to `code`.
pub fn classification_spec(
    code: &EnclaveCode,
    validation: Dataset,
    scheme: RewardScheme,
    min_providers: u32,
) -> WorkloadSpec {
    WorkloadSpec {
        title: "bench".into(),
        precondition: Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment".into(),
        },
        task: TaskKind::BinaryClassification,
        feature_dim: validation.dim() as u32,
        provider_reward: 100_000,
        executor_fee: 1_000,
        reward_scheme: scheme,
        min_providers,
        min_records: 10,
        code_measurement: code.measurement(),
        validation,
        local_epochs: 5,
        aggregation_rounds: 3,
        dp_noise_multiplier: None,
        reward_token: None,
        data_bounds: None,
    }
}

/// A fully-populated marketplace world ready to run one workload.
pub struct BenchWorld {
    /// The marketplace under test.
    pub market: Marketplace,
    /// The workload consumer.
    pub consumer: Address,
    /// Participating providers.
    pub providers: Vec<Address>,
    /// Joined executors.
    pub executors: Vec<Address>,
    /// The submitted workload.
    pub workload: u64,
}

/// Builds a marketplace with `n_providers` providers (records ingested),
/// `n_executors` joined executors and one submitted workload.
pub fn build_world(
    seed: u64,
    n_providers: usize,
    n_executors: usize,
    records_per_provider: usize,
    scheme: RewardScheme,
    storage: impl Fn(usize) -> StorageChoice,
) -> BenchWorld {
    let mut market = Marketplace::new(seed);
    let consumer = market.register_consumer(1, u128::MAX / 4);
    let data = gaussian_blobs(records_per_provider * n_providers, 4, 0.7, seed ^ 5);
    let (train, validation) = data.split(0.2, seed ^ 6);
    let shards = train.partition_iid(n_providers, seed ^ 7);
    let mut providers = Vec::with_capacity(n_providers);
    for (i, shard) in shards.iter().enumerate() {
        let p = market.register_provider(1000 + i as u64, storage(i));
        market.provider_add_device(p).expect("registered");
        market
            .provider_ingest(p, 0, shard, temperature_metadata())
            .expect("ingest");
        providers.push(p);
    }
    let executors: Vec<Address> = (0..n_executors)
        .map(|i| market.register_executor(5000 + i as u64))
        .collect();
    let code = EnclaveCode::new("bench-trainer", 1, b"bench-trainer-v1".to_vec());
    let spec = classification_spec(&code, validation, scheme, n_providers as u32);
    let workload = market
        .submit_workload(consumer, spec, code, n_executors as u32)
        .expect("submit");
    for &e in &executors {
        market.executor_join(e, workload).expect("join");
    }
    BenchWorld {
        market,
        consumer,
        providers,
        executors,
        workload,
    }
}

pub mod trace_scenario;

/// Round-robin provider→executor assignments.
pub fn round_robin_assignments(world: &BenchWorld) -> Vec<(Address, Address)> {
    world
        .providers
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, world.executors[i % world.executors.len()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_world_is_ready_to_run() {
        let mut w = build_world(1, 3, 2, 40, RewardScheme::ProportionalToRecords, |_| {
            StorageChoice::Local
        });
        let assignments = round_robin_assignments(&w);
        let (exec, fin) = w
            .market
            .run_full_lifecycle(w.workload, &assignments)
            .unwrap();
        assert!(exec.validation_score > 0.7);
        assert_eq!(fin.provider_shares.len(), 3);
    }

    #[test]
    fn table_printer_handles_ragged_content() {
        print_table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["wide-cell-content".into(), "3".into()],
            ],
        );
    }
}
