//! E3 — §III-A: governance-chain throughput and per-action gas.
//!
//! Measures transactions/second for native transfers, ERC-20 transfers and
//! ERC-721 mints; reports the gas each marketplace action consumes; and
//! sweeps the block gas limit (ablation A4) to show its effect on
//! transactions per block.
//!
//! `cargo run --release -p pds2-bench --bin exp_chain_throughput`

use pds2_bench::print_table;
use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::erc20::Erc20Op;
use pds2_chain::erc721::{AssetKind, Erc721Op};
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::{sha256, KeyPair};
use std::time::Instant;

fn fresh_chain(alice: &KeyPair, gas_limit: u64) -> Blockchain {
    Blockchain::new(
        vec![KeyPair::from_seed(9000)],
        &[(Address::of(&alice.public), u128::MAX / 2)],
        ContractRegistry::new(),
        ChainConfig {
            block_gas_limit: gas_limit,
            max_txs_per_block: usize::MAX,
            ..Default::default()
        },
    )
}

fn throughput(label: &str, n: usize, mut make: impl FnMut(u64) -> TxKind) -> Vec<String> {
    let alice = KeyPair::from_seed(1);
    let mut chain = fresh_chain(&alice, u64::MAX);
    // Pre-sign outside the timed section.
    let txs: Vec<_> = (0..n as u64)
        .map(|nonce| {
            Transaction {
                from: alice.public.clone(),
                nonce,
                kind: make(nonce),
                gas_limit: 1_000_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(&alice)
        })
        .collect();
    let t = Instant::now();
    for tx in txs {
        chain.submit(tx).expect("admission");
    }
    let submit_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    chain.produce_until_empty(1000);
    let execute_s = t.elapsed().as_secs_f64();
    let first_block = chain.block(0).unwrap();
    let gas = chain
        .receipt(&first_block.transactions[0].hash())
        .map(|r| r.gas_used)
        .unwrap_or(0);
    vec![
        label.to_string(),
        format!("{:.0}", n as f64 / submit_s),
        format!("{:.0}", n as f64 / execute_s),
        gas.to_string(),
    ]
}

fn main() {
    println!("E3: governance-chain throughput (single validator, release build)\n");
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let n = 2_000;

    let mut rows = Vec::new();
    rows.push(throughput("native transfer", n, |_| TxKind::Transfer {
        to: bob,
        amount: 1,
    }));
    // ERC-20: create once then transfer. The creation tx is nonce 0.
    rows.push(throughput("erc20 transfer", n, |nonce| {
        if nonce == 0 {
            TxKind::Erc20(Erc20Op::Create {
                symbol: "B".into(),
                initial_supply: u128::MAX / 2,
            })
        } else {
            TxKind::Erc20(Erc20Op::Transfer {
                token: pds2_chain::erc20::TokenId(0),
                to: bob,
                amount: 1,
            })
        }
    }));
    rows.push(throughput("erc721 mint", n, |nonce| {
        TxKind::Erc721(Erc721Op::Mint {
            kind: AssetKind::Dataset,
            content: sha256(&nonce.to_le_bytes()),
            label: String::new(),
        })
    }));
    print_table(&["action", "submit tx/s", "execute tx/s", "gas/tx"], &rows);

    // Ablation A4: block gas limit vs txs per block.
    println!("\nA4: block gas limit vs transactions per block");
    let mut rows = Vec::new();
    for &limit in &[1_000_000u64, 5_000_000, 30_000_000, 120_000_000] {
        let alice = KeyPair::from_seed(1);
        let mut chain = fresh_chain(&alice, limit);
        for nonce in 0..500u64 {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce,
                kind: TxKind::Transfer { to: bob, amount: 1 },
                gas_limit: 50_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(&alice);
            chain.submit(tx).unwrap();
        }
        let blocks = chain.produce_until_empty(10_000);
        rows.push(vec![
            limit.to_string(),
            blocks.to_string(),
            format!("{:.0}", 500.0 / blocks as f64),
        ]);
    }
    print_table(&["block_gas_limit", "blocks", "tx/block"], &rows);
    println!(
        "\nshape: token ops cost a fixed gas premium over native transfers; \
         tx/block scales linearly with the block gas limit."
    );
}
