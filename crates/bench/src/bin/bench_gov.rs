//! Threshold-governance cost model (DESIGN.md §5i): what the (t,n)
//! committee pays for DKG, partial signing, aggregation and — the number
//! the chain actually lives on — aggregate verification, against the
//! single-key Schnorr baseline that `PDS2_SIG_MODE=single` still runs.
//!
//! Before any timing is reported the two sealing modes are checked for
//! *agreement*: a single-sealed and a threshold-sealed chain fed the same
//! transactions must produce bit-identical state roots block-for-block,
//! at `PDS2_THREADS ∈ {1, 4, 8}`, and every aggregate must verify under
//! the group key via the unmodified Schnorr verifier (fast *and*
//! schoolbook reference paths). A disagreement aborts the run.
//!
//! The acceptance bound — aggregate verification within 3× a single-key
//! verification — is asserted, not just recorded: the aggregate *is* a
//! plain Schnorr signature, so the ratio should sit near 1×.
//!
//! Writes `BENCH_gov.json` in the working directory.
//!
//! `cargo run --release -p pds2-bench --bin bench_gov`
//! `cargo run --release -p pds2-bench --bin bench_gov -- --smoke`

use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::threshold::SigMode;
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::KeyPair;
use pds2_gov::dkg::{run_dkg_quiet, ThresholdParams};
use pds2_gov::sign::{nonce_commitment, partial_sign, NonceGuard};
use pds2_gov::{sign_with_quorum, SigningSession};
use std::time::Instant;

const N_VALIDATORS: usize = 7;

/// Best-of-`reps` wall-clock milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row {
    name: String,
    note: &'static str,
    ms: f64,
}

/// Single- and threshold-sealed chains fed identical transactions must
/// agree on every state root, at every thread count. Returns blocks
/// compared per thread count.
fn assert_modes_agree(n_blocks: usize) -> usize {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let chain_with = |mode: SigMode| {
        Blockchain::new(
            (0..4u64).map(|i| KeyPair::from_seed(6_200 + i)).collect(),
            &[(Address::of(&alice.public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                sig_mode: mode,
                ..ChainConfig::default()
            },
        )
    };
    let mut compared = 0;
    for threads in [1usize, 4, 8] {
        pds2_par::with_threads(threads, || {
            let mut single = chain_with(SigMode::Single);
            let mut threshold = chain_with(SigMode::Threshold);
            for height in 0..n_blocks as u64 {
                let tx = Transaction {
                    from: alice.public.clone(),
                    nonce: height,
                    kind: TxKind::Transfer { to: bob, amount: 5 },
                    gas_limit: 50_000,
                    max_fee_per_gas: 0,
                    priority_fee_per_gas: 0,
                }
                .sign(&alice);
                single.submit(tx.clone()).expect("admission");
                threshold.submit(tx).expect("admission");
                let b_single = single.produce_block();
                let b_threshold = threshold.produce_block();
                assert_eq!(
                    b_single.header.state_root,
                    b_threshold.header.state_root,
                    "modes diverged at height {} ({threads} threads)",
                    height + 1
                );
                assert_eq!(b_single.header.proposer, b_threshold.header.proposer);
                assert_ne!(
                    b_single.header.signature, b_threshold.header.signature,
                    "threshold mode must not reuse the proposer signature"
                );
                compared += 1;
            }
        });
    }
    compared
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, n_msgs, agree_blocks) = if smoke { (1, 8, 2) } else { (3, 32, 5) };
    let cores = pds2_par::hardware_cores();

    println!("threshold governance: mode agreement ...");
    let compared = assert_modes_agree(agree_blocks);
    println!("  {compared} blocks, single == threshold state roots at threads [1, 4, 8]\n");

    let params = ThresholdParams::majority(N_VALIDATORS);
    let (committee, shares) = run_dkg_quiet(0xBE9C, params).expect("valid params");
    let quorum: Vec<&pds2_gov::ValidatorShare> = shares.iter().take(params.t).collect();
    let msgs: Vec<Vec<u8>> = (0..n_msgs as u64)
        .map(|i| i.to_le_bytes().to_vec())
        .collect();

    // Every aggregate must be a plain Schnorr signature under the group
    // key — fast path AND schoolbook reference agree before timing.
    for msg in &msgs {
        let sig = sign_with_quorum(&committee, &quorum, msg).expect("quorum signs");
        assert!(committee.group_public().verify(msg, &sig));
        assert!(committee.group_public().verify_reference(msg, &sig));
    }

    // Single-key baseline: one Schnorr keypair over the same messages.
    let kp = KeyPair::from_seed(77);
    let single_sigs: Vec<_> = msgs.iter().map(|m| kp.sign(m)).collect();
    assert!(kp.public.verify(&msgs[0], &single_sigs[0])); // warm key table
    let verify_single_ms = time_ms(reps, || {
        for (m, s) in msgs.iter().zip(&single_sigs) {
            assert!(kp.public.verify(m, s));
        }
    }) / n_msgs as f64;

    let agg_sigs: Vec<_> = msgs
        .iter()
        .map(|m| sign_with_quorum(&committee, &quorum, m).expect("quorum signs"))
        .collect();
    assert!(committee.group_public().verify(&msgs[0], &agg_sigs[0])); // warm
    let verify_aggregate_ms = time_ms(reps, || {
        for (m, s) in msgs.iter().zip(&agg_sigs) {
            assert!(committee.group_public().verify(m, s));
        }
    }) / n_msgs as f64;

    let ratio = verify_aggregate_ms / verify_single_ms;
    assert!(
        ratio <= 3.0,
        "aggregate verify {verify_aggregate_ms:.3} ms exceeds 3x single-key \
         verify {verify_single_ms:.3} ms"
    );

    let dkg_ms = time_ms(reps, || {
        run_dkg_quiet(0xD6, params).expect("valid params");
    });

    let msg = b"bench partial";
    let nonces: Vec<_> = quorum
        .iter()
        .map(|s| (s.index, nonce_commitment(s, msg, 0)))
        .collect();
    // One long-lived guard per signer, as a real member would hold; the
    // repeated transcript is identical, so re-signing is idempotent.
    let mut guards: Vec<NonceGuard> = (0..quorum.len()).map(|_| NonceGuard::new()).collect();
    let partial_sign_ms = time_ms(reps, || {
        partial_sign(quorum[0], &committee, msg, 0, &nonces, &mut guards[0]).expect("member signs");
    });

    let partials: Vec<_> = quorum
        .iter()
        .zip(guards.iter_mut())
        .map(|(s, g)| partial_sign(s, &committee, msg, 0, &nonces, g).expect("member signs"))
        .collect();
    let aggregate_ms = time_ms(reps, || {
        let mut session =
            SigningSession::new(&committee, msg, 0, nonces.clone()).expect("quorum set");
        for p in &partials {
            session.offer(&committee, p).expect("honest partial");
        }
        let sig = session.aggregate(&committee).expect("aggregates");
        assert!(committee.group_public().verify(msg, &sig));
    });

    let rows = [
        Row {
            name: format!("dkg_{}of{}", params.t, params.n),
            note: "full Feldman DKG: n dealers, n^2 dealt-share checks",
            ms: dkg_ms,
        },
        Row {
            name: "partial_sign".into(),
            note: "one member: commitment check + transcript binding + response share",
            ms: partial_sign_ms,
        },
        Row {
            name: format!("aggregate_{}of{}", params.t, params.n),
            note: "t byzantine-checked offers + Lagrange aggregation + final verify",
            ms: aggregate_ms,
        },
        Row {
            name: "verify_single".into(),
            note: "baseline: one Schnorr verification (per message)",
            ms: verify_single_ms,
        },
        Row {
            name: "verify_aggregate".into(),
            note: "aggregate under the group key (per message)",
            ms: verify_aggregate_ms,
        },
    ];

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"committee\": {{\"t\": {}, \"n\": {}}},\n",
        params.t, params.n
    ));
    json.push_str(
        "  \"note\": \"best-of-N wall clock; the aggregate is a plain Schnorr signature \
         under the group key, so verification reuses the single-key fast path; mode \
         agreement (single vs threshold state roots, threads 1/4/8) is asserted before \
         timing\",\n",
    );
    json.push_str(&format!(
        "  \"determinism\": {{\"blocks_compared\": {compared}, \"agreement\": true, \
         \"threads_checked\": [1, 4, 8]}},\n"
    ));
    json.push_str(&format!(
        "  \"verify_ratio\": {{\"aggregate_over_single\": {ratio:.3}, \"bound\": 3.0}},\n"
    ));
    json.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        println!("{:<20} {:>9.3} ms   ({})", row.name, row.ms, row.note);
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ms\": {:.3}, \"note\": \"{}\"}}{}\n",
            row.name,
            row.ms,
            row.note,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_gov.json", &json).expect("write BENCH_gov.json");
    println!("\naggregate/single verify ratio {ratio:.2}x (bound 3x)\nwrote BENCH_gov.json");
}
