//! Fee-market mempool benchmarks (DESIGN.md §5f, experiment E17):
//! selection cost against the FIFO-rescan loop that shipped before the
//! priority mempool existed, admission throughput, inclusion-delay
//! percentiles under a full drain, and pipelined vs serial block
//! application on a replica.
//!
//! Before any timing is reported the full selection order is checked for
//! bit-equality across `PDS2_THREADS ∈ {1, 4, 8}` and across reruns —
//! a divergence aborts the run.
//!
//! Writes `BENCH_mempool.json` in the working directory.
//!
//! `cargo run --release -p pds2-bench --bin bench_mempool`
//! `cargo run --release -p pds2-bench --bin bench_mempool -- --smoke`
//!   (CI mode: smaller sweep, single rep, same determinism assertions)

use pds2_chain::address::Address;
use pds2_chain::block::Block;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::mempool::{Mempool, SelectionStats};
use pds2_chain::sigcache;
use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
use pds2_crypto::{sha256, Digest, KeyPair, Signature};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Per-block selection budget used throughout the sweep.
const MAX_TXS: usize = 512;
/// Transfers cost well under this; the sweep is bounded by `MAX_TXS`.
const BLOCK_GAS: u64 = u64::MAX;
const TX_GAS: u64 = 50_000;

/// Best-of-`reps` wall-clock milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// SplitMix64 finalizer: deterministic fee jitter without an RNG dep.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pending-pool corpus: `accounts` senders, each with a gapless run of
/// `per_account` nonces, interleaved round-robin in arrival order, fees
/// jittered deterministically. Admission never verifies signatures (the
/// chain checks them before insert), so one donor signature is reused —
/// selection cost does not depend on signature validity.
fn build_corpus(accounts: usize, per_account: usize) -> Vec<SignedTransaction> {
    let donor_sig: Signature = KeyPair::from_seed(99).sign(b"mempool-bench-donor");
    let keys: Vec<KeyPair> = (0..accounts as u64)
        .map(|i| KeyPair::from_seed(100_000 + i))
        .collect();
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut txs = Vec::with_capacity(accounts * per_account);
    for nonce in 0..per_account as u64 {
        for (a, kp) in keys.iter().enumerate() {
            let r = mix(nonce.wrapping_mul(accounts as u64) + a as u64);
            let max_fee = 2 + r % 10_000;
            let priority = 1 + mix(r) % max_fee;
            txs.push(SignedTransaction::new(
                Transaction {
                    from: kp.public.clone(),
                    nonce,
                    kind: TxKind::Transfer { to: bob, amount: 1 },
                    gas_limit: TX_GAS,
                    max_fee_per_gas: max_fee,
                    priority_fee_per_gas: priority.min(max_fee),
                },
                donor_sig.clone(),
            ));
        }
    }
    txs
}

fn fill_pool(corpus: &[SignedTransaction]) -> Mempool {
    let mut pool = Mempool::new(corpus.len() + 1);
    let mut evicted = Vec::new();
    for tx in corpus {
        pool.insert(tx.clone(), 0, BLOCK_GAS, &mut evicted)
            .expect("corpus admission");
    }
    assert!(evicted.is_empty(), "capacity covers the whole corpus");
    pool
}

/// The exact selection loop `produce_block` ran before this subsystem:
/// repeated front-to-back rescans of an arrival-ordered deque until a
/// pass makes no progress. O(passes · pending) per block.
fn fifo_select(
    pending: &mut VecDeque<SignedTransaction>,
    nonces: &mut HashMap<Address, u64>,
    max_txs: usize,
    gas_limit: u64,
) -> Vec<SignedTransaction> {
    let mut selected = Vec::new();
    let mut gas_budget = gas_limit;
    loop {
        let mut progressed = false;
        let mut deferred: VecDeque<SignedTransaction> = VecDeque::with_capacity(pending.len());
        while let Some(tx) = pending.pop_front() {
            if selected.len() >= max_txs {
                deferred.push_back(tx);
                continue;
            }
            let sender = tx.tx.sender();
            let expected = *nonces.entry(sender).or_insert(0);
            match tx.tx.nonce.cmp(&expected) {
                std::cmp::Ordering::Less => {
                    progressed = true;
                    continue;
                }
                std::cmp::Ordering::Greater => {
                    deferred.push_back(tx);
                    continue;
                }
                std::cmp::Ordering::Equal => {}
            }
            if tx.tx.gas_limit > gas_budget {
                deferred.push_back(tx);
                continue;
            }
            gas_budget -= tx.tx.gas_limit;
            nonces.insert(sender, expected + 1);
            selected.push(tx);
            progressed = true;
        }
        *pending = deferred;
        if !progressed || pending.is_empty() {
            break;
        }
    }
    selected
}

/// Advances the bench's stand-in account nonces past a selected block,
/// mirroring what executing the block would do to world state.
fn advance_nonces(nonces: &mut HashMap<Address, u64>, selected: &[SignedTransaction]) {
    for tx in selected {
        nonces.insert(tx.tx.sender(), tx.tx.nonce + 1);
    }
}

/// Digest of a selection order: tx hashes in selected sequence.
fn selection_digest(selected: &[SignedTransaction]) -> Digest {
    let mut bytes = Vec::with_capacity(selected.len() * 32);
    for tx in selected {
        bytes.extend_from_slice(tx.hash().as_bytes());
    }
    sha256(&bytes)
}

/// Full-drain selection order must be bit-identical across reruns and
/// forced worker counts. Returns the number of blocks drained.
fn assert_selection_deterministic(corpus: &[SignedTransaction]) -> usize {
    let drain = || {
        let mut pool = fill_pool(corpus);
        let mut nonces = HashMap::new();
        let mut stats = SelectionStats::default();
        let mut order = Vec::new();
        let mut blocks = 0usize;
        while !pool.is_empty() {
            let sel = pool.select(
                0,
                BLOCK_GAS,
                MAX_TXS,
                |a| nonces.get(a).copied().unwrap_or(0),
                &mut stats,
            );
            assert!(!sel.is_empty(), "gapless corpus must drain");
            advance_nonces(&mut nonces, &sel);
            order.extend_from_slice(&sel);
            blocks += 1;
        }
        (selection_digest(&order), blocks)
    };
    let (base, blocks) = drain();
    let (again, _) = drain();
    assert_eq!(again, base, "selection order diverged on rerun");
    for threads in [1usize, 4, 8] {
        let (forced, _) = pds2_par::with_threads(threads, drain);
        assert_eq!(
            forced, base,
            "selection order diverged at {threads} threads"
        );
    }
    blocks
}

struct SweepRow {
    pending: usize,
    accounts: usize,
    insert_ms: f64,
    admission_txs_per_s: f64,
    select_new_ms: f64,
    select_fifo_ms: f64,
    speedup: f64,
    delay_p50_blocks: u64,
    delay_p99_blocks: u64,
    drain_txs_per_s: f64,
}

fn sweep_one(pending: usize, accounts: usize, reps: usize) -> SweepRow {
    let per_account = pending / accounts;
    let corpus = build_corpus(accounts, per_account);
    assert_eq!(corpus.len(), pending);

    // Admission: arrival-order inserts into an empty pool.
    let insert_ms = time_ms(reps, || {
        let pool = fill_pool(&corpus);
        assert_eq!(pool.len(), pending);
    });

    // New path: successive block selections from a full pool (each rep
    // drains MAX_TXS of `pending`, so the population stays ~constant).
    let mut pool = fill_pool(&corpus);
    let mut nonces: HashMap<Address, u64> = HashMap::new();
    let mut stats = SelectionStats::default();
    let mut select_new_ms = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let sel = pool.select(
            0,
            BLOCK_GAS,
            MAX_TXS,
            |a| nonces.get(a).copied().unwrap_or(0),
            &mut stats,
        );
        select_new_ms = select_new_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(sel.len(), MAX_TXS.min(pending));
        advance_nonces(&mut nonces, &sel);
    }

    // FIFO baseline on the same corpus, same successive-blocks shape.
    let mut deque: VecDeque<SignedTransaction> = corpus.iter().cloned().collect();
    let mut fifo_nonces: HashMap<Address, u64> = HashMap::new();
    let mut select_fifo_ms = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let sel = fifo_select(&mut deque, &mut fifo_nonces, MAX_TXS, BLOCK_GAS);
        select_fifo_ms = select_fifo_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(sel.len(), MAX_TXS.min(pending));
    }

    // Inclusion delay: drain a fresh pool block by block; a tx submitted
    // at t=0 and included in block k waited k blocks.
    let mut pool = fill_pool(&corpus);
    let mut nonces: HashMap<Address, u64> = HashMap::new();
    let mut delays: Vec<u64> = Vec::with_capacity(pending);
    let mut block = 0u64;
    let t = Instant::now();
    while !pool.is_empty() {
        let sel = pool.select(
            0,
            BLOCK_GAS,
            MAX_TXS,
            |a| nonces.get(a).copied().unwrap_or(0),
            &mut stats,
        );
        assert!(!sel.is_empty(), "gapless corpus must drain");
        advance_nonces(&mut nonces, &sel);
        delays.extend(std::iter::repeat_n(block, sel.len()));
        block += 1;
    }
    let drain_s = t.elapsed().as_secs_f64();
    delays.sort_unstable();
    let pct = |p: f64| delays[((delays.len() - 1) as f64 * p) as usize];

    SweepRow {
        pending,
        accounts,
        insert_ms,
        admission_txs_per_s: pending as f64 / (insert_ms / 1e3),
        select_new_ms,
        select_fifo_ms,
        speedup: select_fifo_ms / select_new_ms,
        delay_p50_blocks: pct(0.5),
        delay_p99_blocks: pct(0.99),
        drain_txs_per_s: pending as f64 / drain_s,
    }
}

/// End-to-end: sustained production throughput, then replica application
/// serial vs pipelined (which must agree bit-for-bit).
struct E2e {
    blocks: usize,
    txs_per_block: usize,
    produce_ms: f64,
    produce_txs_per_s: f64,
    apply_serial_ms: f64,
    apply_pipelined_1t_ms: f64,
    apply_pipelined_4t_ms: f64,
}

fn fresh_chain(senders: &[KeyPair], txs_per_block: usize) -> Blockchain {
    let alloc: Vec<(Address, u128)> = senders
        .iter()
        .map(|k| (Address::of(&k.public), u128::MAX / 1024))
        .collect();
    Blockchain::new(
        vec![KeyPair::from_seed(9_000)],
        &alloc,
        ContractRegistry::new(),
        ChainConfig {
            max_txs_per_block: txs_per_block,
            initial_base_fee: 7,
            ..Default::default()
        },
    )
}

/// A copy with cold per-tx digest caches so every timed replay re-hashes.
fn cold_copy(block: &Block) -> Block {
    Block {
        header: block.header.clone(),
        transactions: block
            .transactions
            .iter()
            .map(|t| SignedTransaction::new(t.tx.clone(), t.signature.clone()))
            .collect(),
    }
}

fn e2e_bench(n_blocks: usize, txs_per_block: usize, reps: usize) -> E2e {
    let n_senders = 8usize;
    let senders: Vec<KeyPair> = (0..n_senders as u64)
        .map(|i| KeyPair::from_seed(200_000 + i))
        .collect();
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut producer = fresh_chain(&senders, txs_per_block);
    let total = n_blocks * txs_per_block;
    for i in 0..total {
        let kp = &senders[i % n_senders];
        let tx = Transaction {
            from: kp.public.clone(),
            nonce: (i / n_senders) as u64,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: TX_GAS,
            max_fee_per_gas: 1_000,
            priority_fee_per_gas: 1 + mix(i as u64) % 50,
        }
        .sign(kp);
        producer.submit(tx).expect("admission");
    }
    // Sustained production: drain the whole pool through produce_block.
    let t = Instant::now();
    let produced = producer.produce_until_empty(n_blocks + 1);
    let produce_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(produced, n_blocks, "pool must drain in exactly n_blocks");
    assert_eq!(producer.mempool_len(), 0);

    let blocks: Vec<Block> = producer.blocks().iter().map(cold_copy).collect();
    let replay_serial = || {
        let mut replica = fresh_chain(&senders, txs_per_block);
        for b in blocks.iter().map(cold_copy) {
            replica.apply_external_block(&b).expect("serial apply");
        }
        assert_eq!(replica.head_hash(), producer.head_hash());
        replica.state.state_root()
    };
    let replay_pipelined = || {
        let mut replica = fresh_chain(&senders, txs_per_block);
        let cold: Vec<Block> = blocks.iter().map(cold_copy).collect();
        replica
            .apply_external_blocks_pipelined(&cold)
            .expect("pipelined apply");
        assert_eq!(replica.head_hash(), producer.head_hash());
        replica.state.state_root()
    };
    // Bit-identical state regardless of path or worker count.
    let want = pds2_par::with_threads(1, replay_serial);
    assert_eq!(pds2_par::with_threads(1, replay_pipelined), want);
    assert_eq!(pds2_par::with_threads(4, replay_pipelined), want);

    let apply_serial_ms = time_ms(reps, || {
        pds2_par::with_threads(1, || {
            sigcache::clear();
            replay_serial();
        })
    });
    let apply_pipelined_1t_ms = time_ms(reps, || {
        pds2_par::with_threads(1, || {
            sigcache::clear();
            replay_pipelined();
        })
    });
    let apply_pipelined_4t_ms = time_ms(reps, || {
        pds2_par::with_threads(4, || {
            sigcache::clear();
            replay_pipelined();
        })
    });

    E2e {
        blocks: n_blocks,
        txs_per_block,
        produce_ms,
        produce_txs_per_s: total as f64 / (produce_ms / 1e3),
        apply_serial_ms,
        apply_pipelined_1t_ms,
        apply_pipelined_4t_ms,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // (pending, accounts) pairs; per-account chain length = pending/accounts.
    let sizes: &[(usize, usize)] = if smoke {
        &[(1_000, 50), (10_000, 100)]
    } else {
        &[(10_000, 100), (100_000, 500), (1_000_000, 1_000)]
    };
    let reps = if smoke { 1 } else { 3 };
    let (e2e_blocks, e2e_txs) = if smoke { (4, 32) } else { (16, 128) };
    let cores = pds2_par::hardware_cores();

    println!("mempool: selection determinism across reruns and thread counts ...");
    let det_corpus = build_corpus(64, 32);
    let det_blocks = assert_selection_deterministic(&det_corpus);
    println!(
        "  {} txs drained over {det_blocks} blocks, order bit-identical at threads [1, 4, 8]\n",
        det_corpus.len()
    );

    let rows: Vec<SweepRow> = sizes
        .iter()
        .map(|&(pending, accounts)| {
            let reps = if pending >= 1_000_000 { 1 } else { reps };
            let row = sweep_one(pending, accounts, reps);
            println!(
                "pending {:>9}   insert {:>9.2} ms   select new {:>8.3} ms   fifo {:>9.3} ms   \
                 speedup {:>7.1}x   delay p50/p99 {}/{} blocks",
                row.pending,
                row.insert_ms,
                row.select_new_ms,
                row.select_fifo_ms,
                row.speedup,
                row.delay_p50_blocks,
                row.delay_p99_blocks,
            );
            // The PR's headline claim, asserted where timing is stable
            // enough to trust (full runs at ≥100k pending).
            if !smoke && pending >= 100_000 {
                assert!(
                    row.speedup >= 10.0,
                    "selection must beat the FIFO rescan ≥10x at {pending} pending \
                     (got {:.1}x)",
                    row.speedup
                );
            }
            row
        })
        .collect();

    println!("\nend-to-end: produce + replica apply ({e2e_blocks} blocks x {e2e_txs} txs) ...");
    let e2e = e2e_bench(e2e_blocks, e2e_txs, reps);
    println!(
        "  produce {:.1} ms ({:.0} tx/s)   apply serial {:.1} ms   pipelined 1t {:.1} ms   \
         pipelined 4t {:.1} ms",
        e2e.produce_ms,
        e2e.produce_txs_per_s,
        e2e.apply_serial_ms,
        e2e.apply_pipelined_1t_ms,
        e2e.apply_pipelined_4t_ms,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"max_txs_per_block\": {MAX_TXS},\n"));
    json.push_str(
        "  \"note\": \"best-of-N wall clock; fifo = the pre-fee-market produce_block rescan \
         loop over an arrival-ordered deque; new = nonce-chain + priority-index selection; \
         selection order asserted bit-identical across reruns and PDS2_THREADS 1/4/8 before \
         timing; inclusion delay measured over a full drain of the pool\",\n",
    );
    json.push_str(&format!(
        "  \"determinism\": {{\"drain_blocks\": {det_blocks}, \"threads_checked\": [1, 4, 8], \
         \"selection_bit_identical\": true}},\n"
    ));
    json.push_str("  \"selection_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"pending\": {}, \"accounts\": {}, \"insert_ms\": {:.3}, \
             \"admission_txs_per_s\": {:.0}, \"select_new_ms\": {:.4}, \
             \"select_fifo_ms\": {:.3}, \"speedup\": {:.1}, \
             \"inclusion_delay_blocks_p50\": {}, \"inclusion_delay_blocks_p99\": {}, \
             \"drain_txs_per_s\": {:.0}}}{}\n",
            r.pending,
            r.accounts,
            r.insert_ms,
            r.admission_txs_per_s,
            r.select_new_ms,
            r.select_fifo_ms,
            r.speedup,
            r.delay_p50_blocks,
            r.delay_p99_blocks,
            r.drain_txs_per_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"e2e\": {{\"blocks\": {}, \"txs_per_block\": {}, \"produce_ms\": {:.1}, \
         \"produce_txs_per_s\": {:.0}, \"apply_serial_ms\": {:.1}, \
         \"apply_pipelined_1t_ms\": {:.1}, \"apply_pipelined_4t_ms\": {:.1}, \
         \"pipelined_matches_serial\": true}}\n",
        e2e.blocks,
        e2e.txs_per_block,
        e2e.produce_ms,
        e2e.produce_txs_per_s,
        e2e.apply_serial_ms,
        e2e.apply_pipelined_1t_ms,
        e2e.apply_pipelined_4t_ms,
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_mempool.json", &json).expect("write BENCH_mempool.json");
    println!("\nwrote BENCH_mempool.json");
}
