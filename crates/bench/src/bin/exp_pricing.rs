//! E8 — §IV-A: model-based pricing (after Chen, Koutris & Kumar).
//!
//! Trains the optimal model, then sweeps buyer budgets and reports the
//! accuracy of the noise-injected instance each budget purchases. The
//! curve must be (statistically) monotone: "the larger the buyer's budget,
//! the smaller the injected noise variance and the greater the accuracy."
//!
//! `cargo run --release -p pds2-bench --bin exp_pricing`

use pds2_bench::print_table;
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_ml::sgd::{train, SgdConfig};
use pds2_rewards::pricing::{PricedModel, PricingConfig};

fn main() {
    println!("E8: model-based pricing — accuracy vs buyer budget\n");
    let data = gaussian_blobs(2000, 4, 0.8, 1);
    let (tr, te) = data.split(0.3, 2);
    let mut optimal = LogisticRegression::new(4);
    train(&mut optimal, &tr, &SgdConfig::default());

    for max_noise in [2.0f64, 4.0, 8.0] {
        let priced = PricedModel::new(
            optimal.clone(),
            PricingConfig {
                full_price: 1_000,
                max_noise_factor: max_noise,
            },
        );
        let budgets: Vec<u128> = (0..=10).map(|i| i * 100).collect();
        let curve = priced.accuracy_curve(&te, &budgets, 32, 7);
        println!("max_noise_factor = {max_noise}");
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|(b, acc)| {
                vec![
                    b.to_string(),
                    format!("{:.4}", priced.noise_sigma(*b)),
                    format!("{:.3}", acc),
                    "#".repeat((acc * 40.0) as usize),
                ]
            })
            .collect();
        print_table(&["budget", "noise sigma", "accuracy", ""], &rows);
        // Monotonicity check (allowing small MC noise).
        let first = curve.first().unwrap().1;
        let last = curve.last().unwrap().1;
        assert!(last >= first, "curve must rise overall");
        println!();
    }
    println!(
        "shape: accuracy rises monotonically (up to sampling noise) from the \
         majority-class floor to the optimal model's accuracy at full price; \
         larger max-noise factors steepen the curve."
    );
}
