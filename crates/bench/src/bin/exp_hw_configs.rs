//! E2 — Fig. 3: the three provider hardware configurations.
//!
//! Config A: provider-owned storage, provider-owned executor (full stack);
//! Config B: provider-owned storage, third-party executor;
//! Config C: outsourced sealed storage, third-party executor.
//!
//! For each configuration the experiment reports lifecycle wall time,
//! bytes a third party gets to see (trust surface), payload bytes moved,
//! and the simulated enclave cost.
//!
//! `cargo run --release -p pds2-bench --bin exp_hw_configs`

use pds2_bench::{build_world, print_table, round_robin_assignments};
use pds2_core::marketplace::StorageChoice;
use pds2_core::workload::RewardScheme;
use std::time::Instant;

fn main() {
    println!("E2: Fig. 3 hardware configurations (6 providers, 40 records each)\n");
    type ConfigRow = (
        &'static str,
        Box<dyn Fn(usize) -> StorageChoice>,
        &'static str,
    );
    let configs: Vec<ConfigRow> = vec![
        (
            "A: own storage + own executor",
            Box::new(|_| StorageChoice::Local),
            "none (plaintext never leaves owned hardware)",
        ),
        (
            "B: own storage + 3rd-party executor",
            Box::new(|_| StorageChoice::Local),
            "executor enclave only (attested)",
        ),
        (
            "C: outsourced storage + 3rd-party executor",
            Box::new(|_| StorageChoice::ThirdParty { publish_level: 1 }),
            "storage op sees ciphertext; enclave sees plaintext",
        ),
    ];
    let mut rows = Vec::new();
    for (i, (name, storage, trust)) in configs.iter().enumerate() {
        let mut world = build_world(
            200 + i as u64,
            6,
            2,
            40,
            RewardScheme::ProportionalToRecords,
            storage.as_ref(),
        );
        let assignments = round_robin_assignments(&world);
        let t = Instant::now();
        let (exec, _) = world
            .market
            .run_full_lifecycle(world.workload, &assignments)
            .unwrap();
        let total_ms = t.elapsed().as_secs_f64() * 1e3;
        let enclave_ns: u64 = exec.enclave_costs.values().map(|m| m.charged_ns).sum();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", total_ms),
            format!("{:.3}", exec.validation_score),
            exec.readings_accepted.to_string(),
            format!("{}", enclave_ns / 1000),
            trust.to_string(),
        ]);
    }
    print_table(
        &[
            "configuration",
            "total_ms",
            "val_acc",
            "readings",
            "enclave_us",
            "third-party exposure",
        ],
        &rows,
    );
    println!(
        "\nshape: all three configurations complete with identical accuracy; \
         outsourcing adds sealing/unsealing work but never exposes plaintext \
         to the storage operator (§II-F flexibility)."
    );
}
