//! E11 — §IV-D: membership-inference leakage vs differential privacy.
//!
//! Trains models on an overfit-prone task under increasing DP noise and
//! reports the loss-threshold attack's advantage alongside the model's
//! test accuracy — the leakage/utility trade-off the paper says "any
//! implementation of PDS² \[must\] take steps to minimize".
//!
//! `cargo run --release -p pds2-bench --bin exp_privacy_leak`

use pds2_bench::print_table;
use pds2_learning::attack::{generalization_gap, loss_threshold_attack};
use pds2_learning::dp::gaussian_noise;
use pds2_ml::data::gaussian_blobs;
use pds2_ml::linalg::clip_norm;
use pds2_ml::metrics::accuracy;
use pds2_ml::model::{LogisticRegression, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DP-SGD-style training: clipped full-batch gradient + Gaussian noise.
fn train_dp(
    members: &pds2_ml::data::Dataset,
    noise_sigma: f64,
    steps: usize,
    seed: u64,
) -> LogisticRegression {
    let mut model = LogisticRegression::new(members.dim());
    let mut rng = StdRng::seed_from_u64(seed);
    let batch: Vec<usize> = (0..members.len()).collect();
    for _ in 0..steps {
        let mut grad = model.gradient(members, &batch);
        if noise_sigma > 0.0 {
            // DP-SGD: clip then noise.
            clip_norm(&mut grad, 1.0);
            for g in &mut grad {
                *g += gaussian_noise(&mut rng, noise_sigma);
            }
        }
        let mut params = model.params();
        for (p, g) in params.iter_mut().zip(&grad) {
            *p -= 0.5 * g;
        }
        model.set_params(&params);
    }
    model
}

fn main() {
    println!("E11: membership-inference advantage vs DP noise (§IV-D)\n");
    // Overfit-prone: more dimensions than training samples and heavily
    // overlapping classes, so the model can memorize its training noise.
    let data = gaussian_blobs(60, 40, 4.0, 7);
    let (members, non_members) = data.split(0.5, 8);
    let eval = gaussian_blobs(600, 40, 4.0, 9); // fresh i.i.d. test data

    let mut rows = Vec::new();
    for &sigma in &[0.0f64, 0.01, 0.02, 0.05, 0.1, 0.2] {
        // Average the attack over a few training seeds.
        let mut adv = 0.0;
        let mut acc = 0.0;
        let mut gap = 0.0;
        let seeds = 5;
        for s in 0..seeds {
            let model = train_dp(&members, sigma, 300, 100 + s);
            let attack = loss_threshold_attack(&model, &members, &non_members);
            adv += attack.advantage;
            let preds: Vec<f64> = eval.x.iter().map(|x| model.classify(x)).collect();
            acc += accuracy(&preds, &eval.y);
            gap += generalization_gap(&model, &members, &non_members);
        }
        rows.push(vec![
            format!("{:.2}", sigma),
            format!("{:.3}", adv / seeds as f64),
            format!("{:.3}", gap / seeds as f64),
            format!("{:.3}", acc / seeds as f64),
        ]);
    }
    print_table(
        &[
            "noise sigma",
            "attack advantage",
            "train/test loss gap",
            "test accuracy",
        ],
        &rows,
    );
    println!(
        "\nshape: without noise the attacker gains real advantage from the \
         memorized training losses; increasing DP noise shrinks the \
         generalization gap and the advantage toward zero, at a gradual \
         accuracy cost — the §IV-D mitigation curve."
    );
}
