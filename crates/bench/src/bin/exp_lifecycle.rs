//! E1 — Fig. 1 + Fig. 2: end-to-end workload lifecycle vs provider count.
//!
//! For each provider count, runs the complete lifecycle and reports
//! per-phase wall time, chain growth and the on-chain audit-event counts,
//! demonstrating that every Fig. 2 interaction is observable on-chain.
//!
//! Regenerates the E1 rows of EXPERIMENTS.md:
//! `cargo run --release -p pds2-bench --bin exp_lifecycle`

use pds2_bench::{build_world, print_table, round_robin_assignments};
use pds2_core::marketplace::StorageChoice;
use pds2_core::workload::RewardScheme;
use std::time::Instant;

fn main() {
    println!("E1: workload lifecycle vs provider count (2 executors, 40 records/provider)\n");
    let mut rows = Vec::new();
    for &n_providers in &[4usize, 8, 16, 32, 64] {
        let mut world = build_world(
            100 + n_providers as u64,
            n_providers,
            2,
            40,
            RewardScheme::ProportionalToRecords,
            |_| StorageChoice::Local,
        );
        let assignments = round_robin_assignments(&world);

        let t = Instant::now();
        for (p, e) in &assignments {
            world
                .market
                .provider_accept(*p, world.workload, *e)
                .unwrap();
        }
        let accept_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        assert!(world.market.try_start(world.workload).unwrap());
        let exec = world.market.execute(world.workload).unwrap();
        let execute_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let fin = world.market.finalize(world.workload).unwrap();
        let finalize_ms = t.elapsed().as_secs_f64() * 1e3;

        let events = world.market.chain.events().len();
        let participation_events = world
            .market
            .chain
            .events_by_topic("workload.participation")
            .len();
        rows.push(vec![
            n_providers.to_string(),
            format!("{:.1}", accept_ms),
            format!("{:.1}", execute_ms),
            format!("{:.1}", finalize_ms),
            format!("{:.3}", exec.validation_score),
            world.market.chain.height().to_string(),
            events.to_string(),
            participation_events.to_string(),
            fin.provider_shares.len().to_string(),
        ]);
    }
    print_table(
        &[
            "providers",
            "accept_ms",
            "execute_ms",
            "finalize_ms",
            "val_acc",
            "blocks",
            "events",
            "particip_ev",
            "paid",
        ],
        &rows,
    );
    println!(
        "\nshape: per-phase cost grows ~linearly with providers; every provider \
         acceptance appears as exactly one on-chain participation event."
    );
}
