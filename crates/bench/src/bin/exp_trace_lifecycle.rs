//! E16: causal tracing of a faulty marketplace lifecycle under chaos.
//!
//! Runs the shared [`pds2_bench::trace_scenario`] workload — a workload
//! healed by retry after a full executor crash, a second workload
//! aborted on its execution timeout, cross-node chain sync under
//! partition/crash/byzantine faults, and gossip learning under
//! corruption — and checks the tentpole acceptance criteria:
//!
//! - the capture digest is bit-identical across `PDS2_THREADS` ∈
//!   {1, 4, 8} and across ring / JSONL / null sinks;
//! - the reconstructed critical-path report (text + report digest) is
//!   identical whether the DAG is rebuilt from the in-memory ring or
//!   re-parsed from the JSONL file;
//! - every trace has a non-empty critical path.
//!
//! Writes `trace_e16.jsonl` (the raw capture) for `obs_report` and
//! prints the text report. `--smoke` trims the thread sweep to {1, 4}.
//!
//! Reproduce: `cargo run --release -p pds2-bench --bin exp_trace_lifecycle`

use pds2_bench::trace_scenario;
use pds2_obs as obs;
use pds2_obs::report::{RawEvent, TraceAnalysis};

const SEED: u64 = 0xE16;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 8] };
    let _g = obs::test_lock();

    // Reference run: ring capture, DAG from the in-memory events.
    let cap = obs::capture(obs::SinkKind::Ring(usize::MAX));
    trace_scenario::run(SEED);
    let ring_report = cap.finish();
    let ring_events: Vec<RawEvent> = ring_report.entries.iter().map(RawEvent::from).collect();
    let ring_analysis = TraceAnalysis::from_events(&ring_events);
    let ring_text = ring_analysis.render_text();

    // JSONL run: same scenario through the file sink, DAG re-parsed.
    let path = std::path::PathBuf::from("trace_e16.jsonl");
    let cap = obs::capture(obs::SinkKind::Jsonl(path.clone()));
    trace_scenario::run(SEED);
    let jsonl_report = cap.finish();
    let body = std::fs::read_to_string(&path).expect("jsonl capture written");
    let jsonl_analysis = TraceAnalysis::from_jsonl(&body);
    let jsonl_text = jsonl_analysis.render_text();

    assert_eq!(
        ring_report.digest, jsonl_report.digest,
        "ring vs JSONL sink changed the capture digest"
    );
    assert_eq!(
        ring_text, jsonl_text,
        "critical-path report differs between ring and JSONL reconstruction"
    );
    assert_eq!(
        ring_analysis.report_digest(),
        jsonl_analysis.report_digest()
    );
    assert!(
        !ring_analysis.traces.is_empty(),
        "scenario must mint traces"
    );
    for t in &ring_analysis.traces {
        assert!(
            !t.critical_path.is_empty(),
            "every trace needs a critical path: {}",
            t.root_label
        );
    }

    // Thread sweep: the digest is a pure function of the seed.
    for &n in threads {
        let cap = obs::capture(obs::SinkKind::Null);
        pds2_par::with_threads(n, || trace_scenario::run(SEED));
        let d = cap.finish().digest;
        assert_eq!(
            d, ring_report.digest,
            "capture digest diverged at {n} threads"
        );
        println!("threads={n:<2} digest={d}");
    }

    print!("{ring_text}");
    println!("report digest: {}", ring_analysis.report_digest());
    println!("capture digest: {}", ring_report.digest);
    println!(
        "events={} traces={} hops(total)={}",
        ring_report.events,
        ring_analysis.traces.len(),
        ring_analysis
            .traces
            .iter()
            .map(|t| t.critical_path.len())
            .sum::<usize>()
    );
    println!("wrote trace_e16.jsonl");
    println!("E16 OK: critical path bit-identical across threads {threads:?} and sinks");
}
