//! E6 — §III-C: robustness to churn and the coordinator bottleneck.
//!
//! Part 1 sweeps permanent-failure rates 0–50% and compares gossip's final
//! accuracy against FedAvg with equally unavailable clients.
//! Part 2 kills the FedAvg coordinator mid-training (gossip has none).
//! Part 3 shows aggregator load: FedAvg's coordinator handles O(N)
//! transfers per round while the max per-gossip-node load stays flat.
//!
//! `cargo run --release -p pds2-bench --bin exp_churn`

use pds2_bench::print_table;
use pds2_learning::federated::{run_fedavg, FedConfig};
use pds2_learning::gossip::{run_gossip_experiment, GossipConfig};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_net::LinkModel;

fn main() {
    let n_nodes = 20;
    let data = gaussian_blobs(2000, 5, 0.8, 1);
    let (train, test) = data.split(0.25, 2);
    let shards = train.partition_iid(n_nodes, 3);
    // Harsh setting for the churn sweep: label-skewed shards, so losing a
    // node can remove most of a class, and failures strike immediately.
    let skewed = train.partition_noniid(n_nodes, 3);

    println!("E6 part 1: final accuracy vs permanent-failure rate ({n_nodes} nodes, non-IID, failures from t=0)\n");
    let mut rows = Vec::new();
    for &fail in &[0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let gossip = run_gossip_experiment(
            skewed.clone(),
            &test,
            GossipConfig {
                period_us: 500_000,
                ..Default::default()
            },
            LinkModel::default(),
            7,
            &[30_000_000],
            Some((fail, 1_000_000)), // nodes die within the first second
            || LogisticRegression::new(5),
        );
        // FedAvg: the same fraction of clients is dead from round 0.
        let fed = run_fedavg(
            &skewed,
            &test,
            &FedConfig {
                rounds: 60,
                client_fraction: 0.3,
                ..Default::default()
            },
            || LogisticRegression::new(5),
            &move |_round, client| (client as f64 / n_nodes as f64) >= fail,
            usize::MAX,
        );
        rows.push(vec![
            format!("{:.0}%", fail * 100.0),
            format!("{:.3}", gossip.accuracy_curve[0]),
            gossip.online_nodes.to_string(),
            format!("{:.3}", fed.accuracy_curve.last().unwrap()),
            fed.stats.wasted_rounds.to_string(),
        ]);
    }
    print_table(
        &[
            "failure rate",
            "gossip_acc",
            "alive",
            "fedavg_acc",
            "fed_wasted_rounds",
        ],
        &rows,
    );

    println!(
        "\nE6 part 2: coordinator failure at round 5 (FedAvg only — gossip has no coordinator)"
    );
    let fed_dead = run_fedavg(
        &shards,
        &test,
        &FedConfig {
            rounds: 40,
            ..Default::default()
        },
        || LogisticRegression::new(5),
        &|_, _| true,
        5,
    );
    println!(
        "fedavg accuracy: round 4 = {:.3}, round 5 = {:.3}, round 40 = {:.3}  (frozen)",
        fed_dead.accuracy_curve[4],
        fed_dead.accuracy_curve[5],
        fed_dead.accuracy_curve.last().unwrap()
    );

    println!("\nE6 part 3: aggregator load vs network size");
    let mut rows = Vec::new();
    for &n in &[10usize, 20, 40, 80] {
        let shards_n = train.partition_iid(n, 3);
        let fed = run_fedavg(
            &shards_n,
            &test,
            &FedConfig {
                rounds: 10,
                client_fraction: 0.5,
                ..Default::default()
            },
            || LogisticRegression::new(5),
            &|_, _| true,
            usize::MAX,
        );
        let gossip = run_gossip_experiment(
            shards_n,
            &test,
            GossipConfig {
                period_us: 500_000,
                ..Default::default()
            },
            LinkModel::default(),
            7,
            &[10_000_000],
            None,
            || LogisticRegression::new(5),
        );
        // Gossip per-node load: each node receives ~1 model per period.
        let per_node = gossip.models_transferred as f64 / n as f64;
        rows.push(vec![
            n.to_string(),
            (fed.stats.coordinator_transfers / 10).to_string(),
            format!("{:.1}", per_node / 20.0), // per period (20 periods in 10s)
        ]);
    }
    print_table(
        &[
            "nodes",
            "coordinator transfers/round",
            "gossip models/node/period",
        ],
        &rows,
    );
    println!(
        "\nshape: gossip degrades gracefully with churn and keeps per-node \
         load constant; FedAvg's coordinator load grows with N and its \
         failure halts training entirely."
    );
}
