//! Before/after throughput for the `pds2-par` deterministic parallel
//! execution layer: 500-tx block validation, Merkle tree construction and
//! Monte-Carlo Shapley, each at `PDS2_THREADS=1` (the serial baseline)
//! and at the parallel worker count.
//!
//! Also re-checks the determinism contract on every run: the parallel
//! results must be byte-identical to the serial ones before any timing is
//! reported.
//!
//! Writes `BENCH_parallel.json` in the working directory. Numbers are
//! wall-clock best-of-3; the `cores` field records how many hardware
//! threads the machine actually has — on a single-core host the parallel
//! figures show scheduling overhead rather than speedup, by design (the
//! runtime guarantees identical *results*, not free parallelism without
//! cores).
//!
//! `cargo run --release -p pds2-bench --bin bench_parallel`

use pds2_chain::address::Address;
use pds2_chain::block::Block;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
use pds2_crypto::merkle::MerkleTree;
use pds2_crypto::KeyPair;
use pds2_rewards::shapley::{monte_carlo_shapley, monte_carlo_shapley_par, FnUtility, McConfig};
use std::time::Instant;

const BLOCK_TXS: usize = 500;
const MERKLE_LEAVES: usize = 4096;
const SHAPLEY_PLAYERS: usize = 32;
const SHAPLEY_PERMS: usize = 64;

/// Best-of-3 wall-clock milliseconds.
fn time_ms(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
}

fn block_validation_bench(threads: usize) -> Row {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut chain = Blockchain::new(
        vec![KeyPair::from_seed(9000)],
        &[(Address::of(&alice.public), u128::MAX / 2)],
        ContractRegistry::new(),
        ChainConfig {
            block_gas_limit: u64::MAX,
            max_txs_per_block: usize::MAX,
            ..Default::default()
        },
    );
    for nonce in 0..BLOCK_TXS as u64 {
        let tx = Transaction {
            from: alice.public.clone(),
            nonce,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 50_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        chain.submit(tx).expect("admission");
    }
    let verifier = Blockchain::new(
        vec![KeyPair::from_seed(9000)],
        &[(Address::of(&alice.public), u128::MAX / 2)],
        ContractRegistry::new(),
        ChainConfig::default(),
    );
    let block = chain.produce_block();
    assert_eq!(block.transactions.len(), BLOCK_TXS);
    // Rebuilding each SignedTransaction gives cold digest caches, so every
    // timed validation does the full per-tx hashing + signature work.
    let cold = || Block {
        header: block.header.clone(),
        transactions: block
            .transactions
            .iter()
            .map(|t| SignedTransaction::new(t.tx.clone(), t.signature.clone()))
            .collect(),
    };
    let serial_ms = time_ms(|| {
        let b = cold();
        pds2_par::with_threads(1, || verifier.validate_external_block(&b).expect("valid"));
    });
    let parallel_ms = time_ms(|| {
        let b = cold();
        pds2_par::with_threads(threads, || {
            verifier.validate_external_block(&b).expect("valid")
        });
    });
    Row {
        name: "block_validation_500tx",
        serial_ms,
        parallel_ms,
    }
}

fn merkle_bench(threads: usize) -> Row {
    let leaves: Vec<Vec<u8>> = (0..MERKLE_LEAVES)
        .map(|i| {
            let mut leaf = vec![0u8; 256];
            leaf[..8].copy_from_slice(&(i as u64).to_le_bytes());
            leaf
        })
        .collect();
    let root_serial = pds2_par::with_threads(1, || MerkleTree::from_leaves(&leaves).root());
    let root_parallel = pds2_par::with_threads(threads, || MerkleTree::from_leaves(&leaves).root());
    assert_eq!(root_serial, root_parallel, "thread count changed the root");
    let serial_ms = time_ms(|| {
        pds2_par::with_threads(1, || {
            std::hint::black_box(MerkleTree::from_leaves(&leaves).root());
        })
    });
    let parallel_ms = time_ms(|| {
        pds2_par::with_threads(threads, || {
            std::hint::black_box(MerkleTree::from_leaves(&leaves).root());
        })
    });
    Row {
        name: "merkle_4096_leaves",
        serial_ms,
        parallel_ms,
    }
}

fn shapley_utility() -> FnUtility<impl FnMut(&[usize]) -> f64 + Clone + Send + Sync> {
    // Superadditive synthetic game with per-evaluation compute cost, so
    // the utility dominates the runtime the way model training does.
    FnUtility::new(SHAPLEY_PLAYERS, |s: &[usize]| {
        let mut acc = 0.0f64;
        for &i in s {
            for k in 0..200 {
                acc += ((i * 31 + k) as f64).sqrt().sin();
            }
        }
        acc + (s.len() as f64).powf(1.3)
    })
}

fn shapley_bench(threads: usize) -> Row {
    let cfg = McConfig {
        permutations: SHAPLEY_PERMS,
        truncation_tolerance: -1.0, // never truncate: fixed work per perm
        seed: 42,
    };
    let serial_phi = monte_carlo_shapley(&mut shapley_utility(), &cfg);
    let parallel_phi = pds2_par::with_threads(threads, || {
        monte_carlo_shapley_par(&shapley_utility(), &cfg)
    });
    assert_eq!(
        serial_phi.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        parallel_phi.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "thread count changed the Shapley estimate"
    );
    let serial_ms = time_ms(|| {
        std::hint::black_box(monte_carlo_shapley(&mut shapley_utility(), &cfg));
    });
    let parallel_ms = time_ms(|| {
        pds2_par::with_threads(threads, || {
            std::hint::black_box(monte_carlo_shapley_par(&shapley_utility(), &cfg));
        })
    });
    Row {
        name: "monte_carlo_shapley_n32",
        serial_ms,
        parallel_ms,
    }
}

fn main() {
    let cores = pds2_par::hardware_cores();
    let requested = std::env::var("PDS2_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| cores.max(4));
    // The serial-fallback cutoff: worker counts beyond the hardware only
    // add scheduling overhead, so the parallel runs use the capped count
    // exactly as the env-driven resolution path would.
    let threads = pds2_par::effective_workers(requested);

    println!(
        "pds2-par throughput: serial (1 thread) vs parallel \
         ({requested} requested -> {threads} effective workers), {cores} core(s)\n"
    );
    let rows = [
        block_validation_bench(threads),
        merkle_bench(threads),
        shapley_bench(threads),
    ];

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"requested_threads\": {requested},\n"));
    json.push_str(&format!("  \"parallel_threads\": {threads},\n"));
    json.push_str("  \"note\": \"best-of-3 wall clock; requested workers are capped at the hardware core count (serial-fallback cutoff) — results are bit-identical at every thread count regardless\",\n");
    json.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = row.serial_ms / row.parallel_ms;
        println!(
            "{:<26} serial {:>9.3} ms   parallel {:>9.3} ms   speedup {:>5.2}x",
            row.name, row.serial_ms, row.parallel_ms, speedup
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            row.name,
            row.serial_ms,
            row.parallel_ms,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}
