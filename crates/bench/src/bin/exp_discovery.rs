//! E10 — §IV-C: the data-discovery trade-off between metadata leakage and
//! verifiable precondition complexity.
//!
//! A synthetic population of records carries attributes of increasing
//! sensitivity (class rank 0, rate rank 1, region rank 2, device serial
//! rank 3). A workload precondition needs the first three. As providers
//! raise their publish level, matching precision/recall rises — and so do
//! the leaked bits. The experiment prints the full trade-off curve.
//!
//! `cargo run --release -p pds2-bench --bin exp_discovery`

use pds2_bench::print_table;
use pds2_storage::semantic::{MetaValue, Metadata, Ontology, Requirement};
use pds2_storage::store::{LocalStore, Record, StorageBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E10: discovery precision/recall vs metadata leakage (§IV-C)\n");
    let mut ontology = Ontology::new();
    ontology.declare("sensor/environment/temperature");
    ontology.declare("sensor/environment/humidity");
    ontology.declare("sensor/motion/accelerometer");

    // Population: 300 records; ground truth eligibility = temperature
    // class AND rate in [0.5, 2] AND region EU.
    let mut rng = StdRng::seed_from_u64(1);
    let classes = [
        "sensor/environment/temperature",
        "sensor/environment/humidity",
        "sensor/motion/accelerometer",
    ];
    let regions = ["EU", "US", "APAC"];
    let mut records = Vec::new();
    let mut truth = Vec::new();
    for i in 0..300 {
        let class = classes[rng.random_range(0..3)];
        let rate = rng.random_range(0.1..4.0f64);
        let region = regions[rng.random_range(0..3)];
        let eligible = class == classes[0] && (0.5..=2.0).contains(&rate) && region == "EU";
        let meta = Metadata::new()
            .with("type", MetaValue::Class(class.into()), 0)
            .with("sample-rate-hz", MetaValue::Num(rate), 1)
            .with("region", MetaValue::Str(region.into()), 2)
            .with("device-serial", MetaValue::Str(format!("SN-{i:06}")), 3);
        records.push(Record {
            payload: format!("payload-{i}").into_bytes(),
            metadata: meta,
            timestamp: i as u64,
        });
        truth.push(eligible);
    }

    let requirement = Requirement::All(vec![
        Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment/temperature".into(),
        },
        Requirement::NumInRange {
            attr: "sample-rate-hz".into(),
            min: 0.5,
            max: 2.0,
        },
        Requirement::StrEquals {
            attr: "region".into(),
            value: "EU".into(),
        },
    ]);
    println!(
        "precondition complexity: {} atomic predicates\n",
        requirement.complexity()
    );

    let mut rows = Vec::new();
    for level in 0u8..=3 {
        // Matching on the *published* (redacted) view.
        let mut matched = 0usize;
        let mut true_pos = 0usize;
        let mut leak_bits = 0.0;
        for (record, &eligible) in records.iter().zip(&truth) {
            let published = record.metadata.redact(level);
            leak_bits += published.leakage_bits(&ontology);
            if requirement.matches(&published, &ontology) {
                matched += 1;
                if eligible {
                    true_pos += 1;
                }
            }
        }
        let positives = truth.iter().filter(|&&t| t).count();
        let precision = if matched == 0 {
            1.0
        } else {
            true_pos as f64 / matched as f64
        };
        let recall = true_pos as f64 / positives as f64;
        rows.push(vec![
            level.to_string(),
            format!("{:.1}", leak_bits / records.len() as f64),
            matched.to_string(),
            format!("{:.2}", precision),
            format!("{:.2}", recall),
        ]);
    }
    print_table(
        &[
            "publish level",
            "bits leaked/record",
            "matched",
            "precision",
            "recall",
        ],
        &rows,
    );

    // Demonstrate the same effect through a store.
    let mut store = LocalStore::new();
    for r in records {
        store.put(r);
    }
    let onto = &ontology;
    let hits = store.match_workload(&requirement, onto).len();
    println!("\nfull-detail store matching finds {hits} records");
    println!(
        "\nshape: below the level that reveals the rate and region, recall is \
         zero (eligible providers are never notified); each extra level buys \
         recall at the price of leaked bits — the §IV-C trade-off."
    );
}
