//! E14 — chaos engineering: consensus and learning under injected faults.
//!
//! Part 1 drives a 4-validator PoA cluster through fault plans of rising
//! severity (clean, partition, crash-recovery, byzantine corruption, all
//! combined) and reports chain height, convergence and fault counters.
//! Part 2 sweeps byzantine corruption probability on the gossip overlay
//! and shows the digest check holding final accuracy flat while the
//! corrupted-drop counter climbs.
//! Part 3 replays one chaotic run twice per worker count to demonstrate
//! bit-identical trace hashes — the property the chaos harness rests on.
//!
//! `cargo run --release -p pds2-bench --bin exp_chaos`

use pds2_bench::print_table;
use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::sync::{ChainReplica, GenesisFactory};
use pds2_crypto::KeyPair;
use pds2_learning::gossip::{run_gossip_experiment_with_faults, GossipConfig};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_net::{FaultPlan, LinkEffect, LinkModel, LinkScope, Simulator};
use std::sync::Arc;

const N_VALIDATORS: usize = 4;

fn factory() -> GenesisFactory {
    Arc::new(|| {
        Blockchain::new(
            (0..N_VALIDATORS as u64)
                .map(|i| KeyPair::from_seed(9_000 + i))
                .collect(),
            &[(Address::of(&KeyPair::from_seed(1).public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig::default(),
        )
    })
}

fn link() -> LinkModel {
    LinkModel {
        base_latency_us: 5_000,
        jitter_us: 2_000,
        bandwidth_bytes_per_sec: 12_500_000,
        drop_probability: 0.0,
        node_slowdown: Vec::new(),
        topology: None,
    }
}

struct ChaosResult {
    height: u64,
    converged: bool,
    trace: String,
    dropped: u64,
    corrupted: u64,
    crashes: u64,
}

fn run_chain_chaos(seed: u64, plan: FaultPlan, until_us: u64) -> ChaosResult {
    let f = factory();
    let replicas: Vec<ChainReplica> = (0..N_VALIDATORS)
        .map(|i| ChainReplica::new(f.clone(), Some(i), 200_000, 150_000))
        .collect();
    let mut sim = Simulator::new(replicas, link(), seed);
    sim.install_fault_plan(plan);
    sim.enable_trace();
    sim.run_until(until_us);
    let heads: Vec<_> = sim.nodes().map(|r| r.chain().head_hash()).collect();
    let stats = sim.stats();
    ChaosResult {
        height: sim.node(0).chain().height(),
        converged: heads.iter().all(|h| *h == heads[0]),
        trace: sim.trace_hash().expect("trace enabled").short(),
        dropped: stats.dropped_partition + stats.dropped_fault,
        corrupted: stats.corrupted,
        crashes: stats.crashes,
    }
}

fn main() {
    println!("E14 part 1: 4-validator PoA cluster, 15 s under escalating fault plans\n");
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::new(1)),
        (
            "partition 2-5s",
            FaultPlan::new(2).partition(2_000_000, 5_000_000, vec![vec![0, 1], vec![2, 3]]),
        ),
        (
            "crash n2 3-6s",
            FaultPlan::new(3).crash(2, 3_000_000, Some(6_000_000)),
        ),
        (
            "byzantine 25%",
            FaultPlan::new(4).byzantine(
                500_000,
                4_000_000,
                LinkScope::any(),
                LinkEffect::Corrupt { probability: 0.25 },
            ),
        ),
        (
            "all combined",
            FaultPlan::new(5)
                .partition(1_500_000, 3_500_000, vec![vec![0, 3], vec![1, 2]])
                .crash(1, 4_000_000, Some(5_500_000))
                .byzantine(
                    500_000,
                    2_500_000,
                    LinkScope::from_node(3),
                    LinkEffect::Corrupt { probability: 0.3 },
                ),
        ),
    ];
    let mut rows = Vec::new();
    for (name, plan) in scenarios {
        let r = run_chain_chaos(42, plan, 15_000_000);
        rows.push(vec![
            name.to_string(),
            r.height.to_string(),
            if r.converged { "yes" } else { "NO" }.to_string(),
            r.dropped.to_string(),
            r.corrupted.to_string(),
            r.crashes.to_string(),
            r.trace,
        ]);
    }
    print_table(
        &[
            "scenario",
            "height",
            "converged",
            "dropped",
            "corrupted",
            "crashes",
            "trace",
        ],
        &rows,
    );

    println!(
        "\nE14 part 2: gossip accuracy vs byzantine corruption probability (10 nodes, 10 s)\n"
    );
    let data = gaussian_blobs(1_000, 3, 0.7, 1);
    let (train, test) = data.split(0.25, 2);
    let mut rows = Vec::new();
    for &p in &[0.0f64, 0.1, 0.25, 0.5] {
        let plan = FaultPlan::new(6).byzantine(
            0,
            10_000_000,
            LinkScope::any(),
            LinkEffect::Corrupt { probability: p },
        );
        let out = run_gossip_experiment_with_faults(
            train.partition_iid(10, 3),
            &test,
            GossipConfig {
                period_us: 200_000,
                ..Default::default()
            },
            LinkModel::instant(),
            7,
            &[10_000_000],
            None,
            Some(plan),
            || LogisticRegression::new(3),
        );
        rows.push(vec![
            format!("{:.0}%", p * 100.0),
            format!("{:.3}", out.accuracy_curve[0]),
            out.corrupted_dropped.to_string(),
            out.models_transferred.to_string(),
        ]);
    }
    print_table(
        &["corrupt prob", "final_acc", "dropped_by_digest", "merged"],
        &rows,
    );

    println!("\nE14 part 3: bit-identical replay of the combined scenario\n");
    let plan = || {
        FaultPlan::new(5)
            .partition(1_500_000, 3_500_000, vec![vec![0, 3], vec![1, 2]])
            .crash(1, 4_000_000, Some(5_500_000))
    };
    let mut rows = Vec::new();
    for threads in [1usize, 4, 8] {
        let a = pds2_par::with_threads(threads, || run_chain_chaos(42, plan(), 15_000_000));
        let b = pds2_par::with_threads(threads, || run_chain_chaos(42, plan(), 15_000_000));
        rows.push(vec![
            threads.to_string(),
            a.trace.clone(),
            b.trace.clone(),
            if a.trace == b.trace { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        &["threads", "run A trace", "run B trace", "identical"],
        &rows,
    );
    println!(
        "\nshape: the cluster converges to one head under every plan, the \
         gossip digest check keeps accuracy flat as corruption rises, and \
         every seeded run replays to the same trace hash at any worker count."
    );
}
