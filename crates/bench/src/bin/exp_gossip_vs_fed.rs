//! E5 — §III-C: gossip learning vs federated learning, accuracy vs
//! communication (models transferred), IID and label-skewed partitions.
//! Reproduces the claim (via Hegedűs et al., cited by the paper) that
//! "gossip learning compares favorably to federated learning".
//!
//! Ablation A1 compares the gossip merge rules.
//!
//! `cargo run --release -p pds2-bench --bin exp_gossip_vs_fed`

use pds2_bench::print_table;
use pds2_learning::federated::{run_fedavg, FedConfig};
use pds2_learning::gossip::{run_gossip_experiment, GossipConfig, GossipProtocol, MergeRule};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_net::LinkModel;

fn main() {
    let n_nodes = 25;
    let data = gaussian_blobs(2500, 5, 0.8, 1);
    let (train, test) = data.split(0.25, 2);

    println!(
        "E5: gossip vs federated, {n_nodes} nodes, {} train / {} test rows\n",
        train.len(),
        test.len()
    );

    for (label, noniid) in [("IID", false), ("non-IID (label-skew)", true)] {
        let shards = if noniid {
            train.partition_noniid(n_nodes, 3)
        } else {
            train.partition_iid(n_nodes, 3)
        };

        // Gossip: sample the accuracy curve at increasing sim times and
        // report the communication spent at each point.
        let eval_points: Vec<u64> = (1..=6).map(|i| i * 5_000_000).collect();
        let gossip = run_gossip_experiment(
            shards.clone(),
            &test,
            GossipConfig {
                period_us: 500_000,
                merge: MergeRule::AgeWeighted,
                ..Default::default()
            },
            LinkModel::default(),
            7,
            &eval_points,
            None,
            || LogisticRegression::new(5),
        );

        // FedAvg with a comparable per-round communication rate.
        let fed = run_fedavg(
            &shards,
            &test,
            &FedConfig {
                rounds: 60,
                client_fraction: 0.3,
                ..Default::default()
            },
            || LogisticRegression::new(5),
            &|_, _| true,
            usize::MAX,
        );

        println!("== {label} ==");
        let mut rows = Vec::new();
        for (i, &t) in eval_points.iter().enumerate() {
            // FedAvg transfers 2 models per sampled client per round.
            let fed_round = ((i + 1) * 10).min(fed.accuracy_curve.len()) - 1;
            let fed_models = (fed_round as u64 + 1) * 2 * 8; // 8 clients/round
            rows.push(vec![
                format!("{}s", t / 1_000_000),
                format!("{:.3}", gossip.accuracy_curve[i]),
                format!("{:.3}", fed.accuracy_curve[fed_round]),
                format!("~{}", fed_models),
            ]);
        }
        print_table(
            &["sim time", "gossip_acc", "fedavg_acc", "fed_models"],
            &rows,
        );
        println!(
            "gossip moved {} models total, coordinator-free; fedavg moved {} \
             models, all through one server\n",
            gossip.models_transferred, fed.stats.models_transferred
        );
    }

    // A1: merge-rule ablation on the non-IID partition.
    println!("A1: gossip merge-rule ablation (non-IID)");
    let shards = train.partition_noniid(n_nodes, 3);
    let mut rows = Vec::new();
    for rule in [
        MergeRule::AgeWeighted,
        MergeRule::Average,
        MergeRule::Replace,
    ] {
        let out = run_gossip_experiment(
            shards.clone(),
            &test,
            GossipConfig {
                period_us: 500_000,
                merge: rule,
                ..Default::default()
            },
            LinkModel::default(),
            7,
            &[10_000_000, 30_000_000],
            None,
            || LogisticRegression::new(5),
        );
        rows.push(vec![
            format!("{rule:?}"),
            format!("{:.3}", out.accuracy_curve[0]),
            format!("{:.3}", out.accuracy_curve[1]),
        ]);
    }
    print_table(&["merge rule", "acc@10s", "acc@30s"], &rows);

    // A1b: exchange pattern (push vs push-pull).
    println!("\nA1b: push vs push-pull exchange (non-IID)");
    let mut rows = Vec::new();
    for protocol in [GossipProtocol::Push, GossipProtocol::PushPull] {
        let out = run_gossip_experiment(
            shards.clone(),
            &test,
            GossipConfig {
                period_us: 500_000,
                protocol,
                ..Default::default()
            },
            LinkModel::default(),
            7,
            &[10_000_000],
            None,
            || LogisticRegression::new(5),
        );
        rows.push(vec![
            format!("{protocol:?}"),
            format!("{:.3}", out.accuracy_curve[0]),
            out.models_transferred.to_string(),
        ]);
    }
    print_table(&["protocol", "acc@10s", "models moved"], &rows);
    println!(
        "\nshape: gossip reaches federated-level accuracy on both partitions \
         without any coordinator (the paper's §III-C argument); push-pull \
         doubles the mixing rate per cycle at twice the traffic."
    );
}
