//! E7 — §IV-A: Shapley-value reward computation.
//!
//! Part 1: exact Shapley cost explodes exponentially with the provider
//! count (the paper: "the complexity of calculating the Shapley value is
//! exponential, and thus it is unfeasible to use it as is").
//! Part 2: truncated Monte-Carlo keeps the error small at a tiny fraction
//! of the evaluations (ablation A3 sweeps the permutation budget).
//! Part 3: reward shares track data quality.
//!
//! `cargo run --release -p pds2-bench --bin exp_shapley`

use pds2_bench::print_table;
use pds2_ml::data::gaussian_blobs;
use pds2_ml::sgd::SgdConfig;
use pds2_rewards::shapley::{exact_shapley, monte_carlo_shapley, FnUtility, McConfig};
use pds2_rewards::utility::MlUtility;
use std::time::Instant;

fn main() {
    println!("E7 part 1: exact Shapley cost vs provider count (additive toy utility)\n");
    let mut rows = Vec::new();
    for &n in &[4usize, 8, 12, 16, 20] {
        let weights: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let w2 = weights.clone();
        let mut u = FnUtility::new(n, move |s: &[usize]| s.iter().map(|&i| w2[i]).sum());
        let t = Instant::now();
        let phi = exact_shapley(&mut u);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            n.to_string(),
            u.evaluations.to_string(),
            format!("{:.2}", ms),
            format!("{:.1}", phi.iter().sum::<f64>()),
        ]);
    }
    print_table(
        &["providers", "utility evals", "time_ms", "sum(phi)"],
        &rows,
    );
    println!("(n = 21 is rejected by the library as infeasible)\n");

    println!("E7 part 2 / A3: truncated Monte-Carlo error vs permutation budget (ML utility, 8 providers)");
    let data = gaussian_blobs(400, 3, 0.7, 1);
    let (train, test) = data.split(0.3, 2);
    let shards = train.partition_iid(8, 3);
    let sgd = SgdConfig {
        epochs: 4,
        ..Default::default()
    };
    let mut exact_u = MlUtility::new(shards.clone(), test.clone(), sgd.clone());
    let t = Instant::now();
    let exact = exact_shapley(&mut exact_u);
    let exact_ms = t.elapsed().as_secs_f64() * 1e3;
    let exact_runs = exact_u.training_runs;
    let mut rows = Vec::new();
    for &perms in &[10usize, 25, 50, 100, 200] {
        let mut u = MlUtility::new(shards.clone(), test.clone(), sgd.clone());
        let t = Instant::now();
        let mc = monte_carlo_shapley(
            &mut u,
            &McConfig {
                permutations: perms,
                truncation_tolerance: 0.005,
                seed: 4,
            },
        );
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let err: f64 = exact
            .iter()
            .zip(&mc)
            .map(|(e, m)| (e - m).abs())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            perms.to_string(),
            u.training_runs.to_string(),
            format!("{:.1}", ms),
            format!("{:.4}", err),
        ]);
    }
    print_table(
        &["permutations", "training runs", "time_ms", "max |err|"],
        &rows,
    );
    println!("exact reference: {exact_runs} training runs, {exact_ms:.1} ms\n");

    println!("E7 part 3: monte-carlo Shapley scales to 64 providers");
    let big_train = gaussian_blobs(1280, 3, 0.7, 9);
    let (btr, bte) = big_train.split(0.2, 10);
    let big_shards = btr.partition_iid(64, 11);
    let mut u = MlUtility::new(big_shards, bte, sgd.clone());
    let t = Instant::now();
    let phi = monte_carlo_shapley(
        &mut u,
        &McConfig {
            permutations: 30,
            truncation_tolerance: 0.01,
            seed: 12,
        },
    );
    println!(
        "64 providers: {} training runs, {:.1} s, share range [{:.4}, {:.4}]",
        u.training_runs,
        t.elapsed().as_secs_f64(),
        phi.iter().cloned().fold(f64::INFINITY, f64::min),
        phi.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );

    println!("\nE7 part 4: shares track data quality (4 honest + 1 label-noise provider)");
    let data = gaussian_blobs(500, 3, 0.7, 20);
    let (tr, te) = data.split(0.3, 21);
    let mut shards = tr.partition_iid(4, 22);
    let mut junk = shards[0].clone();
    for y in junk.y.iter_mut() {
        *y = 1.0 - *y;
    }
    shards.push(junk);
    let mut u = MlUtility::new(shards, te, sgd);
    let phi = exact_shapley(&mut u);
    let mut rows = Vec::new();
    for (i, v) in phi.iter().enumerate() {
        let name = if i == 4 { "label-noise" } else { "honest" };
        rows.push(vec![format!("provider {i} ({name})"), format!("{:+.4}", v)]);
    }
    print_table(&["provider", "shapley value"], &rows);
    println!(
        "\nshape: exact cost doubles per provider; truncated MC reaches \
         ~1e-2 accuracy with two orders of magnitude fewer evaluations; \
         the noise provider's value is ~zero or negative."
    );
}
