//! E15: cost of the deterministic observability layer (`pds2-obs`).
//!
//! Two questions, answered on `block_validation_500tx` (the hottest
//! instrumented path in the repo):
//!
//! 1. **What does the no-op sink cost?** Compares the instrumented
//!    `validate_external_block` with tracing disabled (the production
//!    default: one relaxed atomic load per span/event site plus a
//!    handful of counter increments) against the same validation logic
//!    with the observability wrapper compiled out
//!    (`validate_external_block_uninstrumented`). Asserts < 1%
//!    overhead (< 5% in `--smoke` mode, where the block is small
//!    enough for scheduler noise to matter).
//! 2. **Is the trace digest deterministic?** Captures the validation
//!    trace under `PDS2_THREADS ∈ {1, 4, 8}` and with ring vs JSONL vs
//!    null sinks; all digests must be bit-identical.
//!
//! Writes `BENCH_obs.json` in the working directory.
//!
//! `cargo run --release -p pds2-bench --bin bench_obs`
//! `cargo run --release -p pds2-bench --bin bench_obs -- --smoke`
//!   (CI mode: smaller block, single-digit reps, same assertions)

use pds2_chain::address::Address;
use pds2_chain::block::Block;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::sigcache;
use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
use pds2_crypto::KeyPair;
use pds2_obs as obs;
use std::time::Instant;

const BLOCK_TXS: usize = 500;

/// Best-of-`reps` wall-clock milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn producer_chain() -> Blockchain {
    let alice = KeyPair::from_seed(1);
    Blockchain::new(
        vec![KeyPair::from_seed(9000)],
        &[(Address::of(&alice.public), u128::MAX / 2)],
        ContractRegistry::new(),
        ChainConfig {
            block_gas_limit: u64::MAX,
            max_txs_per_block: usize::MAX,
            ..Default::default()
        },
    )
}

fn build_block(n_txs: usize) -> Block {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut chain = producer_chain();
    for nonce in 0..n_txs as u64 {
        let tx = Transaction {
            from: alice.public.clone(),
            nonce,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 50_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        chain.submit(tx).expect("admission");
    }
    let block = chain.produce_block();
    assert_eq!(block.transactions.len(), n_txs);
    block
}

/// A copy with cold per-tx digest caches so every timed run re-hashes.
fn cold_copy(block: &Block) -> Block {
    Block {
        header: block.header.clone(),
        transactions: block
            .transactions
            .iter()
            .map(|t| SignedTransaction::new(t.tx.clone(), t.signature.clone()))
            .collect(),
    }
}

/// Paired measurement of the uninstrumented baseline vs the
/// instrumented path with tracing disabled. The true cost difference
/// is a handful of relaxed atomic loads on an ~20 ms operation, so the
/// estimator must survive machine noise far larger than the signal.
fn noop_overhead(reps: usize, block: &Block, verifier: &Blockchain) -> (f64, f64) {
    assert!(
        !obs::enabled(),
        "no-op measurement requires tracing disabled"
    );
    let run_baseline = || {
        sigcache::clear();
        pds2_par::with_threads(1, || {
            let b = cold_copy(block);
            verifier
                .validate_external_block_uninstrumented(&b)
                .expect("valid");
        })
    };
    let run_noop = || {
        sigcache::clear();
        pds2_par::with_threads(1, || {
            let b = cold_copy(block);
            verifier.validate_external_block(&b).expect("valid");
        })
    };
    // Untimed warmup: fault in code and touch the caches once.
    run_baseline();
    run_noop();
    // Paired design: each rep times both sides back-to-back (alternating
    // order), and the statistic is the *median of per-rep differences* —
    // adjacent samples share the machine's slow noise (frequency, noisy
    // neighbours), so differencing cancels it, and the median discards
    // preemption spikes that hit one side of a pair.
    let mut baselines = Vec::with_capacity(reps);
    let mut diffs = Vec::with_capacity(reps);
    for i in 0..reps {
        let (b, n) = if i % 2 == 0 {
            let b = time_ms(1, run_baseline);
            let n = time_ms(1, run_noop);
            (b, n)
        } else {
            let n = time_ms(1, run_noop);
            let b = time_ms(1, run_baseline);
            (b, n)
        };
        baselines.push(b);
        diffs.push(n - b);
    }
    let baseline_ms = median(&mut baselines);
    let diff_ms = median(&mut diffs);
    (baseline_ms, baseline_ms + diff_ms)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Validates the block under a capture and returns (digest, events, ms).
fn traced_validation(
    kind: obs::SinkKind,
    threads: usize,
    block: &Block,
    verifier: &Blockchain,
) -> (String, u64, f64) {
    sigcache::clear();
    let cap = obs::capture(kind);
    let t = Instant::now();
    pds2_par::with_threads(threads, || {
        let b = cold_copy(block);
        verifier.validate_external_block(&b).expect("valid");
    });
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let report = cap.finish();
    assert!(report.events > 0, "validation span must be recorded");
    (report.digest, report.events, ms)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, block_txs, budget_pct) = if smoke {
        (25, 64, 5.0)
    } else {
        (201, BLOCK_TXS, 1.0)
    };
    let cores = pds2_par::hardware_cores();

    let block = build_block(block_txs);
    let verifier = producer_chain();

    println!("obs overhead: block_validation_{block_txs}tx, median of {reps} paired reps ...");
    let (baseline_ms, noop_ms) = noop_overhead(reps, &block, &verifier);
    let overhead_pct = (noop_ms / baseline_ms - 1.0) * 100.0;
    println!(
        "  uninstrumented {baseline_ms:>9.3} ms   noop-sink {noop_ms:>9.3} ms   \
         overhead {overhead_pct:>+6.3}%  (budget {budget_pct}%)"
    );
    assert!(
        overhead_pct < budget_pct,
        "no-op sink overhead {overhead_pct:.3}% exceeds the {budget_pct}% budget"
    );

    // Digest determinism: threads x sinks. All digests must agree.
    let jsonl_path = std::env::temp_dir().join("bench_obs_trace.jsonl");
    let (ring_digest, events, ring_ms) =
        traced_validation(obs::SinkKind::Ring(usize::MAX), 1, &block, &verifier);
    let (jsonl_digest, _, jsonl_ms) = traced_validation(
        obs::SinkKind::Jsonl(jsonl_path.clone()),
        1,
        &block,
        &verifier,
    );
    let (null_digest, _, null_ms) = traced_validation(obs::SinkKind::Null, 1, &block, &verifier);
    std::fs::remove_file(&jsonl_path).ok();
    assert_eq!(ring_digest, jsonl_digest, "sink choice changed the digest");
    assert_eq!(ring_digest, null_digest, "sink choice changed the digest");

    let threads = [1usize, 4, 8];
    for &t in &threads {
        let (d, _, _) = traced_validation(obs::SinkKind::Null, t, &block, &verifier);
        assert_eq!(d, ring_digest, "trace digest changed at PDS2_THREADS={t}");
    }
    println!(
        "  trace digest {}… bit-identical across threads {threads:?} and ring/jsonl/null sinks \
         ({events} events)\n",
        &ring_digest[..16]
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"block_txs\": {block_txs},\n"));
    json.push_str(
        "  \"note\": \"median of N paired wall-clock reps at a single thread (per-rep \
         noop-minus-baseline differences, alternating order); baseline = \
         validate_external_block_uninstrumented (observability wrapper compiled out), noop = \
         instrumented path with no capture active (production default); digest checked across \
         threads and sinks before reporting\",\n",
    );
    json.push_str(&format!("  \"baseline_ms\": {baseline_ms:.4},\n"));
    json.push_str(&format!("  \"noop_sink_ms\": {noop_ms:.4},\n"));
    json.push_str(&format!("  \"overhead_pct\": {overhead_pct:.4},\n"));
    json.push_str(&format!("  \"overhead_budget_pct\": {budget_pct},\n"));
    json.push_str(&format!(
        "  \"overhead_ok\": {},\n",
        overhead_pct < budget_pct
    ));
    json.push_str(&format!(
        "  \"active_sink_ms\": {{\"null\": {null_ms:.4}, \"ring\": {ring_ms:.4}, \
         \"jsonl\": {jsonl_ms:.4}}},\n"
    ));
    json.push_str(&format!(
        "  \"trace\": {{\"events\": {events}, \"digest\": \"{ring_digest}\", \
         \"threads_checked\": [1, 4, 8], \"thread_invariant\": true, \
         \"sink_invariant\": true}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
