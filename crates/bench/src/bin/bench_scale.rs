//! Scale benchmarks (DESIGN.md §5h, experiment E19): the timing-wheel
//! event scheduler against the retained binary-heap oracle on 1k→100k+
//! node fleets, a 100k-node gossip-learning run driven to completion,
//! and a marketplace inclusion-latency SLO ramp that finds the offered
//! load where the p99 submit→inclusion latency breaks the SLO.
//!
//! Before any timing is reported the two schedulers are checked for
//! bit-identical delivered-message traces, `NetStats` and final clocks
//! on every sweep size, and the scale gossip scenario is checked for
//! bit-equality across `PDS2_THREADS` ∈ {1, 4, 8} and both schedulers —
//! a divergence aborts the run.
//!
//! Writes `BENCH_scale.json` and `scale_knee_report.txt` (the obs
//! critical path at the SLO knee) in the working directory.
//!
//! `cargo run --release -p pds2-bench --bin bench_scale`
//! `cargo run --release -p pds2-bench --bin bench_scale -- --smoke`
//!   (CI mode: smaller fleets, single rep, no speedup assertion, same
//!   equivalence assertions)

use parking_lot::Mutex;
use pds2_learning::gossip::{run_gossip_experiment_at_scale, GossipConfig, ScaleGossipOpts};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_net::{
    ArrivalGen, ArrivalPattern, ChurnModel, Ctx, LinkModel, NetStats, Node, NodeId, SchedulerKind,
    SimTime, Simulator, Topology,
};
use pds2_obs as obs;
use pds2_obs::report::TraceAnalysis;
use pds2_obs::window::{SloMonitor, SloRule};
use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Part B workload: a fanout/reply protocol with several staggered timers
// per node, so at 100k nodes the pending set holds hundreds of
// thousands of events and scheduler cost dominates per-event work.
// ---------------------------------------------------------------------

/// Baseline timer period (µs) of the pulse workload.
const PULSE_PERIOD_US: u64 = 300_000;
/// Staggered periodic timers armed per node: the pending set holds
/// `TIMERS_PER_NODE × nodes` timer entries plus everything in flight,
/// which is what separates O(1) wheel ops from O(log n) heap ops.
const TIMERS_PER_NODE: u64 = 16;

struct Pulse {
    sent: u64,
    received: u64,
}

impl Node for Pulse {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        for k in 0..TIMERS_PER_NODE {
            let jitter = ctx.rng().random_range(0..PULSE_PERIOD_US);
            ctx.set_timer(jitter + 1, k);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        self.received += 1;
        if msg.is_multiple_of(16) {
            ctx.send(from, msg | 1);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
        self.sent += 1;
        // Heartbeat-fleet shape: most timer fires are silent liveness
        // checks; every fourth fire gossips to a random peer.
        if self.sent.is_multiple_of(4) {
            let value = (self.sent << 3) | tag;
            if let Some(peer) = ctx.random_peer() {
                ctx.send(peer, value);
            }
        }
        ctx.set_timer(PULSE_PERIOD_US + tag * 37, tag);
    }

    fn msg_size(_msg: &u64) -> u64 {
        64
    }

    fn msg_digest(msg: &u64) -> u64 {
        msg.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

/// Everything comparable about one pulse run.
#[derive(Debug, PartialEq)]
struct PulsePrint {
    trace: pds2_crypto::Digest,
    stats: NetStats,
    now: SimTime,
    processed: u64,
}

fn pulse_sim(n: usize, seed: u64, kind: SchedulerKind) -> Simulator<Pulse> {
    let nodes = (0..n)
        .map(|_| Pulse {
            sent: 0,
            received: 0,
        })
        .collect();
    let topo = Topology::five_continents(seed).with_slowdown_spread(1024, 3072);
    Simulator::with_scheduler(nodes, LinkModel::regional(topo), seed, kind)
}

/// Traced equivalence run (short horizon): the gate before timing.
fn pulse_fingerprint(n: usize, seed: u64, horizon_us: u64, kind: SchedulerKind) -> PulsePrint {
    let mut sim = pulse_sim(n, seed, kind);
    sim.enable_trace();
    let processed = sim.run_until(horizon_us);
    PulsePrint {
        trace: sim.trace_hash().unwrap(),
        stats: sim.stats(),
        now: sim.now(),
        processed,
    }
}

/// Untraced timed run: wall-clock seconds for `run_until(horizon)` only
/// (fleet setup excluded), plus events processed and wheel cascades.
fn pulse_timed(n: usize, seed: u64, horizon_us: u64, kind: SchedulerKind) -> (u64, u64, f64) {
    let mut sim = pulse_sim(n, seed, kind);
    let t = Instant::now();
    let processed = sim.run_until(horizon_us);
    let wall = t.elapsed().as_secs_f64();
    (processed, sim.sched_cascades(), wall)
}

struct SweepRow {
    nodes: usize,
    events: u64,
    wheel_cascades: u64,
    wheel_evps: f64,
    heap_evps: f64,
    speedup: f64,
}

fn sweep_one(n: usize, horizon_us: u64, reps: usize) -> SweepRow {
    let seed = 0xE19 + n as u64;
    // Gate: bit-identical trace, stats and clock on a traced prefix.
    let gate_horizon = horizon_us.min(500_000);
    let a = pulse_fingerprint(n, seed, gate_horizon, SchedulerKind::Wheel);
    let b = pulse_fingerprint(n, seed, gate_horizon, SchedulerKind::Heap);
    assert_eq!(a, b, "wheel and heap diverged at {n} nodes");
    assert!(a.stats.delivered > 0, "gate workload must deliver traffic");

    // Timing: best-of-reps on the untraced full horizon; both
    // schedulers must agree on the event count they processed.
    let mut wheel_best = f64::INFINITY;
    let mut heap_best = f64::INFINITY;
    let mut events = 0;
    let mut cascades = 0;
    for _ in 0..reps {
        let (we, wc, ws) = pulse_timed(n, seed, horizon_us, SchedulerKind::Wheel);
        let (he, _, hs) = pulse_timed(n, seed, horizon_us, SchedulerKind::Heap);
        assert_eq!(we, he, "event counts diverged at {n} nodes");
        events = we;
        cascades = wc;
        wheel_best = wheel_best.min(ws);
        heap_best = heap_best.min(hs);
    }
    SweepRow {
        nodes: n,
        events,
        wheel_cascades: cascades,
        wheel_evps: events as f64 / wheel_best,
        heap_evps: events as f64 / heap_best,
        speedup: heap_best / wheel_best,
    }
}

// ---------------------------------------------------------------------
// Part A: gossip learning at fleet scale, driven to completion.
// ---------------------------------------------------------------------

struct GossipRow {
    n_nodes: usize,
    data_holders: usize,
    wall_s: f64,
    models_transferred: u64,
    online_nodes: usize,
    accuracy: f64,
}

fn gossip_opts(n: usize, holders: usize, horizon_us: u64) -> ScaleGossipOpts {
    ScaleGossipOpts {
        n_nodes: n,
        data_holders: holders,
        eval_sample: 64,
        seed: 19,
        eval_at_us: vec![horizon_us / 2, horizon_us],
        cfg: GossipConfig {
            period_us: 400_000,
            ..Default::default()
        },
        link: LinkModel::regional(Topology::five_continents(19).with_slowdown_spread(1024, 2048)),
        churn: Some(ChurnModel {
            horizon_us,
            mean_uptime_us: horizon_us / 2,
            mean_downtime_us: horizon_us / 8,
            churn_fraction_x1024: 50, // ~5 % of the fleet churns
        }),
        scheduler: Some(SchedulerKind::Wheel),
    }
}

/// Gate: the scale scenario fingerprints identically under both
/// schedulers and under forced `PDS2_THREADS` ∈ {1, 4, 8}.
fn assert_scale_determinism() {
    let data = gaussian_blobs(900, 3, 0.7, 1);
    let (train, test) = data.split(0.25, 2);
    let run = |threads: usize, kind: SchedulerKind| {
        pds2_par::with_threads(threads, || {
            let mut opts = gossip_opts(500, 10, 2_000_000);
            opts.scheduler = Some(kind);
            run_gossip_experiment_at_scale(&train, &test, &opts, || LogisticRegression::new(3))
        })
    };
    let base = run(1, SchedulerKind::Wheel);
    for threads in [1usize, 4, 8] {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let out = run(threads, kind);
            assert_eq!(
                out.trace_hash, base.trace_hash,
                "trace diverged at {threads} threads under {kind:?}"
            );
            assert_eq!(out.models_transferred, base.models_transferred);
            assert_eq!(out.online_nodes, base.online_nodes);
            let bits: Vec<u64> = out.accuracy_curve.iter().map(|a| a.to_bits()).collect();
            let base_bits: Vec<u64> = base.accuracy_curve.iter().map(|a| a.to_bits()).collect();
            assert_eq!(
                bits, base_bits,
                "accuracy bits diverged at {threads} threads"
            );
        }
    }
}

fn gossip_at_scale(n: usize, holders: usize, horizon_us: u64) -> GossipRow {
    let data = gaussian_blobs(1200, 3, 0.7, 1);
    let (train, test) = data.split(0.25, 2);
    let opts = gossip_opts(n, holders, horizon_us);
    let t = Instant::now();
    let out = run_gossip_experiment_at_scale(&train, &test, &opts, || LogisticRegression::new(3));
    let wall_s = t.elapsed().as_secs_f64();
    assert!(
        out.online_nodes > n * 8 / 10,
        "fleet should mostly survive churn ({} of {n} online)",
        out.online_nodes
    );
    assert!(out.models_transferred > n as u64, "gossip must spread");
    GossipRow {
        n_nodes: n,
        data_holders: holders,
        wall_s,
        models_transferred: out.models_transferred,
        online_nodes: out.online_nodes,
        accuracy: *out.accuracy_curve.last().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Part C: marketplace inclusion-latency SLO ramp.
// ---------------------------------------------------------------------

/// Validator block interval (µs).
const BLOCK_INTERVAL_US: u64 = 250_000;
/// Transactions a validator includes per block.
const BLOCK_CAP: usize = 64;
/// Submit→inclusion p99 SLO (µs): six block intervals.
const SLO_US: u64 = 1_500_000;

const T_SUBMIT: u64 = 1;
const T_BLOCK: u64 = 2;

#[derive(Clone)]
enum MarketMsg {
    /// A client transaction: submitter and submit time.
    Submit { client: NodeId, at: SimTime },
}

/// One marketplace participant: ids below `validators` run the block
/// timer and FIFO-include pending transactions up to [`BLOCK_CAP`];
/// the rest submit transactions on an [`ArrivalGen`]-driven timer to a
/// hash-chosen validator.
struct MarketNode {
    validators: usize,
    gen: ArrivalGen,
    submitted: u64,
    pending: VecDeque<SimTime>,
    latencies: Vec<u64>,
    /// Shared burn-rate monitor fed at the inclusion point. `on_timer`
    /// runs in the serial simulator loop, so the lock is uncontended
    /// and the observation order is the deterministic event order.
    slo: Option<Arc<Mutex<SloMonitor>>>,
}

fn mixh(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

impl Node for MarketNode {
    type Msg = MarketMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MarketMsg>) {
        if ctx.id < self.validators {
            // Stagger block boundaries a little so validators do not
            // all fire on the same microsecond.
            ctx.set_timer(BLOCK_INTERVAL_US + ctx.id as u64 % 977, T_BLOCK);
        } else {
            ctx.set_timer(self.gen.next_delay_us(ctx.id, 0, 0), T_SUBMIT);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, MarketMsg>, _from: NodeId, msg: MarketMsg) {
        let MarketMsg::Submit { at, .. } = msg;
        self.pending.push_back(at);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MarketMsg>, tag: u64) {
        if tag == T_BLOCK {
            for _ in 0..self.pending.len().min(BLOCK_CAP) {
                let at = self.pending.pop_front().unwrap();
                let lat = ctx.now - at;
                if let Some(mon) = &self.slo {
                    mon.lock().observe(ctx.now, lat);
                }
                self.latencies.push(lat);
            }
            ctx.set_timer(BLOCK_INTERVAL_US, T_BLOCK);
        } else {
            self.submitted += 1;
            let v = (mixh(ctx.id as u64 ^ self.submitted) % self.validators as u64) as usize;
            ctx.send(
                v,
                MarketMsg::Submit {
                    client: ctx.id,
                    at: ctx.now,
                },
            );
            ctx.set_timer(
                self.gen.next_delay_us(ctx.id, self.submitted, ctx.now),
                T_SUBMIT,
            );
        }
    }

    fn msg_size(_msg: &MarketMsg) -> u64 {
        256
    }

    fn msg_digest(msg: &MarketMsg) -> u64 {
        let MarketMsg::Submit { client, at } = msg;
        mixh(*client as u64 ^ at.rotate_left(17))
    }
}

struct MarketOutcome {
    included: u64,
    p99_us: u64,
    max_backlog: usize,
}

/// Mean submit interval (µs) that offers `load_x100` percent of the
/// fleet's aggregate inclusion capacity.
fn interval_for_load(clients: usize, validators: usize, load_x100: u64) -> u64 {
    (clients as u64 * BLOCK_INTERVAL_US * 100) / (validators as u64 * BLOCK_CAP as u64 * load_x100)
}

fn market_sim(
    n: usize,
    validators: usize,
    mean_interval_us: u64,
    pattern: ArrivalPattern,
    kind: SchedulerKind,
    slo: Option<Arc<Mutex<SloMonitor>>>,
) -> Simulator<MarketNode> {
    let gen = ArrivalGen {
        seed: 0xC0,
        mean_interval_us,
        pattern,
    };
    let nodes = (0..n)
        .map(|_| MarketNode {
            validators,
            gen,
            submitted: 0,
            pending: VecDeque::new(),
            latencies: Vec::new(),
            slo: slo.clone(),
        })
        .collect();
    let topo = Topology::five_continents(0xC0).with_slowdown_spread(1024, 2048);
    Simulator::with_scheduler(nodes, LinkModel::regional(topo), 0xC0, kind)
}

fn market_outcome(sim: &Simulator<MarketNode>, validators: usize) -> MarketOutcome {
    let mut latencies: Vec<u64> = Vec::new();
    let mut backlog = 0;
    for v in sim.nodes().take(validators) {
        latencies.extend_from_slice(&v.latencies);
        backlog = backlog.max(v.pending.len());
    }
    latencies.sort_unstable();
    let p99 = if latencies.is_empty() {
        0
    } else {
        latencies[latencies.len() * 99 / 100]
    };
    MarketOutcome {
        included: latencies.len() as u64,
        p99_us: p99,
        max_backlog: backlog,
    }
}

/// The live burn-rate rule the ramp runs under: the SLO objective with
/// a 1% error budget, fired at 2× budget burn over eight block
/// intervals (fast) *and* twenty-four (noise suppression). Sustained
/// overload pushes the windowed bad fraction far past 2% while a
/// stable queue stays under it, so the alert flips exactly at the
/// capacity knee — online, without sorting the full latency vector.
fn ramp_rule() -> SloRule {
    SloRule {
        name: "market.inclusion_latency",
        threshold: SLO_US,
        budget_bp: 100,
        short_window_us: 8 * BLOCK_INTERVAL_US,
        long_window_us: 24 * BLOCK_INTERVAL_US,
        fire_burn_x100: 200,
        min_count: 200,
    }
}

/// What the live monitor saw during one ramp run.
struct SloVerdict {
    fired: bool,
    first_fired_at: Option<u64>,
}

fn market_run(
    n: usize,
    load_x100: u64,
    horizon_us: u64,
    pattern: ArrivalPattern,
    kind: SchedulerKind,
) -> (MarketOutcome, SloVerdict) {
    let validators = (n / 1000).max(4);
    let interval = interval_for_load(n - validators, validators, load_x100);
    let mon = Arc::new(Mutex::new(SloMonitor::new(ramp_rule())));
    let mut sim = market_sim(n, validators, interval, pattern, kind, Some(mon.clone()));
    sim.run_until(horizon_us);
    let out = market_outcome(&sim, validators);
    let mon = mon.lock();
    (
        out,
        SloVerdict {
            fired: mon.fired_count() > 0,
            first_fired_at: mon.first_fired_at(),
        },
    )
}

/// Gate: the marketplace scenario is scheduler-invariant down to every
/// recorded inclusion latency.
fn assert_market_determinism(n: usize, horizon_us: u64) {
    let run = |kind| {
        let validators = (n / 1000).max(4);
        let interval = interval_for_load(n - validators, validators, 100);
        let mon = Arc::new(Mutex::new(SloMonitor::new(ramp_rule())));
        let mut sim = market_sim(
            n,
            validators,
            interval,
            ArrivalPattern::Constant,
            kind,
            Some(mon.clone()),
        );
        sim.enable_trace();
        sim.run_until(horizon_us);
        let lat: Vec<Vec<u64>> = sim
            .nodes()
            .take(validators)
            .map(|v| v.latencies.clone())
            .collect();
        let mon = mon.lock();
        let alert = (mon.fired_count(), mon.first_fired_at());
        (sim.trace_hash().unwrap(), sim.stats(), lat, alert)
    };
    let a = run(SchedulerKind::Wheel);
    let b = run(SchedulerKind::Heap);
    assert_eq!(a.0, b.0, "market trace diverged between schedulers");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "inclusion latencies diverged between schedulers");
    assert_eq!(
        a.3, b.3,
        "burn-rate alert instants diverged between schedulers"
    );
    assert!(a.2.iter().map(Vec::len).sum::<usize>() > 0);
}

struct RampPoint {
    load_x100: u64,
    offered_tps: f64,
    included: u64,
    p99_us: u64,
    max_backlog: usize,
    slo_ok: bool,
    alert_fired: bool,
    alert_at_us: Option<u64>,
}

/// The traced knee re-run: a reduced-scale flash-crowd scenario at the
/// knee load, captured through the JSONL sink and rendered into the
/// archived critical-path report.
fn knee_report(n: usize, load_x100: u64, horizon_us: u64) -> (String, MarketOutcome, Option<u64>) {
    let validators = (n / 1000).max(4);
    let interval = interval_for_load(n - validators, validators, load_x100);
    let pattern = ArrivalPattern::FlashCrowd {
        at_us: horizon_us / 3,
        surge_x1024: 1024, // 2x baseline at the spike
        decay_us: horizon_us / 3,
    };
    let path = std::path::PathBuf::from("trace_scale_knee.jsonl");
    let cap = obs::capture(obs::SinkKind::Jsonl(path.clone()));
    // The live monitor rides along so its `slo.alert.fire` transition
    // is part of the captured (and digested) trace.
    let mon = Arc::new(Mutex::new(SloMonitor::new(ramp_rule())));
    let mut sim = market_sim(
        n,
        validators,
        interval,
        pattern,
        SchedulerKind::Wheel,
        Some(mon.clone()),
    );
    let root = obs::new_trace(
        "bench",
        "slo_ramp",
        obs::Stamp::Sim(0),
        vec![
            ("nodes", obs::Value::from(n as u64)),
            ("load_pct", obs::Value::from(load_x100)),
        ],
    );
    if root.id() != 0 {
        // Deliveries chain causal spans off this root, so the report's
        // critical path follows actual submit→inclusion hops.
        sim.set_root_ctx(root.ctx());
    }
    // Segmented run so the report shows the net/run span sequence with
    // per-segment event and backlog counts.
    let segments = 12;
    for s in 1..=segments {
        sim.run_until(horizon_us * s / segments);
    }
    root.finish(obs::Stamp::Sim(sim.now()), Vec::new());
    cap.finish();
    let out = market_outcome(&sim, validators);
    let body = std::fs::read_to_string(&path).expect("jsonl capture written");
    let analysis = TraceAnalysis::from_jsonl(&body);
    let _ = std::fs::remove_file(&path);
    let fired_at = mon.lock().first_fired_at();
    (analysis.render_text(), out, fired_at)
}

// ---------------------------------------------------------------------

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let _g = obs::test_lock();
    let cores = pds2_par::hardware_cores();
    let reps = if smoke { 1 } else { 3 };

    println!("scale: scheduler + thread-count determinism gates ...");
    assert_scale_determinism();
    assert_market_determinism(if smoke { 1_000 } else { 2_000 }, 6_000_000);
    println!("  gossip + market fingerprints bit-identical: wheel vs heap, threads [1, 4, 8]\n");

    // Part B: wheel vs heap events/sec sweep. Horizons shrink with the
    // fleet so every size processes a few hundred thousand to a few
    // million events.
    let sweep: &[(usize, u64)] = if smoke {
        &[(1_000, 1_000_000), (5_000, 600_000)]
    } else {
        &[
            (1_000, 5_000_000),
            (10_000, 1_250_000),
            (100_000, 400_000),
            (200_000, 200_000),
        ]
    };
    println!("scheduler sweep: wheel vs heap events/sec ...");
    let rows: Vec<SweepRow> = sweep
        .iter()
        .map(|&(n, horizon)| {
            let row = sweep_one(n, horizon, reps);
            println!(
                "nodes {:>7}   events {:>9}   wheel {:>10.0} ev/s   heap {:>10.0} ev/s   \
                 speedup {:>5.2}x   cascades {}",
                row.nodes,
                row.events,
                row.wheel_evps,
                row.heap_evps,
                row.speedup,
                row.wheel_cascades,
            );
            row
        })
        .collect();
    // The PR's headline claim, asserted where the pending set is big
    // enough for scheduler cost to dominate (full runs, ≥100k nodes).
    if !smoke {
        let best = rows
            .iter()
            .filter(|r| r.nodes >= 100_000)
            .map(|r| r.speedup)
            .fold(0.0f64, f64::max);
        assert!(
            best >= 5.0,
            "timing wheel must beat the heap ≥5x at ≥100k nodes (best {best:.2}x)"
        );
    }

    // Part A: the 100k-node marketplace fleet learning to completion.
    let (gn, gh, ghor) = if smoke {
        (2_000, 40, 3_000_000)
    } else {
        (100_000, 500, 6_000_000)
    };
    println!("\ngossip at scale: {gn} nodes, {gh} data holders ...");
    let gossip = gossip_at_scale(gn, gh, ghor);
    println!(
        "  wall {:.1} s   models {}   online {}   accuracy {:.3}",
        gossip.wall_s, gossip.models_transferred, gossip.online_nodes, gossip.accuracy
    );
    if !smoke {
        assert!(
            gossip.accuracy > 0.7,
            "scale fleet must learn (accuracy {:.3})",
            gossip.accuracy
        );
    }

    // Part C: offered-load ramp to the SLO knee.
    let (mn, mhor) = if smoke {
        (1_000, 8_000_000)
    } else {
        (100_000, 12_000_000)
    };
    let validators = (mn / 1000).max(4);
    let capacity_tps = validators as f64 * BLOCK_CAP as f64 * 1e6 / BLOCK_INTERVAL_US as f64;
    println!(
        "\nslo ramp: {mn} nodes, {validators} validators, capacity {:.0} tx/s, \
         slo p99 ≤ {} ms ...",
        capacity_tps,
        SLO_US / 1000
    );
    let loads: &[u64] = &[50, 80, 100, 120, 150];
    let mut knee: Option<u64> = None;
    let mut online_knee: Option<u64> = None;
    let points: Vec<RampPoint> = loads
        .iter()
        .map(|&load| {
            let (out, slo) = market_run(
                mn,
                load,
                mhor,
                ArrivalPattern::Constant,
                SchedulerKind::Wheel,
            );
            let slo_ok = out.p99_us <= SLO_US;
            if !slo_ok && knee.is_none() {
                knee = Some(load);
            }
            if slo.fired && online_knee.is_none() {
                online_knee = Some(load);
            }
            println!(
                "  load {:>3}%   offered {:>8.0} tx/s   included {:>8}   p99 {:>8.1} ms   \
                 backlog {:>6}   {}{}",
                load,
                capacity_tps * load as f64 / 100.0,
                out.included,
                out.p99_us as f64 / 1e3,
                out.max_backlog,
                if slo_ok { "ok" } else { "SLO BREACH" },
                match slo.first_fired_at {
                    Some(at) => format!("   burn-rate alert fired @ {:.1} s", at as f64 / 1e6),
                    None => String::new(),
                }
            );
            RampPoint {
                load_x100: load,
                offered_tps: capacity_tps * load as f64 / 100.0,
                included: out.included,
                p99_us: out.p99_us,
                max_backlog: out.max_backlog,
                slo_ok,
                alert_fired: slo.fired,
                alert_at_us: slo.first_fired_at,
            }
        })
        .collect();
    assert!(points[0].slo_ok, "lowest load must meet the SLO");
    let knee = knee.expect("ramp must cross the SLO knee");
    // The live multi-window monitor must find the same knee as the
    // post-hoc full-sort p99 scan — online detection costs nothing in
    // fidelity.
    assert_eq!(
        online_knee,
        Some(knee),
        "burn-rate alert knee disagrees with the post-hoc p99 scan"
    );

    // Traced re-run at the knee, reduced scale so the JSONL capture and
    // report stay small.
    let (kn, khor) = if smoke {
        (800, 6_000_000)
    } else {
        (5_000, 8_000_000)
    };
    let (report, knee_out, knee_alert_at) = knee_report(kn, knee, khor);
    let mut archived = format!(
        "SLO knee: {mn}-node ramp breaks p99 ≤ {} ms at {knee}% of capacity\n\
         (validators {validators}, block cap {BLOCK_CAP}/{} ms blocks).\n\
         Knee found online by the {} burn-rate alert (agrees with the\n\
         post-hoc p99 scan at every ramp point).\n\
         Traced flash-crowd re-run at {kn} nodes, knee load: included {}, p99 {:.1} ms,\n\
         max validator backlog {}, alert fired {}.\n\n",
        SLO_US / 1000,
        BLOCK_INTERVAL_US / 1000,
        ramp_rule().name,
        knee_out.included,
        knee_out.p99_us as f64 / 1e3,
        knee_out.max_backlog,
        match knee_alert_at {
            Some(at) => format!("@ {:.1} s", at as f64 / 1e6),
            None => "never (flash crowd absorbed)".to_string(),
        },
    );
    archived.push_str(&report);
    std::fs::write("scale_knee_report.txt", &archived).expect("write scale_knee_report.txt");
    println!("\nwrote scale_knee_report.txt ({} bytes)", archived.len());

    // ------------------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(
        "  \"note\": \"best-of-N wall clock over run_until only (fleet setup excluded); \
         wheel = hierarchical timing wheel, heap = retained BinaryHeap oracle \
         (PDS2_NET_SCHED=heap); traced wheel-vs-heap fingerprints and PDS2_THREADS 1/4/8 \
         invariance asserted before timing; gossip row drives the scale learning scenario \
         to completion; slo_ramp offers Constant load as a fraction of aggregate validator \
         inclusion capacity and reports submit-to-inclusion p99\",\n",
    );
    json.push_str(
        "  \"determinism\": {\"schedulers_bit_identical\": true, \"threads_checked\": [1, 4, 8]},\n",
    );
    json.push_str("  \"scheduler_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {}, \"events\": {}, \"wheel_events_per_sec\": {:.0}, \
             \"heap_events_per_sec\": {:.0}, \"speedup\": {:.2}, \"wheel_cascades\": {}}}{}\n",
            r.nodes,
            r.events,
            r.wheel_evps,
            r.heap_evps,
            r.speedup,
            r.wheel_cascades,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gossip_scale\": {{\"n_nodes\": {}, \"data_holders\": {}, \"wall_s\": {:.1}, \
         \"models_transferred\": {}, \"online_nodes\": {}, \"final_accuracy\": {:.4}}},\n",
        gossip.n_nodes,
        gossip.data_holders,
        gossip.wall_s,
        gossip.models_transferred,
        gossip.online_nodes,
        gossip.accuracy,
    ));
    let rule = ramp_rule();
    json.push_str(&format!(
        "  \"slo_ramp\": {{\"n_nodes\": {mn}, \"validators\": {validators}, \
         \"block_interval_us\": {BLOCK_INTERVAL_US}, \"block_cap\": {BLOCK_CAP}, \
         \"capacity_tps\": {capacity_tps:.0}, \"slo_p99_us\": {SLO_US}, \
         \"knee_load_pct\": {knee}, \"online_knee_load_pct\": {knee}, \
         \"alert_rule\": {{\"name\": \"{}\", \"budget_bp\": {}, \
         \"short_window_us\": {}, \"long_window_us\": {}, \"fire_burn_x100\": {}, \
         \"min_count\": {}}}, \"points\": [\n",
        rule.name,
        rule.budget_bp,
        rule.short_window_us,
        rule.long_window_us,
        rule.fire_burn_x100,
        rule.min_count,
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"load_pct\": {}, \"offered_tps\": {:.0}, \"included\": {}, \
             \"p99_us\": {}, \"max_backlog\": {}, \"slo_ok\": {}, \
             \"alert_fired\": {}, \"alert_at_us\": {}}}{}\n",
            p.load_x100,
            p.offered_tps,
            p.included,
            p.p99_us,
            p.max_backlog,
            p.slo_ok,
            p.alert_fired,
            p.alert_at_us
                .map(|a| a.to_string())
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]}\n");
    json.push_str("}\n");
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
}
