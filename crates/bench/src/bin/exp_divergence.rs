//! Divergence-forensics smoke (experiment E21): produce two JSONL
//! captures of the shared E16 trace scenario that differ by exactly one
//! planted event, then prove `pds2_obs::diff` localizes the delta to
//! the exact first divergent `seq` by bisecting the interleaved segment
//! checkpoints — without reading more than O(n/segment + segment) event
//! bodies.
//!
//! Writes (and leaves behind for CI artifact upload / the `obs_diff`
//! CLI step):
//!
//! * `trace_div_a.jsonl` / `trace_div_b.jsonl` — the two captures;
//! * `divergence_report.txt` / `divergence_report.json` — the verdict.
//!
//! `cargo run --release -p pds2-bench --bin exp_divergence`
//! `cargo run --release -p pds2-bench --bin exp_divergence -- --smoke`
//!   (CI mode: one scenario phase instead of two, same assertions)

use pds2_bench::trace_scenario;
use pds2_obs as obs;
use pds2_obs::diff::{self, Verdict};
use std::path::{Path, PathBuf};

const SEEDS: [u64; 2] = [0xE21, 0xE22];

/// Runs the scenario phases into `path`, planting one extra `net` event
/// between phases when `plant` is set (mid-stream, so the delta lands
/// inside the checkpoint chain, not at its tail), and returns the
/// capture summary.
fn capture(path: &Path, phases: &[u64], plant: bool) -> obs::CaptureSummary {
    let cap = obs::capture(obs::SinkKind::Jsonl(path.to_path_buf()));
    let mut first = true;
    for &seed in phases {
        if !first && plant {
            obs::event!("net", "intruder", obs::Stamp::Sim(0), "planted" => 1u64);
        }
        first = false;
        trace_scenario::run(seed);
    }
    cap.finish()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let _g = obs::test_lock();
    // Always two phases (the plant must sit mid-stream); smoke repeats
    // the same seed, the full run varies it.
    let phases: &[u64] = if smoke { &[SEEDS[0], SEEDS[0]] } else { &SEEDS };

    let pa = PathBuf::from("trace_div_a.jsonl");
    let pb = PathBuf::from("trace_div_b.jsonl");
    println!(
        "exp_divergence: capturing baseline ({} phase(s)) ...",
        phases.len()
    );
    let a = capture(&pa, phases, false);
    println!(
        "  {} events, {} segments, digest {}",
        a.events,
        a.segments.len(),
        a.digest
    );
    println!("exp_divergence: capturing perturbed run (one planted event) ...");
    let b = capture(&pb, phases, true);
    println!(
        "  {} events, {} segments, digest {}",
        b.events,
        b.segments.len(),
        b.digest
    );
    assert_ne!(
        a.digest, b.digest,
        "the planted event must change the digest"
    );
    assert!(
        a.segments.len() >= 2,
        "scenario must span multiple segments, got {}",
        a.segments.len()
    );

    // Ground truth from the perturbed file itself: the planted event's
    // seq is the first stream position where the captures differ.
    let body_b = std::fs::read_to_string(&pb).expect("perturbed capture readable");
    let intruder_row = body_b
        .lines()
        .find(|l| l.contains("\"name\":\"intruder\""))
        .expect("planted event recorded");
    let ground_truth: u64 = intruder_row
        .split("\"seq\":")
        .nth(1)
        .and_then(|r| r.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("planted event row carries a seq");

    let report = diff::diff_files(&pa, &pb, 3).expect("diff runs");
    match &report.verdict {
        Verdict::DivergesAt { seq, segment, .. } => {
            println!(
                "exp_divergence: diverges at seq {seq} (segment {segment}), \
                 {} checkpoint compares, {} event bodies read",
                report.checkpoints_compared, report.bodies_read
            );
            assert_eq!(
                *seq, ground_truth,
                "bisected first divergent seq must match the planted event"
            );
        }
        v => panic!("expected DivergesAt, got {v:?}"),
    }
    assert!(report.bisected, "checkpointed captures must bisect");
    let bound = 2 * (obs::SEGMENT_EVENTS + 2 * 3 + 2);
    assert!(
        report.bodies_read <= bound,
        "bodies_read {} exceeds the one-segment bound {bound}",
        report.bodies_read
    );

    std::fs::write("divergence_report.txt", report.render_text())
        .expect("write divergence_report.txt");
    std::fs::write("divergence_report.json", report.to_json() + "\n")
        .expect("write divergence_report.json");
    println!(
        "wrote divergence_report.txt and divergence_report.json \
         (captures left in place for the obs_diff CLI)"
    );
}
