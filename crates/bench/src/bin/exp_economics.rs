//! E13 — Future Work §VI: economic viability.
//!
//! "It is essential to evaluate the extent to which the proposed solution
//! is economically viable and whether the monetary and non-monetary
//! incentives provided to individual players are sufficient to drive
//! platform adoption. In particular, the executors need to be compensated
//! for their computational costs."
//!
//! Part 1 prices executor compute (simulated enclave nanoseconds at a
//! cloud-CPU rate) against the workload's executor fee and finds the
//! break-even fee per workload size.
//! Part 2 reports the consumer's total spend per accuracy point as the
//! provider pool grows.
//! Part 3 closes the loop: every token paid by the consumer lands at a
//! provider or an honest executor (flow conservation).
//!
//! `cargo run --release -p pds2-bench --bin exp_economics`

use pds2_bench::{build_world, print_table, round_robin_assignments};
use pds2_core::marketplace::StorageChoice;
use pds2_core::workload::RewardScheme;

/// Cloud-ish compute price: tokens per simulated enclave core-second.
/// (1 token ≈ 1e-4 currency unit; a vCPU-hour ≈ 0.05 → ~1.4 tokens/s.)
const TOKENS_PER_CORE_SECOND: f64 = 1.4;

fn main() {
    println!("E13: economic viability (Future Work §VI)\n");

    // Part 1: executor compute cost vs fee across workload sizes.
    println!("part 1: executor break-even (fee = 1000 tokens in the bench spec)");
    let mut rows = Vec::new();
    for &records in &[20usize, 80, 320, 1280] {
        let mut world = build_world(
            300 + records as u64,
            4,
            2,
            records,
            RewardScheme::ProportionalToRecords,
            |_| StorageChoice::Local,
        );
        let assignments = round_robin_assignments(&world);
        let (exec, fin) = world
            .market
            .run_full_lifecycle(world.workload, &assignments)
            .unwrap();
        let st = world.market.workload_state(world.workload).unwrap();
        let fee = st.executor_fee as f64;
        // Mean per-executor compute cost.
        let mean_ns: f64 = exec
            .enclave_costs
            .values()
            .map(|m| m.charged_ns as f64)
            .sum::<f64>()
            / exec.enclave_costs.len() as f64;
        let compute_cost = mean_ns / 1e9 * TOKENS_PER_CORE_SECOND;
        let breakeven = compute_cost;
        rows.push(vec![
            (records * 4).to_string(),
            format!("{:.0}", mean_ns / 1000.0),
            format!("{:.4}", compute_cost),
            format!("{:.0}", fee),
            format!("{:.0}x", fee / breakeven.max(1e-9)),
            fin.paid_executors.len().to_string(),
        ]);
    }
    print_table(
        &[
            "total records",
            "enclave_us",
            "compute cost (tokens)",
            "fee (tokens)",
            "fee/cost margin",
            "paid executors",
        ],
        &rows,
    );
    println!(
        "executors profit as long as the fee covers tokens-per-core-second × \
         enclave time; at these workload sizes the default fee leaves a wide \
         margin, so executor participation is incentive-compatible.\n"
    );

    // Part 2: consumer spend per accuracy point as the pool grows.
    println!("part 2: consumer cost per accuracy point vs provider-pool size");
    let mut rows = Vec::new();
    for &n_providers in &[2usize, 4, 8, 16] {
        let mut world = build_world(
            400 + n_providers as u64,
            n_providers,
            2,
            40,
            RewardScheme::ProportionalToRecords,
            |_| StorageChoice::Local,
        );
        let assignments = round_robin_assignments(&world);
        let (exec, fin) = world
            .market
            .run_full_lifecycle(world.workload, &assignments)
            .unwrap();
        let st = world.market.workload_state(world.workload).unwrap();
        let spent: u128 = fin.provider_shares.iter().map(|(_, v)| v).sum::<u128>()
            + fin.paid_executors.len() as u128 * st.executor_fee;
        let above_chance = (exec.validation_score - 0.5).max(1e-6);
        rows.push(vec![
            n_providers.to_string(),
            format!("{:.3}", exec.validation_score),
            spent.to_string(),
            format!("{:.0}", spent as f64 / (above_chance * 100.0)),
        ]);
    }
    print_table(
        &[
            "providers",
            "val_acc",
            "tokens spent",
            "tokens per accuracy point",
        ],
        &rows,
    );

    // Part 3: token-flow conservation.
    println!("\npart 3: token flow closes");
    let mut world = build_world(
        500,
        4,
        2,
        40,
        RewardScheme::ShapleyMonteCarlo { permutations: 10 },
        |_| StorageChoice::Local,
    );
    let supply_before = world.market.chain.state.total_native_supply();
    let assignments = round_robin_assignments(&world);
    let (_, fin) = world
        .market
        .run_full_lifecycle(world.workload, &assignments)
        .unwrap();
    let st = world.market.workload_state(world.workload).unwrap();
    let provider_total: u128 = fin.provider_shares.iter().map(|(_, v)| v).sum();
    let fees = fin.paid_executors.len() as u128 * st.executor_fee;
    let supply_after = world.market.chain.state.total_native_supply();
    println!("providers earned : {provider_total}");
    println!("executors earned : {fees}");
    println!("total supply     : {supply_before} -> {supply_after} (conserved)");
    assert_eq!(supply_before, supply_after);
    assert_eq!(provider_total, st.provider_reward);
    println!(
        "\nshape: the marketplace is a closed token economy — the consumer's \
         spend equals provider rewards plus honest-executor fees, and the \
         default fee leaves executors a large profit margin at IoT-scale \
         workloads."
    );
}
