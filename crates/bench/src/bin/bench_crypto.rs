//! Before/after throughput for the Montgomery signature-verification
//! fast path (DESIGN.md §5d): single Schnorr verification, 500-tx block
//! validation and chain sync replay, each against the schoolbook
//! baseline that shipped before the fast path existed.
//!
//! Before any timing is reported the two paths are checked for
//! *agreement* on a fixed-seed corpus — valid signatures, tampered
//! scalars, wrong messages, wrong keys — and the chain state root is
//! checked for bit-equality across `PDS2_THREADS ∈ {1, 4, 8}` on both
//! paths. A disagreement aborts the run.
//!
//! Writes `BENCH_crypto.json` in the working directory.
//!
//! `cargo run --release -p pds2-bench --bin bench_crypto`
//! `cargo run --release -p pds2-bench --bin bench_crypto -- --smoke`
//!   (CI mode: smaller corpus, single rep, same agreement assertions)

use pds2_chain::address::Address;
use pds2_chain::block::Block;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::sigcache;
use pds2_chain::tx::{SignedTransaction, Transaction, TxKind};
use pds2_crypto::schnorr::Group;
use pds2_crypto::{BigUint, KeyPair};
use std::time::Instant;

const BLOCK_TXS: usize = 500;
const REPLAY_BLOCKS: usize = 20;
const REPLAY_TXS_PER_BLOCK: usize = 25;

/// Best-of-`reps` wall-clock milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Row {
    name: String,
    baseline: &'static str,
    before_ms: f64,
    after_ms: f64,
}

/// Fixed-seed corpus agreement: the fast and schoolbook paths must reach
/// the same accept/reject decision on every case. Returns the corpus size.
fn assert_paths_agree(corpus: usize) -> usize {
    let q = &Group::standard().q;
    let mut checked = 0;
    for seed in 0..corpus as u64 {
        let kp = KeyPair::from_seed(40_000 + seed);
        let other = KeyPair::from_seed(50_000 + seed);
        let msg = seed.to_le_bytes();
        let sig = kp.sign(&msg);
        let mut tampered_s = sig.clone();
        tampered_s.s = tampered_s.s.add_mod(&BigUint::one(), q);
        let mut tampered_e = sig.clone();
        tampered_e.e = tampered_e.e.add_mod(&BigUint::one(), q);
        let mut out_of_range = sig.clone();
        out_of_range.e = q.clone();
        let cases: [(&pds2_crypto::PublicKey, &[u8], &pds2_crypto::Signature); 5] = [
            (&kp.public, &msg, &sig),        // valid
            (&kp.public, b"wrong", &sig),    // wrong message
            (&other.public, &msg, &sig),     // wrong key
            (&kp.public, &msg, &tampered_s), // tampered response
            (&kp.public, &msg, &tampered_e), // tampered challenge
        ];
        for (pk, m, s) in cases {
            let fast = pk.verify(m, s);
            let reference = pk.verify_reference(m, s);
            assert_eq!(fast, reference, "verification paths disagree (seed {seed})");
            checked += 1;
        }
        // Out-of-range scalar: both reject before any arithmetic.
        assert!(!kp.public.verify(&msg, &out_of_range));
        assert!(!kp.public.verify_reference(&msg, &out_of_range));
        checked += 1;
    }
    checked
}

/// Chain state roots must be bit-identical across thread counts with the
/// fast path engaged (the schoolbook path fed the same blocks produces
/// the same roots by the agreement check above).
fn assert_state_roots_thread_invariant() -> [usize; 3] {
    let block = build_block(64);
    let threads = [1usize, 4, 8];
    let roots: Vec<_> = threads
        .iter()
        .map(|&t| {
            pds2_par::with_threads(t, || {
                sigcache::clear();
                let mut verifier = verifier_chain();
                verifier
                    .apply_external_block(&cold_copy(&block))
                    .expect("valid block");
                (verifier.state.state_root(), verifier.head_hash())
            })
        })
        .collect();
    assert!(
        roots.iter().all(|r| r == &roots[0]),
        "state root changed with thread count: {roots:?}"
    );
    threads
}

fn producer_chain() -> Blockchain {
    let alice = KeyPair::from_seed(1);
    Blockchain::new(
        vec![KeyPair::from_seed(9000)],
        &[(Address::of(&alice.public), u128::MAX / 2)],
        ContractRegistry::new(),
        ChainConfig {
            block_gas_limit: u64::MAX,
            max_txs_per_block: usize::MAX,
            ..Default::default()
        },
    )
}

fn verifier_chain() -> Blockchain {
    producer_chain()
}

fn build_block(n_txs: usize) -> Block {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut chain = producer_chain();
    for nonce in 0..n_txs as u64 {
        let tx = Transaction {
            from: alice.public.clone(),
            nonce,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 50_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        chain.submit(tx).expect("admission");
    }
    let block = chain.produce_block();
    assert_eq!(block.transactions.len(), n_txs);
    block
}

/// A copy with cold per-tx digest caches so every timed run re-hashes.
fn cold_copy(block: &Block) -> Block {
    Block {
        header: block.header.clone(),
        transactions: block
            .transactions
            .iter()
            .map(|t| SignedTransaction::new(t.tx.clone(), t.signature.clone()))
            .collect(),
    }
}

/// Single verification: schoolbook double-modpow vs Shamir fast path.
fn verify_single_bench(reps: usize, n_msgs: usize) -> Row {
    let kp = KeyPair::from_seed(7);
    let signed: Vec<(Vec<u8>, pds2_crypto::Signature)> = (0..n_msgs as u64)
        .map(|i| {
            let msg = i.to_le_bytes().to_vec();
            let sig = kp.sign(&msg);
            (msg, sig)
        })
        .collect();
    let before_ms = time_ms(reps, || {
        for (msg, sig) in &signed {
            assert!(kp.public.verify_reference(msg, sig));
        }
    }) / n_msgs as f64;
    // Warm the per-key table once (steady-state verification is what the
    // chain pays per signature; the one-time table build is 14 mults).
    assert!(kp.public.verify(&signed[0].0, &signed[0].1));
    let after_ms = time_ms(reps, || {
        for (msg, sig) in &signed {
            assert!(kp.public.verify(msg, sig));
        }
    }) / n_msgs as f64;
    Row {
        name: "verify_single".into(),
        baseline: "schoolbook double modpow (divrem reduction)",
        before_ms,
        after_ms,
    }
}

/// Full-block validation at one thread: schoolbook per-signature checks
/// (the pre-fast-path structure) vs `validate_external_block` with a
/// cold signature cache.
fn block_validation_bench(reps: usize, n_txs: usize) -> Row {
    let block = build_block(n_txs);
    let verifier = verifier_chain();
    let before_ms = time_ms(reps, || {
        pds2_par::with_threads(1, || {
            let b = cold_copy(&block);
            assert!(b.tx_root_matches());
            for tx in &b.transactions {
                assert!(tx
                    .tx
                    .from
                    .verify_reference(tx.hash().as_bytes(), &tx.signature));
            }
        })
    });
    let after_ms = time_ms(reps, || {
        sigcache::clear(); // cold cache: every signature pays the real check
        pds2_par::with_threads(1, || {
            let b = cold_copy(&block);
            verifier.validate_external_block(&b).expect("valid");
        })
    });
    Row {
        name: format!("block_validation_{n_txs}tx"),
        baseline: "schoolbook per-tx verification, single thread",
        before_ms,
        after_ms,
    }
}

/// Sync replay: applying a canonical chain from genesis (what
/// `ChainReplica::adopt_if_longer` and crash recovery do). Cold = first
/// sync (empty signature cache, Montgomery path); warm = re-validation of
/// a chain whose signatures this process already accepted.
fn sync_replay_bench(reps: usize, n_blocks: usize, txs_per_block: usize) -> Row {
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    let mut canonical = producer_chain();
    let mut nonce = 0u64;
    for _ in 0..n_blocks {
        for _ in 0..txs_per_block {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce,
                kind: TxKind::Transfer { to: bob, amount: 1 },
                gas_limit: 50_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(&alice);
            canonical.submit(tx).expect("admission");
            nonce += 1;
        }
        canonical.produce_block();
    }
    let blocks: Vec<Block> = canonical.blocks().iter().map(cold_copy).collect();
    let replay = |label: &str| {
        let mut replica = verifier_chain();
        for b in blocks.iter().map(cold_copy) {
            replica.apply_external_block(&b).expect(label);
        }
        assert_eq!(replica.head_hash(), canonical.head_hash());
    };
    let before_ms = time_ms(reps, || {
        pds2_par::with_threads(1, || {
            sigcache::clear();
            replay("cold sync");
        })
    });
    // Warm the cache once, then time re-validation (fork choice replay).
    sigcache::clear();
    pds2_par::with_threads(1, || replay("warm-up"));
    let after_ms = time_ms(reps, || {
        pds2_par::with_threads(1, || replay("warm replay"));
    });
    let (hits, _) = sigcache::stats();
    assert!(hits > 0, "warm replay produced no cache hits");
    Row {
        name: format!("sync_replay_{n_blocks}x{txs_per_block}"),
        baseline: "cold first sync (empty verified-signature cache)",
        before_ms,
        after_ms,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, corpus, n_msgs, block_txs, replay_blocks) = if smoke {
        (1, 16, 8, 64, 4)
    } else {
        (3, 64, 32, BLOCK_TXS, REPLAY_BLOCKS)
    };
    let cores = pds2_par::hardware_cores();

    println!("crypto fast path: agreement corpus ...");
    let checked = assert_paths_agree(corpus);
    println!("  {checked} cases, fast == schoolbook on every decision");
    let threads_checked = assert_state_roots_thread_invariant();
    println!("  state roots bit-identical across threads {threads_checked:?}\n");

    let rows = [
        verify_single_bench(reps, n_msgs),
        block_validation_bench(reps, block_txs),
        sync_replay_bench(reps, replay_blocks, REPLAY_TXS_PER_BLOCK),
    ];

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(
        "  \"note\": \"best-of-N wall clock at a single thread; before = the named baseline, \
         after = Montgomery + Shamir dual exponentiation + bounded table/signature caches; \
         agreement with the schoolbook path is asserted on a fixed-seed corpus before timing\",\n",
    );
    json.push_str(&format!(
        "  \"determinism\": {{\"corpus_cases\": {checked}, \"agreement\": true, \
         \"threads_checked\": [1, 4, 8]}},\n"
    ));
    json.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = row.before_ms / row.after_ms;
        println!(
            "{:<24} before {:>9.3} ms   after {:>9.3} ms   speedup {:>6.2}x   ({})",
            row.name, row.before_ms, row.after_ms, speedup, row.baseline
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline\": \"{}\", \"before_ms\": {:.3}, \
             \"after_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            row.name,
            row.baseline,
            row.before_ms,
            row.after_ms,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_crypto.json", &json).expect("write BENCH_crypto.json");
    println!("\nwrote BENCH_crypto.json");
}
