//! E4 — §III-B: plaintext vs HE vs SMC vs TEE on linear inference,
//! sweeping the feature dimension. Reproduces the paper's comparative
//! claims: "HE … large overheads … impractical", "SMC … delays introduced
//! during communication", "TEEs … smaller overheads … better scalability".
//!
//! Ablation A2 sweeps the TEE cost-model parameters.
//!
//! `cargo run --release -p pds2-bench --bin exp_privacy_tech`

use pds2_bench::print_table;
use pds2_he as he;
use pds2_mpc::{secure_linear_inference, MpcEngine};
use pds2_tee::cost::CostModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    println!("E4: linear inference under the four §III-B regimes\n");
    let mut rng = StdRng::seed_from_u64(1);
    let he_key = he::generate_keypair(&mut rng, 1024).expect("keygen");
    let tee = CostModel::default();

    let mut rows = Vec::new();
    for &dim in &[4usize, 16, 64, 256] {
        let weights: Vec<f64> = (0..dim).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
        let features: Vec<f64> = (0..dim).map(|i| ((i % 11) as f64 - 5.0) / 5.0).collect();

        // Plaintext.
        let t = Instant::now();
        let mut acc = 0.0;
        let reps = 1_000;
        for _ in 0..reps {
            acc += weights
                .iter()
                .zip(&features)
                .map(|(w, x)| w * x)
                .sum::<f64>();
        }
        std::hint::black_box(acc);
        let plain_ns = t.elapsed().as_nanos() as u64 / reps;

        // Paillier HE: encrypt weights once, measure the encrypted dot.
        let fx = |v: f64| (v * 65536.0).round() as i64;
        let enc_w: Vec<_> = weights
            .iter()
            .map(|&w| he_key.public.encrypt_signed(&mut rng, fx(w)).unwrap())
            .collect();
        let fixed_x: Vec<i64> = features.iter().map(|&x| fx(x)).collect();
        let t = Instant::now();
        let ct = he::encrypted_dot(&he_key.public, &enc_w, &fixed_x).unwrap();
        let he_us = t.elapsed().as_micros() as u64;
        let he_bytes: usize = enc_w.iter().map(|c| c.byte_len()).sum();
        std::hint::black_box(he_key.decrypt_signed(&ct).unwrap());

        // SMC.
        let mut engine = MpcEngine::new(3, StdRng::seed_from_u64(2));
        let t = Instant::now();
        let (_, cost) = secure_linear_inference(&mut engine, &weights, 0.0, &features);
        let smc_local_us = t.elapsed().as_micros() as u64;
        let smc_wan_ms = cost.network_time_secs(0.05, 1_250_000.0) * 1e3;

        // TEE: plaintext compute + modelled overhead.
        let tee_total_ns = tee.total_ns(plain_ns, (dim * 16) as u64, 1);

        rows.push(vec![
            dim.to_string(),
            plain_ns.to_string(),
            format!("{}", he_us),
            format!("{}", he_bytes),
            format!("{} (+{:.0}ms WAN)", smc_local_us, smc_wan_ms),
            format!("{}", cost.bytes_sent),
            tee_total_ns.to_string(),
        ]);
    }
    print_table(
        &[
            "dim",
            "plain_ns",
            "he_us",
            "he_bytes",
            "smc_us(local+wan)",
            "smc_bytes",
            "tee_ns",
        ],
        &rows,
    );

    // Ablation A2: TEE cost-model sweep on a fixed task.
    println!("\nA2: TEE cost-model ablation (1 ms plain compute, 256 MiB working set)");
    let plain_ns = 1_000_000u64;
    let big_ws = 256 * 1024 * 1024u64;
    let mut rows = Vec::new();
    for (name, model) in [
        ("default (96 MiB EPC)", CostModel::default()),
        ("no paging (EPC = inf)", CostModel::no_paging()),
        (
            "slow transitions (35 us)",
            CostModel {
                transition_ns: 35_000,
                ..CostModel::default()
            },
        ),
        (
            "no MEE slowdown",
            CostModel {
                compute_factor: 1.0,
                ..CostModel::default()
            },
        ),
    ] {
        let small = model.total_ns(plain_ns, 1024, 1);
        let large = model.total_ns(plain_ns, big_ws, 1);
        rows.push(vec![
            name.to_string(),
            small.to_string(),
            large.to_string(),
            format!("{:.1}x", large as f64 / small as f64),
        ]);
    }
    print_table(
        &["model", "small_ws_ns", "large_ws_ns", "paging_penalty"],
        &rows,
    );
    println!(
        "\nshape: HE is orders of magnitude slower than plaintext and grows \
         linearly in dimension; SMC is locally cheap but pays WAN rounds and \
         bandwidth; the TEE stays within a small constant factor of plaintext \
         until the working set spills out of the EPC."
    );
}
