//! State-commitment benchmarks (DESIGN.md §5g, experiment E18): sparse-
//! Merkle root-update cost against the full-rehash oracle across account
//! counts, (non-)inclusion proof size and verification time, and crash
//! recovery — cold-start log replay vs snapshot restore.
//!
//! Before any timing is reported the two backends are checked for
//! bit-identical roots on a shared workload, and the SMT commit
//! (including its `nodes_hashed` accounting) is checked for bit-equality
//! across `PDS2_THREADS ∈ {1, 4, 8}` — a divergence aborts the run.
//!
//! Writes `BENCH_state.json` in the working directory.
//!
//! `cargo run --release -p pds2-bench --bin bench_state`
//! `cargo run --release -p pds2-bench --bin bench_state -- --smoke`
//!   (CI mode: smaller sweep, single rep, same equivalence assertions)

use pds2_chain::address::Address;
use pds2_chain::backend::BackendKind;
use pds2_chain::chain::Blockchain;
use pds2_chain::contract::ContractRegistry;
use pds2_chain::smt::SmtTree;
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::{sha256, Digest, KeyPair};
use pds2_storage::chainlog::ChainLog;
use std::sync::Arc;
use std::time::Instant;

/// Leaves touched per simulated block in the sweep.
const TOUCH: usize = 256;

/// Best-of-`reps` wall-clock milliseconds.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn key(i: u64) -> Digest {
    sha256(&i.to_le_bytes())
}

fn val(i: u64, round: u64) -> Digest {
    sha256(&[i.to_le_bytes(), round.to_le_bytes()].concat())
}

/// The touched-key batch for one simulated block: a deterministic spread
/// of existing keys (updates) plus a few fresh ones (inserts).
fn touch_batch(n: u64, round: u64) -> Vec<(Digest, Option<Digest>)> {
    let stride = (n / TOUCH as u64).max(1);
    let mut ups: Vec<(Digest, Option<Digest>)> = (0..TOUCH as u64 - 8)
        .map(|i| (key((i * stride) % n), Some(val(i, round))))
        .collect();
    // A handful of inserts beyond the initial population.
    ups.extend((0..8).map(|i| (key(n + round * 8 + i), Some(val(n + i, round)))));
    ups
}

/// Gate: both backends agree on a shared random-ish workload, and the
/// SMT commit (root AND nodes_hashed) is invariant across forced worker
/// counts. Aborts the bench on any divergence.
fn assert_equivalence_and_determinism() {
    // Tree level: incremental commits equal a from-scratch rebuild, at
    // every thread count, with identical nodes_hashed accounting. The
    // population crosses the parallel-commit threshold so the fan-out
    // path is actually exercised.
    let build = || {
        let leaves: Vec<(Digest, Digest)> = (0..3_000).map(|i| (key(i), val(i, 0))).collect();
        let (mut tree, built_hashed) = SmtTree::from_leaves(leaves);
        let mut hashed = built_hashed;
        for round in 1..4 {
            let ups: Vec<(Digest, Option<Digest>)> = (0..1_500)
                .map(|i| (key(i * 2), Some(val(i, round))))
                .collect();
            hashed += tree.commit(ups);
        }
        (tree.root_hash(), tree.len(), hashed)
    };
    let base = build();
    for threads in [1usize, 4, 8] {
        let got = pds2_par::with_threads(threads, build);
        assert_eq!(
            got, base,
            "SMT commit (root or nodes_hashed) diverged at {threads} threads"
        );
    }

    // Chain level: the incremental backend and the full-rehash oracle
    // produce bit-identical blocks on a real transaction workload.
    let run = |kind: BackendKind| {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = Blockchain::single_validator(
            77,
            &[(Address::of(&alice.public), 1_000_000)],
            ContractRegistry::new(),
        );
        chain.state.set_backend(kind);
        for nonce in 0..48u64 {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce,
                kind: TxKind::Transfer {
                    to: bob,
                    amount: 1 + nonce as u128,
                },
                gas_limit: 50_000,
                max_fee_per_gas: 2,
                priority_fee_per_gas: 1,
            }
            .sign(&alice);
            chain.submit(tx).expect("admission");
        }
        let mut roots = Vec::new();
        for _ in 0..4 {
            roots.push(chain.produce_block().header.state_root);
        }
        (roots, chain.head_hash())
    };
    let smt = run(BackendKind::Smt);
    let oracle = run(BackendKind::FullRehash);
    assert_eq!(
        smt, oracle,
        "incremental SMT and full-rehash oracle disagree on chain roots"
    );
}

struct SweepRow {
    accounts: usize,
    build_ms: f64,
    incr_commit_ms: f64,
    incr_nodes_hashed: u64,
    full_rehash_ms: f64,
    speedup: f64,
    proof_bytes: usize,
    proof_siblings: usize,
    verify_us: f64,
}

fn sweep_one(accounts: usize, reps: usize) -> SweepRow {
    let n = accounts as u64;
    let leaves: Vec<(Digest, Digest)> = (0..n).map(|i| (key(i), val(i, 0))).collect();

    // Initial build (also the cost baseline a snapshotless node pays).
    let t = Instant::now();
    let (tree, _) = SmtTree::from_leaves(leaves.clone());
    let build_ms = t.elapsed().as_secs_f64() * 1e3;

    // Incremental root update: TOUCH keys change, O(touched · depth).
    let mut incr_nodes_hashed = 0u64;
    let incr_commit_ms = time_ms(reps, || {
        let mut working = tree.clone(); // COW: clone is an Arc bump
        incr_nodes_hashed = working.commit(touch_batch(n, 1));
    });

    // Full rehash of the post-update leaf set: what the oracle (and any
    // non-incremental design) pays for the same block. The leaf-set
    // update itself is done once outside the timed region so only the
    // rebuild is measured.
    let mut updated = leaves.clone();
    {
        let mut index: std::collections::HashMap<Digest, usize> = updated
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (*k, i))
            .collect();
        for (k, v) in touch_batch(n, 1) {
            match index.get(&k) {
                Some(&i) => updated[i].1 = v.unwrap(),
                None => {
                    index.insert(k, updated.len());
                    updated.push((k, v.unwrap()));
                }
            }
        }
    }
    // Cross-check: the incremental path must land on the same root.
    {
        let (rebuilt, _) = SmtTree::from_leaves(updated.clone());
        let mut working = tree.clone();
        working.commit(touch_batch(n, 1));
        assert_eq!(
            rebuilt.root_hash(),
            working.root_hash(),
            "incremental and full-rehash roots diverged at {accounts} accounts"
        );
    }
    let rehash_reps = if accounts >= 1_000_000 { 1 } else { reps };
    let full_rehash_ms = time_ms(rehash_reps, || {
        let (rebuilt, _) = SmtTree::from_leaves(updated.clone());
        assert!(!rebuilt.is_empty());
    });

    // Proof size and verification cost at this population.
    let probe = key(n / 2);
    let proof = tree.prove(&probe);
    let proof_bytes = pds2_crypto::Encode::to_bytes(&proof).len();
    let proof_siblings = proof.siblings.len();
    let root = tree.root_hash();
    let want = tree.get(&probe).expect("probe key present");
    let t = Instant::now();
    let iters = 2_000;
    for _ in 0..iters {
        assert!(proof.verify_inclusion(&root, &probe, &want));
    }
    let verify_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;

    SweepRow {
        accounts,
        build_ms,
        incr_commit_ms,
        incr_nodes_hashed,
        full_rehash_ms,
        speedup: full_rehash_ms / incr_commit_ms,
        proof_bytes,
        proof_siblings,
        verify_us,
    }
}

struct RecoveryBench {
    blocks: usize,
    txs: usize,
    snapshot_every: u64,
    replay_ms: f64,
    restore_ms: f64,
    speedup: f64,
    log_bytes: usize,
}

/// Builds a chain journaling into a store, then times recovery two ways:
/// cold-start replay of the whole log (no snapshot) vs snapshot restore
/// plus tail replay. Both must land on the pre-crash head and root.
fn recovery_bench(n_blocks: usize, txs_per_block: usize, reps: usize) -> RecoveryBench {
    let genesis = || {
        let alice = KeyPair::from_seed(1);
        Blockchain::single_validator(
            77,
            &[(Address::of(&alice.public), u128::MAX / 1024)],
            ContractRegistry::new(),
        )
    };
    let snapshot_every = (n_blocks / 4).max(1) as u64;
    let alice = KeyPair::from_seed(1);
    let bob = Address::of(&KeyPair::from_seed(2).public);
    // Two stores journaling the same chain: one snapshots, one never
    // does (pure log replay on recovery).
    let with_snap = Arc::new(parking_lot::Mutex::new(ChainLog::new()));
    let no_snap = Arc::new(parking_lot::Mutex::new(ChainLog::new()));
    let mut chain = genesis();
    chain.attach_store(with_snap.clone(), snapshot_every);
    let mut nonce = 0u64;
    for _ in 0..n_blocks {
        for _ in 0..txs_per_block {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce,
                kind: TxKind::Transfer { to: bob, amount: 1 },
                gas_limit: 50_000,
                max_fee_per_gas: 2,
                priority_fee_per_gas: 1,
            }
            .sign(&alice);
            nonce += 1;
            chain.submit(tx).expect("admission");
        }
        chain.produce_block();
    }
    // Mirror the block frames into the snapshotless store.
    {
        let mut log = no_snap.lock();
        for f in with_snap.lock().scan().frames {
            log.append(f.kind, f.height, &f.payload);
        }
    }
    let want_head = chain.head_hash();
    let want_root = chain.state.state_root();

    let replay_ms = time_ms(reps, || {
        let recovered = Blockchain::recover_from_store(genesis(), no_snap.clone(), 0);
        assert_eq!(recovered.head_hash(), want_head, "replay head mismatch");
        assert_eq!(recovered.state.state_root(), want_root);
    });
    let restore_ms = time_ms(reps, || {
        let recovered =
            Blockchain::recover_from_store(genesis(), with_snap.clone(), snapshot_every);
        assert_eq!(recovered.head_hash(), want_head, "restore head mismatch");
        assert_eq!(recovered.state.state_root(), want_root);
    });

    let log_bytes = no_snap.lock().log_bytes();
    RecoveryBench {
        blocks: n_blocks,
        txs: n_blocks * txs_per_block,
        snapshot_every,
        replay_ms,
        restore_ms,
        speedup: replay_ms / restore_ms,
        log_bytes,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let reps = if smoke { 1 } else { 3 };
    let (rec_blocks, rec_txs) = if smoke { (16, 16) } else { (64, 64) };
    let cores = pds2_par::hardware_cores();

    println!("state: backend equivalence + thread-count determinism ...");
    assert_equivalence_and_determinism();
    println!("  roots bit-identical: smt vs full-rehash, threads [1, 4, 8]\n");

    let rows: Vec<SweepRow> = sizes
        .iter()
        .map(|&accounts| {
            let row = sweep_one(accounts, reps);
            println!(
                "accounts {:>9}   build {:>9.1} ms   incr commit {:>7.3} ms ({} nodes)   \
                 full rehash {:>9.1} ms   speedup {:>7.1}x   proof {} B / {} sibs   \
                 verify {:.1} us",
                row.accounts,
                row.build_ms,
                row.incr_commit_ms,
                row.incr_nodes_hashed,
                row.full_rehash_ms,
                row.speedup,
                row.proof_bytes,
                row.proof_siblings,
                row.verify_us,
            );
            // The PR's headline claim, asserted where timing is stable
            // enough to trust (full runs at ≥100k accounts).
            if !smoke && accounts >= 100_000 {
                assert!(
                    row.speedup >= 10.0,
                    "incremental commit must beat the full rehash ≥10x at \
                     {accounts} accounts (got {:.1}x)",
                    row.speedup
                );
            }
            row
        })
        .collect();

    println!("\nrecovery: cold-start log replay vs snapshot restore ({rec_blocks} blocks x {rec_txs} txs) ...");
    let rec = recovery_bench(rec_blocks, rec_txs, reps);
    println!(
        "  replay {:.1} ms   snapshot restore {:.1} ms   speedup {:.1}x   log {} B",
        rec.replay_ms, rec.restore_ms, rec.speedup, rec.log_bytes,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"touched_per_block\": {TOUCH},\n"));
    json.push_str(
        "  \"note\": \"best-of-N wall clock; incr = COW sparse-Merkle commit of the touched \
         keys; full rehash = rebuild of the whole leaf set (the reference oracle's cost); \
         backend equivalence and PDS2_THREADS 1/4/8 invariance asserted before timing; \
         recovery compares full log replay against snapshot restore + tail replay on the \
         same chain\",\n",
    );
    json.push_str(
        "  \"determinism\": {\"backends_bit_identical\": true, \"threads_checked\": [1, 4, 8]},\n",
    );
    json.push_str("  \"root_update_sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"accounts\": {}, \"build_ms\": {:.1}, \"incr_commit_ms\": {:.4}, \
             \"incr_nodes_hashed\": {}, \"full_rehash_ms\": {:.1}, \"speedup\": {:.1}, \
             \"proof_bytes\": {}, \"proof_siblings\": {}, \"verify_us\": {:.2}}}{}\n",
            r.accounts,
            r.build_ms,
            r.incr_commit_ms,
            r.incr_nodes_hashed,
            r.full_rehash_ms,
            r.speedup,
            r.proof_bytes,
            r.proof_siblings,
            r.verify_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"recovery\": {{\"blocks\": {}, \"txs\": {}, \"snapshot_every\": {}, \
         \"replay_ms\": {:.1}, \"restore_ms\": {:.1}, \"speedup\": {:.1}, \
         \"log_bytes\": {}}}\n",
        rec.blocks,
        rec.txs,
        rec.snapshot_every,
        rec.replay_ms,
        rec.restore_ms,
        rec.speedup,
        rec.log_bytes,
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_state.json", &json).expect("write BENCH_state.json");
    println!("\nwrote BENCH_state.json");
}
