//! E12 — §II-E: tamper-proofness of the platform under active attacks.
//!
//! Runs each attack scenario against a live marketplace and prints a
//! detection matrix: every attack must be detected and contained without
//! collateral damage to honest actors.
//!
//! `cargo run --release -p pds2-bench --bin exp_adversarial`

use pds2_bench::{build_world, print_table, round_robin_assignments};
use pds2_chain::address::Address;
use pds2_chain::tx::{Transaction, TxKind};
use pds2_core::marketplace::{MarketError, StorageChoice};
use pds2_core::workload::RewardScheme;
use pds2_crypto::{sha256, KeyPair};

fn main() {
    println!("E12: adversarial scenarios (§II-E tamper-proofness)\n");
    let mut rows: Vec<Vec<String>> = Vec::new();

    // 1. Forged result hash from a registered executor.
    {
        let mut w = build_world(1, 4, 3, 30, RewardScheme::ProportionalToRecords, |_| {
            StorageChoice::Local
        });
        // Data to executors 0/1 only.
        for (i, &p) in w.providers.clone().iter().enumerate() {
            w.market
                .provider_accept(p, w.workload, w.executors[i % 2])
                .unwrap();
        }
        w.market.try_start(w.workload).unwrap();
        let exec = w.market.execute(w.workload).unwrap();
        w.market
            .executor_submit_forged_result(w.executors[2], w.workload, sha256(b"forged"))
            .unwrap();
        let fin = w.market.finalize(w.workload).unwrap();
        let detected = fin.slashed == vec![w.executors[2]]
            && w.market.workload_state(w.workload).unwrap().result == Some(exec.result_hash);
        rows.push(vec![
            "executor forges result".into(),
            "slashing via 2/3 agreement".into(),
            yesno(detected),
        ]);
    }

    // 2. Provider double-claims through two executors.
    {
        let mut w = build_world(2, 3, 2, 30, RewardScheme::ProportionalToRecords, |_| {
            StorageChoice::Local
        });
        let p = w.providers[0];
        w.market
            .provider_accept(p, w.workload, w.executors[0])
            .unwrap();
        let err = w.market.provider_accept(p, w.workload, w.executors[1]);
        rows.push(vec![
            "provider double-claims reward".into(),
            "on-chain duplicate-contribution check".into(),
            yesno(matches!(err, Err(MarketError::ChainFailure(_)))),
        ]);
    }

    // 3. Consumer ships code that differs from the advertised measurement.
    {
        use pds2_bench::classification_spec;
        use pds2_ml::data::gaussian_blobs;
        use pds2_tee::measurement::EnclaveCode;
        let mut w = build_world(3, 1, 1, 30, RewardScheme::ProportionalToRecords, |_| {
            StorageChoice::Local
        });
        let advertised = EnclaveCode::new("t", 1, b"advertised".to_vec());
        let actual = EnclaveCode::new("t", 1, b"trojan".to_vec());
        let spec = classification_spec(
            &advertised,
            gaussian_blobs(20, 4, 0.7, 1),
            RewardScheme::ProportionalToRecords,
            1,
        );
        let err = w.market.submit_workload(w.consumer, spec, actual, 1);
        rows.push(vec![
            "consumer swaps workload code".into(),
            "measurement pinning at submission".into(),
            yesno(matches!(err, Err(MarketError::Attestation(_)))),
        ]);
    }

    // 4. Transaction tampering after signing.
    {
        let w = build_world(4, 1, 1, 30, RewardScheme::ProportionalToRecords, |_| {
            StorageChoice::Local
        });
        let mallory = KeyPair::from_seed(666);
        let victim = w.providers[0];
        let mut tx = Transaction {
            from: mallory.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer {
                to: Address::of(&mallory.public),
                amount: 1,
            },
            gas_limit: 100_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&mallory);
        // Redirect the (signed) transfer to drain the victim instead.
        if let TxKind::Transfer { to, .. } = &mut tx.tx.kind {
            *to = victim;
        }
        let mut market = w.market;
        let rejected = market.chain.submit(tx).is_err();
        rows.push(vec![
            "tampered signed transaction".into(),
            "Schnorr signature over tx hash".into(),
            yesno(rejected),
        ]);
    }

    // 5. Reward shares exceeding escrow (malicious finalizer).
    {
        let mut w = build_world(5, 2, 1, 30, RewardScheme::ProportionalToRecords, |_| {
            StorageChoice::Local
        });
        let assignments = round_robin_assignments(&w);
        for (p, e) in &assignments {
            w.market.provider_accept(*p, w.workload, *e).unwrap();
        }
        w.market.try_start(w.workload).unwrap();
        w.market.execute(w.workload).unwrap();
        // Direct malicious finalize with inflated shares via raw tx.
        use pds2_core::contract::calls;
        let contract = w.market.workload_contract(w.workload).unwrap();
        let inflated = calls::finalize(&[(w.providers[0], u128::MAX / 2)]);
        let consumer_keys = KeyPair::from_seed(1); // consumer seed in build_world
        let nonce = w
            .market
            .chain
            .state
            .nonce(&Address::of(&consumer_keys.public));
        let tx = Transaction {
            from: consumer_keys.public.clone(),
            nonce,
            kind: TxKind::Call {
                contract,
                input: inflated,
                value: 0,
            },
            gas_limit: 10_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&consumer_keys);
        let hash = w.market.chain.submit(tx).unwrap();
        w.market.chain.produce_block();
        let receipt = w.market.chain.receipt(&hash).unwrap();
        rows.push(vec![
            "inflated reward shares".into(),
            "escrow bound in workload contract".into(),
            yesno(!receipt.success),
        ]);
    }

    // 6. Sealed-storage corruption by the operator.
    {
        use pds2_crypto::chacha20::{seal, SealedBlob};
        use pds2_storage::store::ThirdPartyStore;
        let key = [3u8; 32];
        let blob = seal(&key, [0u8; 12], b"readings");
        let corrupted = SealedBlob {
            nonce: blob.nonce,
            ciphertext: blob.ciphertext.iter().map(|b| b ^ 1).collect(),
            tag: blob.tag,
        };
        rows.push(vec![
            "storage operator corrupts blob".into(),
            "HMAC tag on sealed payload".into(),
            yesno(ThirdPartyStore::unseal_payload(&key, &corrupted).is_err()),
        ]);
    }

    print_table(&["attack", "defence", "detected"], &rows);
    let all = rows.iter().all(|r| r[2] == "yes");
    println!("\nall attacks detected: {}", if all { "YES" } else { "NO" });
    assert!(all);
}

fn yesno(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}
