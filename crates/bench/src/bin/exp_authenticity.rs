//! E9 — §IV-B: data-authenticity pipeline.
//!
//! Part 1: device signature generation and executor-side verification
//! throughput (readings/second).
//! Part 2: the attack matrix — forged payloads, replays, duplicates,
//! unendorsed devices — detection rate must be 100% with zero false
//! positives on honest traffic.
//!
//! `cargo run --release -p pds2-bench --bin exp_authenticity`

use pds2_bench::print_table;
use pds2_core::authenticity::{Device, ManufacturerRegistry, ReadingRejection, ReadingVerifier};
use pds2_crypto::KeyPair;
use std::time::Instant;

fn main() {
    println!("E9: device-signed reading pipeline (§IV-B)\n");
    let mut registry = ManufacturerRegistry::new();
    let manufacturer = KeyPair::from_seed(1);
    registry.register_manufacturer(manufacturer.public.clone());

    // Endorse every device up front (registry is borrowed immutably by
    // the verifiers below).
    let mut device = Device::new(1);
    let mut honest_device = Device::new(2);
    let mut rogue = Device::new(3); // deliberately NOT endorsed
    let mut replay_device = Device::new(4);
    registry.endorse(&manufacturer, &device).unwrap();
    registry.endorse(&manufacturer, &honest_device).unwrap();
    registry.endorse(&manufacturer, &replay_device).unwrap();

    // Part 1: throughput.
    let n = 500usize;
    let t = Instant::now();
    let readings: Vec<_> = (0..n)
        .map(|i| device.sign_reading(i as u64, vec![20.0, 0.5, 1.0, 2.0], 21.0))
        .collect();
    let sign_s = t.elapsed().as_secs_f64();
    let mut verifier = ReadingVerifier::new(&registry);
    let t = Instant::now();
    for r in &readings {
        verifier.verify(r).expect("honest reading");
    }
    let verify_s = t.elapsed().as_secs_f64();
    let mut rows = Vec::new();
    rows.push(vec![
        "sign (device)".into(),
        format!("{:.0}", n as f64 / sign_s),
        format!("{:.2}", sign_s / n as f64 * 1e3),
    ]);
    rows.push(vec![
        "verify (executor)".into(),
        format!("{:.0}", n as f64 / verify_s),
        format!("{:.2}", verify_s / n as f64 * 1e3),
    ]);
    print_table(&["operation", "readings/s", "ms/reading"], &rows);

    // Part 2: attack matrix.
    println!("\nattack matrix (1000 honest + 400 attacks)");
    let mut verifier = ReadingVerifier::new(&registry);
    let honest: Vec<_> = (0..1000u64)
        .map(|t| honest_device.sign_reading(t, vec![20.0 + t as f64 * 0.001], 0.0))
        .collect();
    let mut false_positives = 0;
    for r in &honest {
        if verifier.verify(r).is_err() {
            false_positives += 1;
        }
    }
    let mut detections: Vec<(&str, usize, usize)> = Vec::new();

    // Forged payloads.
    let mut caught = 0;
    for r in honest.iter().take(100) {
        let mut f = r.clone();
        f.target = 1234.5;
        if verifier.verify(&f) == Err(ReadingRejection::BadSignature) {
            caught += 1;
        }
    }
    detections.push(("forged payload", caught, 100));

    // Duplicates (resale).
    let mut caught = 0;
    for r in honest.iter().take(100) {
        if verifier.verify(r) == Err(ReadingRejection::Duplicate) {
            caught += 1;
        }
    }
    detections.push(("duplicate resale", caught, 100));

    // Sequence replays (new blob, old sequence): craft readings with a
    // fresh device, accept the latest one, then replay earlier ones.
    let old: Vec<_> = (0..100u64)
        .map(|t| replay_device.sign_reading(t, vec![t as f64], 0.0))
        .collect();
    let newest = replay_device.sign_reading(100, vec![0.0], 0.0);
    verifier.verify(&newest).unwrap();
    let mut caught = 0;
    for r in &old {
        if verifier.verify(r) == Err(ReadingRejection::SequenceReplay) {
            caught += 1;
        }
    }
    detections.push(("sequence replay", caught, 100));

    // Unendorsed device.
    let mut caught = 0;
    for t in 0..100u64 {
        let r = rogue.sign_reading(t, vec![1.0], 0.0);
        if verifier.verify(&r) == Err(ReadingRejection::UntrustedDevice) {
            caught += 1;
        }
    }
    detections.push(("unendorsed device", caught, 100));

    let rows: Vec<Vec<String>> = detections
        .iter()
        .map(|(name, caught, total)| {
            vec![
                name.to_string(),
                format!("{caught}/{total}"),
                format!("{:.0}%", *caught as f64 / *total as f64 * 100.0),
            ]
        })
        .collect();
    print_table(&["attack", "detected", "rate"], &rows);
    println!("\nfalse positives on honest traffic: {false_positives}/1000");
    assert_eq!(false_positives, 0);
    for (_, caught, total) in &detections {
        assert_eq!(caught, total, "all attacks must be detected");
    }
    println!(
        "shape: Schnorr verification sustains hundreds of readings/s even \
         unoptimized; every §IV-B attack class is rejected with zero false \
         positives."
    );
}
