//! Shared E16 scenario: a faulty marketplace lifecycle plus cross-node
//! chain sync and gossip learning, all under chaos fault plans, emitting
//! one multi-trace causal capture.
//!
//! Both the `exp_trace_lifecycle` binary and the `obs_determinism`
//! integration test drive this exact workload, so the digest and
//! critical-path assertions compare the same event stream. Everything in
//! here is a pure function of `seed`: logical stamps only, deterministic
//! fault schedules, no wall clock.

use crate::{round_robin_assignments, temperature_metadata, BenchWorld};
use pds2_chain::address::Address;
use pds2_chain::chain::{Blockchain, ChainConfig};
use pds2_chain::contract::ContractRegistry;
use pds2_chain::sync::{ChainReplica, GenesisFactory};
use pds2_core::marketplace::{Marketplace, RetryPolicy, StorageChoice};
use pds2_core::workload::RewardScheme;
use pds2_crypto::KeyPair;
use pds2_learning::gossip::{run_gossip_experiment_with_faults, GossipConfig};
use pds2_ml::data::gaussian_blobs;
use pds2_ml::model::LogisticRegression;
use pds2_net::{FaultPlan, LinkEffect, LinkModel, LinkScope, Simulator};
use std::sync::Arc;

const N_REPLICAS: usize = 4;

/// Marketplace leg: one workload that completes only after a full
/// executor crash is healed by retry backoff, and a second that is
/// aborted (timeout refund) when its executors crash without recovery.
fn faulty_marketplace(seed: u64) {
    let mut market = Marketplace::new(seed);
    let consumer = market.register_consumer(1, u128::MAX / 4);
    let data = gaussian_blobs(240, 4, 0.7, seed ^ 5);
    let (train, validation) = data.split(0.2, seed ^ 6);
    let shards = train.partition_iid(3, seed ^ 7);
    let mut providers = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let p = market.register_provider(1000 + i as u64, StorageChoice::Local);
        market.provider_add_device(p).expect("registered");
        market
            .provider_ingest(p, 0, shard, temperature_metadata())
            .expect("ingest");
        providers.push(p);
    }
    let executors: Vec<Address> = (0..2).map(|i| market.register_executor(5000 + i)).collect();
    let code = pds2_tee::measurement::EnclaveCode::new("trace-trainer", 1, b"trace-v1".to_vec());
    let spec = crate::classification_spec(
        &code,
        validation.clone(),
        RewardScheme::ProportionalToRecords,
        3,
    );

    // Workload A: crash every executor after start; execute_with_retry
    // mines backoff blocks until the scheduled recovery heals them.
    let wl_a = market
        .submit_workload(consumer, spec, code, 2)
        .expect("submit A");
    for &e in &executors {
        market.executor_join(e, wl_a).expect("join A");
    }
    let world = BenchWorld {
        market,
        consumer,
        providers: providers.clone(),
        executors: executors.clone(),
        workload: wl_a,
    };
    let assignments = round_robin_assignments(&world);
    let mut market = world.market;
    for (p, e) in &assignments {
        market.provider_accept(*p, wl_a, *e).expect("accept A");
    }
    assert!(market.try_start(wl_a).expect("start A"), "quorum met");
    let recover_at = market.chain.height() + 3;
    for &e in &executors {
        market.executor_crash(e, Some(recover_at)).expect("crash A");
    }
    let (_, attempts) = market
        .execute_with_retry(
            wl_a,
            RetryPolicy {
                max_attempts: 4,
                backoff_blocks: 2,
            },
        )
        .expect("retry heals the crash");
    assert!(attempts > 1, "first attempt must fail (all crashed)");
    market.finalize(wl_a).expect("finalize A");

    // Workload B: same providers, executors crash for good — the
    // execution-timeout abort refunds the consumer. Distinct code: the
    // workload-code NFT content hash must be fresh.
    let code_b = pds2_tee::measurement::EnclaveCode::new("trace-trainer", 2, b"trace-v2".to_vec());
    let spec_b =
        crate::classification_spec(&code_b, validation, RewardScheme::ProportionalToRecords, 3);
    let wl_b = market
        .submit_workload_with_timeout(consumer, spec_b, code_b, 2, 4)
        .expect("submit B");
    for &e in &executors {
        market.executor_join(e, wl_b).expect("join B");
    }
    for (i, &p) in providers.iter().enumerate() {
        market
            .provider_accept(p, wl_b, executors[i % executors.len()])
            .expect("accept B");
    }
    assert!(market.try_start(wl_b).expect("start B"));
    for &e in &executors {
        market.executor_crash(e, None).expect("crash B");
    }
    let refund = market.abort_workload(wl_b).expect("abort B");
    assert!(refund > 0, "abort refunds remaining escrow");
}

/// Chain-sync leg: four replicas gossip blocks under partition, crash
/// and byzantine corruption; every delivery descends from one root, so
/// the trace has real cross-node hops.
fn chaos_chain_sync(seed: u64, until_us: u64) {
    let plan = FaultPlan::new(0x0E16)
        .partition(1_200_000, 2_800_000, vec![vec![0, 1], vec![2, 3]])
        .crash(2, 3_200_000, Some(4_400_000))
        .byzantine(
            400_000,
            2_000_000,
            LinkScope::from_node(3),
            LinkEffect::Corrupt { probability: 0.25 },
        );
    let factory: GenesisFactory = Arc::new(|| {
        Blockchain::new(
            (0..N_REPLICAS as u64)
                .map(|i| KeyPair::from_seed(9_000 + i))
                .collect(),
            &[(Address::of(&KeyPair::from_seed(1).public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig::default(),
        )
    });
    let replicas: Vec<ChainReplica> = (0..N_REPLICAS)
        .map(|i| ChainReplica::new(factory.clone(), Some(i), 200_000, 150_000))
        .collect();
    let link = LinkModel {
        base_latency_us: 5_000,
        jitter_us: 2_000,
        bandwidth_bytes_per_sec: 12_500_000,
        drop_probability: 0.0,
        node_slowdown: Vec::new(),
        topology: None,
    };
    let mut sim = Simulator::new(replicas, link, seed);
    sim.install_fault_plan(plan);
    sim.enable_trace();
    let root = pds2_obs::new_trace(
        "chain",
        "sync.experiment",
        pds2_obs::Stamp::Sim(0),
        vec![("replicas", pds2_obs::Value::from(N_REPLICAS as u64))],
    );
    if root.id() != 0 {
        sim.set_root_ctx(root.ctx());
    }
    sim.run_until(until_us);
    root.finish(pds2_obs::Stamp::Sim(sim.now()), Vec::new());
}

/// Gossip leg: byzantine corruption over an 8-node mesh; the experiment
/// mints its own `learning/gossip.experiment` root internally.
fn chaos_gossip(seed: u64) {
    let data = gaussian_blobs(320, 3, 0.7, seed ^ 0x60);
    let (train, test) = data.split(0.25, seed ^ 0x61);
    let shards = train.partition_iid(8, seed ^ 0x62);
    let plan = FaultPlan::new(0xC0FF ^ seed).byzantine(
        200_000,
        1_600_000,
        LinkScope::any(),
        LinkEffect::Corrupt { probability: 0.3 },
    );
    run_gossip_experiment_with_faults(
        shards,
        &test,
        GossipConfig {
            period_us: 100_000,
            ..Default::default()
        },
        LinkModel::instant(),
        seed,
        &[1_000_000, 2_400_000],
        None,
        Some(plan),
        || LogisticRegression::new(3),
    );
}

/// Runs the full E16 workload. The caller owns the capture: wrap this in
/// [`pds2_obs::capture`] (any sink) and any `pds2_par::with_threads`
/// setting; the resulting event stream is bit-identical for a given
/// `seed`.
pub fn run(seed: u64) {
    faulty_marketplace(seed);
    chaos_chain_sync(seed, 5_000_000);
    chaos_gossip(seed);
}
