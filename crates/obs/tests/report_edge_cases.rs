//! `TraceAnalysis` must be total: malformed or degenerate captures —
//! empty, single-event, causally broken — analyse without panicking
//! and produce a stable `report_digest` (same input ⇒ same digest, so
//! degenerate traces still replay-check).

use pds2_obs as obs;
use pds2_obs::report::TraceAnalysis;
use pds2_obs::{SinkKind, Stamp};

fn analyse_twice(jsonl: &str) -> (String, String) {
    let a = TraceAnalysis::from_jsonl(jsonl);
    let b = TraceAnalysis::from_jsonl(jsonl);
    // Rendering paths must be total too, not just construction.
    let _ = a.render_text();
    let _ = a.render_folded();
    let _ = a.to_metrics_snapshot().render_prometheus();
    (a.report_digest(), b.report_digest())
}

#[test]
fn empty_capture_analyses_cleanly() {
    let (d1, d2) = analyse_twice("");
    assert_eq!(d1, d2, "empty-capture digest must be stable");
    let a = TraceAnalysis::from_jsonl("");
    assert_eq!(a.events, 0);
    assert!(a.traces.is_empty());
    assert!(a.spans.is_empty());
}

#[test]
fn single_event_trace_analyses_cleanly() {
    let _g = obs::test_lock();
    let cap = obs::capture(SinkKind::Ring(16));
    obs::event!("chain", "lonely", Stamp::Sim(7), "x" => 1u64);
    let rep = cap.finish();
    assert_eq!(rep.events, 1);
    let jsonl = rep
        .entries
        .iter()
        .map(|e| e.to_json())
        .collect::<Vec<_>>()
        .join("\n");
    let (d1, d2) = analyse_twice(&jsonl);
    assert_eq!(d1, d2, "single-event digest must be stable");
    let a = TraceAnalysis::from_jsonl(&jsonl);
    assert_eq!(a.events, 1);
    assert_eq!(a.free_points.len(), 1, "a bare point joins no span");
    assert!(a.traces.is_empty(), "no root span, no trace");
}

#[test]
fn orphaned_parent_span_does_not_panic() {
    // A span-start whose parent id was never opened (e.g. the capture
    // began mid-trace, or a ring sink evicted the parent): the child
    // must still analyse, anchored at its own timestamps.
    let jsonl = [
        r#"{"seq":0,"kind":"span_start","domain":"market","name":"child","span":77309411329,"trace":424242,"parent":999999999,"sim_us":50}"#,
        r#"{"seq":1,"kind":"point","domain":"market","name":"step","span":0,"trace":424242,"parent":77309411329,"sim_us":60}"#,
        r#"{"seq":2,"kind":"span_end","domain":"market","name":"child","span":77309411329,"trace":424242,"parent":999999999,"sim_us":80}"#,
    ]
    .join("\n");
    let (d1, d2) = analyse_twice(&jsonl);
    assert_eq!(d1, d2, "orphan-parent digest must be stable");
    let a = TraceAnalysis::from_jsonl(&jsonl);
    assert_eq!(a.events, 3);
    assert_eq!(a.spans.len(), 1, "the orphaned child span itself exists");
    let span = a.spans.values().next().unwrap();
    assert_eq!(span.name, "child");
    assert_eq!(
        span.parent, 999999999,
        "the dangling parent id is preserved, not repaired"
    );
}

#[test]
fn degenerate_inputs_differ_in_digest() {
    // Stability is only meaningful if the digest also *separates*
    // different degenerate inputs.
    let single = r#"{"seq":0,"kind":"point","domain":"a","name":"x","span":0,"trace":0,"parent":0,"sim_us":1}"#;
    let a = TraceAnalysis::from_jsonl("");
    let b = TraceAnalysis::from_jsonl(single);
    assert_ne!(a.report_digest(), b.report_digest());
}
