//! `Event::to_json` round-trip coverage: every [`Value`] variant —
//! including strings that exercise the full JSON escape table — must
//! survive serialize → parse → re-serialize byte-identically, and every
//! line a JSONL sink writes must parse back as a structurally valid
//! event.
//!
//! The fuzz is seeded and deterministic (xorshift over a fixed seed), so
//! a failure is a unit-test failure, not a flake.

use pds2_obs as obs;
use pds2_obs::report::RawEvent;
use pds2_obs::{SinkKind, Stamp, Value};

/// xorshift64*: tiny deterministic generator, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Strings that hit every branch of the JSON escape table: quotes,
/// backslashes, the named control escapes, raw control bytes (\u00XX),
/// multi-byte UTF-8 and the empty string.
fn nasty_strings() -> Vec<String> {
    vec![
        String::new(),
        "plain".into(),
        "with \"quotes\" inside".into(),
        "back\\slash \\\" mix".into(),
        "newline\nand\ttab\rand\x0c\x08".into(),
        "\u{0}\u{1}\u{1f}".into(),
        "unicode: καλημέρα κόσμε ✓ 🦀".into(),
        "json-ish: {\"k\":[1,2]}".into(),
        "trailing backslash \\".into(),
    ]
}

fn random_value(rng: &mut Rng, strings: &[String]) -> Value {
    match rng.next() % 6 {
        0 => Value::U64(rng.next()),
        1 => Value::U128((rng.next() as u128) << 64 | rng.next() as u128),
        2 => Value::I64(rng.next() as i64),
        3 => {
            // Finite floats only here; non-finite are covered separately.
            let f = (rng.next() as i64 as f64) / ((rng.next() % 1000 + 1) as f64);
            Value::F64(f)
        }
        4 => Value::F64((rng.next() % 1_000_000) as f64), // integral float
        _ => Value::Str(strings[(rng.next() as usize) % strings.len()].clone()),
    }
}

fn random_stamp(rng: &mut Rng) -> Stamp {
    match rng.next() % 4 {
        0 => Stamp::None,
        1 => Stamp::Sim(rng.next()),
        2 => Stamp::Block(rng.next() % 1_000_000),
        _ => Stamp::Round(rng.next() % 10_000),
    }
}

/// 500 random events over all Value variants: `to_json` must parse back
/// and re-render byte-identically (the canonicalization fixed point).
#[test]
fn to_json_roundtrips_all_value_variants() {
    let _g = obs::test_lock();
    let strings = nasty_strings();
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let cap = obs::capture(SinkKind::Ring(4096));
    for i in 0..500u64 {
        let n_fields = (rng.next() % 5) as usize;
        let fields: Vec<(&'static str, Value)> = (0..n_fields)
            .map(|j| {
                let key: &'static str = ["a", "b", "c", "d", "e"][j];
                (key, random_value(&mut rng, &strings))
            })
            .collect();
        match i % 3 {
            0 => obs::emit("fuzz", "point", random_stamp(&mut rng), fields),
            1 => {
                let s = obs::span("fuzz", "spanned", random_stamp(&mut rng));
                s.finish(random_stamp(&mut rng), fields);
            }
            _ => {
                let root = obs::new_trace("fuzz", "rooted", random_stamp(&mut rng), fields);
                obs::trace_event!("fuzz", "child", Stamp::Sim(i), root.ctx(), "i" => i);
                root.finish(Stamp::Sim(i + 1), Vec::new());
            }
        }
    }
    let report = cap.finish();
    assert!(report.events >= 500);
    for event in &report.entries {
        let line = event.to_json();
        let parsed =
            RawEvent::parse_json_line(&line).unwrap_or_else(|| panic!("line must parse: {line}"));
        assert_eq!(
            parsed.to_json(),
            line,
            "parse→render must be the identity on sink output"
        );
        assert_eq!(parsed.span, event.span);
        assert_eq!(parsed.trace, event.trace);
        assert_eq!(parsed.parent, event.parent);
        assert_eq!(parsed.fields.len(), event.fields.len());
    }
}

/// Non-finite floats serialize as quoted strings (JSON has no NaN/inf
/// literal) and still round-trip through the parser.
#[test]
fn non_finite_floats_survive_as_strings() {
    let _g = obs::test_lock();
    let cap = obs::capture(SinkKind::Ring(64));
    obs::emit(
        "fuzz",
        "weird",
        Stamp::Sim(1),
        vec![
            ("nan", Value::F64(f64::NAN)),
            ("inf", Value::F64(f64::INFINITY)),
            ("ninf", Value::F64(f64::NEG_INFINITY)),
        ],
    );
    let report = cap.finish();
    let line = report.entries[0].to_json();
    let parsed = RawEvent::parse_json_line(&line).expect("parses");
    assert_eq!(parsed.to_json(), line);
    assert_eq!(parsed.fields.len(), 3);
}

/// Every line the JSONL sink writes is one complete, parseable event —
/// no interleaving, no partial lines, no escape leaks — and the parsed
/// stream carries the same seq sequence the ring capture saw.
#[test]
fn jsonl_sink_lines_are_individually_valid() {
    let _g = obs::test_lock();
    let strings = nasty_strings();
    let run = |strings: &[String]| {
        for (i, s) in strings.iter().enumerate() {
            obs::event!(
                "fuzz",
                "line",
                Stamp::Sim(i as u64),
                "s" => s.clone(),
                "i" => i as u64,
            );
        }
        let span = obs::span("fuzz", "wrap", Stamp::Sim(99));
        span.finish(
            Stamp::Sim(100),
            vec![("s", Value::from(strings[4].clone()))],
        );
    };

    let cap = obs::capture(SinkKind::Ring(1024));
    run(&strings);
    let ring = cap.finish();

    let path = std::env::temp_dir().join("pds2_obs_jsonl_validity.jsonl");
    let cap = obs::capture(SinkKind::Jsonl(path.clone()));
    run(&strings);
    let jsonl = cap.finish();
    let body = std::fs::read_to_string(&path).expect("sink wrote file");
    std::fs::remove_file(&path).ok();

    assert_eq!(ring.digest, jsonl.digest);
    // Checkpoint / trailer rows are metadata, not events: they carry no
    // "seq" key, so RawEvent parsing skips them by construction.
    let lines: Vec<&str> = body
        .lines()
        .filter(|l| !l.starts_with("{\"checkpoint\"") && !l.starts_with("{\"segment_root\""))
        .collect();
    assert_eq!(lines.len() as u64, jsonl.events, "one event line per event");
    for (line, expect) in lines.iter().zip(&ring.entries) {
        let parsed =
            RawEvent::parse_json_line(line).unwrap_or_else(|| panic!("invalid line: {line}"));
        assert_eq!(parsed.seq, expect.seq);
        assert_eq!(parsed.domain, expect.domain);
        assert_eq!(parsed.name, expect.name);
        // The file line must equal the in-memory event's serialization.
        assert_eq!(*line, expect.to_json());
    }
}
