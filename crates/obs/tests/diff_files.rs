//! File-backed divergence forensics: `diff::diff_files` must localize
//! a planted single-event delta between two JSONL captures to the
//! exact first divergent `seq`, reading only O(n/segment + segment)
//! event bodies, and must short-circuit identical files on checkpoints
//! alone.

use pds2_obs as obs;
use pds2_obs::diff::{self, Verdict};
use pds2_obs::{SinkKind, Stamp};
use std::path::Path;

fn capture_to(path: &Path, n: u64, intruder_at: Option<u64>) -> obs::CaptureSummary {
    let cap = obs::capture(SinkKind::Jsonl(path.to_path_buf()));
    for i in 0..n {
        obs::event!("chain", "tick", Stamp::Sim(i * 10), "i" => i);
        if Some(i) == intruder_at {
            obs::event!("net", "intruder", Stamp::Sim(i * 10));
        }
    }
    cap.finish()
}

#[test]
fn planted_delta_localized_to_exact_seq_with_bounded_reads() {
    let _g = obs::test_lock();
    let dir = std::env::temp_dir();
    let pa = dir.join("pds2_diff_a.jsonl");
    let pb = dir.join("pds2_diff_b.jsonl");
    // ~8 segments of events; the intruder lands in segment 6.
    let n = 8 * obs::SEGMENT_EVENTS + 100;
    let plant = 6 * obs::SEGMENT_EVENTS + 321;
    let a = capture_to(&pa, n, None);
    let b = capture_to(&pb, n, Some(plant));
    assert_ne!(a.digest, b.digest, "planted delta must change the digest");
    assert_eq!(a.segments.len(), 9, "8 full segments + 1 partial");

    let report = diff::diff_files(&pa, &pb, 3).expect("diff runs");
    // The intruder is emitted after event `plant`, so the first
    // divergent stream position is seq plant + 1.
    match &report.verdict {
        Verdict::DivergesAt {
            seq,
            segment,
            domain_a,
            name_a,
            domain_b,
            name_b,
        } => {
            assert_eq!(*seq, plant + 1, "exact first divergent seq");
            assert_eq!(*segment, 6, "divergence localized to its segment");
            assert_eq!((domain_a.as_str(), name_a.as_str()), ("chain", "tick"));
            assert_eq!((domain_b.as_str(), name_b.as_str()), ("net", "intruder"));
        }
        v => panic!("expected DivergesAt, got {v:?}"),
    }
    assert_eq!(report.classification, "cross-domain");
    assert!(report.bisected, "checkpointed files must bisect");
    // Bisection cost bound: only the divergent segment's bodies (both
    // sides) plus the context margin may be materialized.
    let bound = 2 * (obs::SEGMENT_EVENTS + 2 * 3 + 2);
    assert!(
        report.bodies_read <= bound,
        "bodies_read {} exceeds one-segment bound {bound}",
        report.bodies_read
    );
    assert!(
        report.checkpoints_compared as usize <= 2 + a.segments.len().ilog2() as usize + 1,
        "checkpoint compares must be logarithmic, got {}",
        report.checkpoints_compared
    );
    assert!(!report.context.is_empty(), "context window reported");
    assert!(report.to_json().contains("\"verdict\":\"diverges\""));

    // Identical captures: zero event bodies read.
    let pc = dir.join("pds2_diff_c.jsonl");
    let c = capture_to(&pc, n, None);
    assert_eq!(a.digest, c.digest);
    let same = diff::diff_files(&pa, &pc, 3).expect("diff runs");
    assert!(same.identical(), "{:?}", same.verdict);
    assert_eq!(same.bodies_read, 0, "identical files need no event bodies");

    // Strict prefix: B stops early, no event conflicts.
    let pd = dir.join("pds2_diff_d.jsonl");
    let d = capture_to(&pd, n / 2, None);
    assert!(!d.segments.is_empty());
    let prefix = diff::diff_files(&pa, &pd, 3).expect("diff runs");
    match &prefix.verdict {
        Verdict::PrefixOf {
            shorter,
            common_events,
        } => {
            assert!(shorter.ends_with("pds2_diff_d.jsonl"));
            assert_eq!(*common_events, n / 2);
        }
        v => panic!("expected PrefixOf, got {v:?}"),
    }

    for p in [pa, pb, pc, pd] {
        std::fs::remove_file(p).ok();
    }
}
