//! Deterministic span/event collector with a replay-checkable digest.
//!
//! One process-global collector guards a running SHA-256 chain: at
//! capture start the digest is seeded with a domain-separation tag,
//! and every event folds in as `d' = H(d ‖ encode(event))` where
//! `encode` is a canonical length-prefixed binary form (never the JSON
//! rendering). Event timestamps are [`Stamp`]s — simulated time, block
//! height or learning round — so the chain commits only to *logical*
//! behaviour and is bit-identical across reruns and `PDS2_THREADS`.

use crate::sink::{escape_json, ActiveSink, SinkKind};
use parking_lot::{Mutex, MutexGuard};
use pds2_crypto::sha256::{sha256_pair, Digest, Sha256};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Logical timestamp of an event. Never the wall clock: wall time
/// would make every trace digest unique and the layer useless for
/// run-to-run diffing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stamp {
    /// No meaningful time axis (pure state transitions).
    None,
    /// Simulated microseconds from the discrete-event net simulator.
    Sim(u64),
    /// Governance-chain block height.
    Block(u64),
    /// Learning round (gossip eval index, FedAvg round, …).
    Round(u64),
}

/// Typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Wide unsigned integer (token amounts are `u128`).
    U128(u128),
    /// Signed integer.
    I64(i64),
    /// Float; digested by IEEE-754 bit pattern, so NaN payloads and
    /// signed zeros are committed to exactly.
    F64(f64),
    /// Short label (contract phase names, message kinds, …).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u128> for Value {
    fn from(v: u128) -> Value {
        Value::U128(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Whether an event is a point or a span boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Standalone occurrence.
    Point,
    /// Span opened.
    SpanStart,
    /// Span closed.
    SpanEnd,
}

/// Causal context: which trace a unit of work belongs to and which span
/// caused it (Dapper/X-Trace style, in logical time).
///
/// A context is *minted* exactly where a workload enters the system —
/// contract/tx submission ([`new_trace`] via the chain) or a learning
/// experiment start — and *propagated* everywhere else: inside simulated
/// network envelopes, through block production/validation, and down the
/// marketplace lifecycle. `trace_id` is the span id of the trace's root
/// span, so ids stay deterministic and domain-separated; `parent_span`
/// is the span that causally produced the present work. The zero
/// context ([`TraceCtx::NONE`]) means "untraced": spans opened under it
/// still record start/end events but join no DAG.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Id of the trace (the root span's id), or 0 for untraced work.
    pub trace_id: u64,
    /// Span that causally precedes this work, or 0.
    pub parent_span: u64,
}

impl TraceCtx {
    /// The untraced context.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
    };

    /// Whether this context carries no trace.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Position in the capture's event stream (0-based).
    pub seq: u64,
    /// Point / span-start / span-end.
    pub kind: EventKind,
    /// Subsystem (`"chain"`, `"net"`, `"market"`, `"learning"`, …).
    pub domain: &'static str,
    /// Event name within the domain.
    pub name: &'static str,
    /// Owning span id, or 0 for free-standing points.
    pub span: u64,
    /// Trace this event belongs to (root span id), or 0 if untraced.
    pub trace: u64,
    /// Causal parent span, or 0 (roots and untraced events).
    pub parent: u64,
    /// Logical timestamp.
    pub stamp: Stamp,
    /// Typed payload fields, in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Canonical binary form folded into the trace digest:
    /// length-prefixed, little-endian, tag bytes for every variant.
    /// The JSON rendering is *not* digested, so cosmetic JSONL changes
    /// can never silently change digests.
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(match self.kind {
            EventKind::Point => 0,
            EventKind::SpanStart => 1,
            EventKind::SpanEnd => 2,
        });
        out.push(self.domain.len() as u8);
        out.extend_from_slice(self.domain.as_bytes());
        out.push(self.name.len() as u8);
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.span.to_le_bytes());
        out.extend_from_slice(&self.trace.to_le_bytes());
        out.extend_from_slice(&self.parent.to_le_bytes());
        let (tag, t) = match self.stamp {
            Stamp::None => (0u8, 0u64),
            Stamp::Sim(t) => (1, t),
            Stamp::Block(h) => (2, h),
            Stamp::Round(r) => (3, r),
        };
        out.push(tag);
        out.extend_from_slice(&t.to_le_bytes());
        out.push(self.fields.len() as u8);
        for (key, value) in &self.fields {
            out.push(key.len() as u8);
            out.extend_from_slice(key.as_bytes());
            match value {
                Value::U64(v) => {
                    out.push(0);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Value::U128(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Value::I64(v) => {
                    out.push(2);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Value::F64(v) => {
                    out.push(3);
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    out.push(4);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }

    /// One-line JSON object (the JSONL sink's row format).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"domain\":\"{}\",\"name\":\"{}\"",
            self.seq,
            match self.kind {
                EventKind::Point => "point",
                EventKind::SpanStart => "span_start",
                EventKind::SpanEnd => "span_end",
            },
            self.domain,
            self.name
        ));
        if self.span != 0 {
            s.push_str(&format!(",\"span\":{}", self.span));
        }
        if self.trace != 0 {
            s.push_str(&format!(",\"trace\":{}", self.trace));
        }
        if self.parent != 0 {
            s.push_str(&format!(",\"parent\":{}", self.parent));
        }
        match self.stamp {
            Stamp::None => {}
            Stamp::Sim(t) => s.push_str(&format!(",\"sim_us\":{t}")),
            Stamp::Block(h) => s.push_str(&format!(",\"block\":{h}")),
            Stamp::Round(r) => s.push_str(&format!(",\"round\":{r}")),
        }
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (key, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                escape_json(key, &mut s);
                s.push_str("\":");
                match value {
                    Value::U64(v) => s.push_str(&v.to_string()),
                    Value::U128(v) => s.push_str(&v.to_string()),
                    Value::I64(v) => s.push_str(&v.to_string()),
                    Value::F64(v) => {
                        if v.is_finite() {
                            s.push_str(&format!("{v}"));
                        } else {
                            s.push_str(&format!("\"{v}\""));
                        }
                    }
                    Value::Str(v) => {
                        s.push('"');
                        escape_json(v, &mut s);
                        s.push('"');
                    }
                }
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Number of events per digest segment. Small enough that diffing one
/// segment is cheap; large enough that the checkpoint list stays tiny
/// (a 1M-event capture produces ~1000 checkpoints).
pub const SEGMENT_EVENTS: u64 = 1024;

/// Digest checkpoint covering one fixed-size slice of the event stream.
///
/// In addition to the capture-wide running digest, the collector folds
/// every event into a *per-segment* digest that restarts each
/// [`SEGMENT_EVENTS`] events. Each closed segment also extends a chain
/// `chained_i = H(chained_{i-1} ‖ digest_i)`, so two captures can be
/// bisected to their first divergent segment by comparing `chained`
/// values — O(log n) digest compares, no event bodies — and then only
/// that segment's events need inspecting (`crate::diff`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentCheckpoint {
    /// 0-based segment index.
    pub index: u64,
    /// First event `seq` the segment covers.
    pub start_seq: u64,
    /// Last event `seq` the segment covers (inclusive).
    pub end_seq: u64,
    /// Digest of this segment's events alone (seeded per index).
    pub digest: Digest,
    /// Chained digest over all segments up to and including this one.
    pub chained: Digest,
}

impl SegmentCheckpoint {
    /// One-line JSON object (the JSONL sink's checkpoint row). The
    /// leading `"checkpoint"` key distinguishes these rows from event
    /// rows; `crate::report` skips them, `crate::diff` parses them.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"checkpoint\":{},\"start_seq\":{},\"end_seq\":{},\"digest\":\"{}\",\"chained\":\"{}\"}}",
            self.index,
            self.start_seq,
            self.end_seq,
            self.digest.to_hex(),
            self.chained.to_hex()
        )
    }
}

/// Merkle root over segment digests (duplicate-last padding on odd
/// levels; [`Digest::ZERO`] for an empty capture). A future committee
/// checkpoint can commit to this root and let a fraud prover open a
/// single divergent segment with an O(log n) branch (ROADMAP item 1).
pub fn segment_merkle_root(segments: &[SegmentCheckpoint]) -> Digest {
    if segments.is_empty() {
        return Digest::ZERO;
    }
    let mut level: Vec<Digest> = segments.iter().map(|s| s.digest).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let right = if pair.len() == 2 { &pair[1] } else { &pair[0] };
            next.push(sha256_pair(pair[0].as_bytes(), right.as_bytes()));
        }
        level = next;
    }
    level[0]
}

struct Collector {
    active: Option<ActiveSink>,
    digest: Digest,
    last_digest: Digest,
    seq: u64,
    /// Next span sequence number per 32-bit domain hash; reset at
    /// capture start so span ids are identical across reruns.
    span_seqs: HashMap<u32, u32>,
    /// Running digest of the *current* segment's events.
    seg_digest: Digest,
    /// First `seq` of the current segment.
    seg_start: u64,
    /// Chained digest over all closed segments.
    chained: Digest,
    /// Checkpoints of the closed segments, in order.
    segments: Vec<SegmentCheckpoint>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

fn collector() -> &'static Mutex<Collector> {
    COLLECTOR.get_or_init(|| {
        Mutex::new(Collector {
            active: None,
            digest: Digest::ZERO,
            last_digest: Digest::ZERO,
            seq: 0,
            span_seqs: HashMap::new(),
            seg_digest: Digest::ZERO,
            seg_start: 0,
            chained: Digest::ZERO,
            segments: Vec::new(),
        })
    })
}

fn seed_digest() -> Digest {
    let mut h = Sha256::new();
    h.update(b"pds2-obs-trace-v1");
    h.finalize()
}

/// Seed of segment `index`'s digest: domain-separated from the trace
/// digest and bound to the index, so identical event slices at
/// different positions can never produce equal segment digests.
fn segment_seed(index: u64) -> Digest {
    let mut h = Sha256::new();
    h.update(b"pds2-obs-segment-v1");
    h.update(&index.to_le_bytes());
    h.finalize()
}

fn chain_seed() -> Digest {
    let mut h = Sha256::new();
    h.update(b"pds2-obs-segchain-v1");
    h.finalize()
}

/// FNV-1a 32-bit hash; picks the high half of span ids so ids from
/// different subsystems can never collide.
fn domain_hash(domain: &str) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for b in domain.as_bytes() {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    // Never 0: span id 0 means "no span".
    h.max(1)
}

/// Whether a capture is active. One relaxed atomic load — the whole
/// cost of the layer when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn fold(col: &mut Collector, event: &Event) {
    let mut bytes = Vec::with_capacity(96);
    event.encode(&mut bytes);
    let mut h = Sha256::new();
    h.update(col.digest.as_bytes());
    h.update(&bytes);
    col.digest = h.finalize();
    let mut h = Sha256::new();
    h.update(col.seg_digest.as_bytes());
    h.update(&bytes);
    col.seg_digest = h.finalize();
    if let Some(sink) = col.active.as_mut() {
        sink.record(event);
    }
}

/// Closes the current segment: chains its digest, records the
/// checkpoint (the JSONL sink writes a checkpoint row — *not* folded
/// into any digest, so sinks stay digest-invariant) and reseeds the
/// per-segment digest for the next slice.
fn close_segment(col: &mut Collector) {
    let index = col.segments.len() as u64;
    let mut h = Sha256::new();
    h.update(col.chained.as_bytes());
    h.update(col.seg_digest.as_bytes());
    let chained = h.finalize();
    let cp = SegmentCheckpoint {
        index,
        start_seq: col.seg_start,
        end_seq: col.seq - 1,
        digest: col.seg_digest,
        chained,
    };
    if let Some(sink) = col.active.as_mut() {
        sink.record_checkpoint(&cp);
    }
    col.chained = chained;
    col.segments.push(cp);
    col.seg_digest = segment_seed(index + 1);
    col.seg_start = col.seq;
}

/// (span, trace, parent) id triple of one event.
#[derive(Clone, Copy)]
struct Ids {
    span: u64,
    trace: u64,
    parent: u64,
}

fn emit_locked(
    col: &mut Collector,
    kind: EventKind,
    domain: &'static str,
    name: &'static str,
    ids: Ids,
    stamp: Stamp,
    fields: Vec<(&'static str, Value)>,
) {
    if col.active.is_none() {
        return;
    }
    let event = Event {
        seq: col.seq,
        kind,
        domain,
        name,
        span: ids.span,
        trace: ids.trace,
        parent: ids.parent,
        stamp,
        fields,
    };
    col.seq += 1;
    fold(col, &event);
    if col.seq - col.seg_start >= SEGMENT_EVENTS {
        close_segment(col);
    }
}

/// Records a point event. Prefer the [`event!`](crate::event!) macro,
/// which skips field construction when tracing is disabled.
pub fn emit(
    domain: &'static str,
    name: &'static str,
    stamp: Stamp,
    fields: Vec<(&'static str, Value)>,
) {
    emit_traced(domain, name, stamp, TraceCtx::NONE, fields);
}

/// Records a point event attached to a causal context: the event joins
/// `ctx`'s trace as a zero-duration child of `ctx.parent_span`. With
/// [`TraceCtx::NONE`] this degrades to a free-standing point. Prefer
/// the [`trace_event!`](crate::trace_event!) macro, which skips field
/// construction when tracing is disabled.
pub fn emit_traced(
    domain: &'static str,
    name: &'static str,
    stamp: Stamp,
    ctx: TraceCtx,
    fields: Vec<(&'static str, Value)>,
) {
    if !enabled() {
        return;
    }
    let ids = Ids {
        span: 0,
        trace: ctx.trace_id,
        parent: if ctx.is_none() { 0 } else { ctx.parent_span },
    };
    let mut col = collector().lock();
    emit_locked(&mut col, EventKind::Point, domain, name, ids, stamp, fields);
}

/// An open span. Close it with [`Span::finish`] to attach result
/// fields; dropping it closes with no fields.
#[must_use = "a span closes when dropped; hold it for the spanned region"]
pub struct Span {
    id: u64,
    trace: u64,
    parent: u64,
    domain: &'static str,
    name: &'static str,
    open: bool,
}

impl Span {
    /// The span's id (0 when tracing was disabled at open).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The causal context to hand to work this span causes: children
    /// opened (or events emitted) under it join this span's trace with
    /// this span as their parent. [`TraceCtx::NONE`] for untraced or
    /// inert spans.
    pub fn ctx(&self) -> TraceCtx {
        if self.trace == 0 {
            TraceCtx::NONE
        } else {
            TraceCtx {
                trace_id: self.trace,
                parent_span: self.id,
            }
        }
    }

    /// Closes the span with an explicit stamp and result fields.
    pub fn finish(mut self, stamp: Stamp, fields: Vec<(&'static str, Value)>) {
        self.close(stamp, fields);
    }

    fn close(&mut self, stamp: Stamp, fields: Vec<(&'static str, Value)>) {
        if !self.open {
            return;
        }
        self.open = false;
        if self.id == 0 || !enabled() {
            return;
        }
        let mut col = collector().lock();
        emit_locked(
            &mut col,
            EventKind::SpanEnd,
            self.domain,
            self.name,
            Ids {
                span: self.id,
                trace: self.trace,
                parent: self.parent,
            },
            stamp,
            fields,
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close(Stamp::None, Vec::new());
    }
}

fn inert_span(domain: &'static str, name: &'static str) -> Span {
    Span {
        id: 0,
        trace: 0,
        parent: 0,
        domain,
        name,
        open: false,
    }
}

fn open_span(
    domain: &'static str,
    name: &'static str,
    stamp: Stamp,
    ctx: TraceCtx,
    root: bool,
    fields: Vec<(&'static str, Value)>,
) -> Span {
    if !enabled() {
        return inert_span(domain, name);
    }
    let mut col = collector().lock();
    if col.active.is_none() {
        return inert_span(domain, name);
    }
    let dh = domain_hash(domain);
    let seq = col.span_seqs.entry(dh).or_insert(0);
    *seq += 1;
    let id = ((dh as u64) << 32) | (*seq as u64);
    let (trace, parent) = if root {
        (id, 0)
    } else if ctx.is_none() {
        (0, 0)
    } else {
        (ctx.trace_id, ctx.parent_span)
    };
    emit_locked(
        &mut col,
        EventKind::SpanStart,
        domain,
        name,
        Ids {
            span: id,
            trace,
            parent,
        },
        stamp,
        fields,
    );
    Span {
        id,
        trace,
        parent,
        domain,
        name,
        open: true,
    }
}

/// Opens an *untraced* span: allocates a domain-separated id and
/// records a span-start event, but joins no causal DAG. When tracing
/// is disabled the span is inert (id 0, no events on close).
pub fn span(domain: &'static str, name: &'static str, stamp: Stamp) -> Span {
    open_span(domain, name, stamp, TraceCtx::NONE, false, Vec::new())
}

/// Opens a span as a causal child of `ctx` (with start fields). Under
/// [`TraceCtx::NONE`] this behaves like [`span`] plus start fields —
/// propagation code can thread a maybe-empty context without
/// branching. Hand [`Span::ctx`] to everything this span causes.
pub fn span_traced(
    domain: &'static str,
    name: &'static str,
    stamp: Stamp,
    ctx: TraceCtx,
    fields: Vec<(&'static str, Value)>,
) -> Span {
    open_span(domain, name, stamp, ctx, false, fields)
}

/// Mints a new trace: opens a root span whose id becomes the trace id.
/// Call this exactly where a workload enters the system (tx submission,
/// workload submission, experiment start); everything caused by it
/// should be threaded [`Span::ctx`]. Inert when tracing is disabled.
pub fn new_trace(
    domain: &'static str,
    name: &'static str,
    stamp: Stamp,
    fields: Vec<(&'static str, Value)>,
) -> Span {
    open_span(domain, name, stamp, TraceCtx::NONE, true, fields)
}

/// Live handle to an active capture; [`finish`](Capture::finish) it to
/// get the [`TraceReport`]. Dropping without finishing still closes
/// the capture (report discarded).
pub struct Capture {
    finished: bool,
}

/// What a finished capture produced.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Hex SHA-256 digest of the canonical event stream. Equal digests
    /// ⇔ bit-identical traces.
    pub digest: String,
    /// Total events recorded (including any the ring evicted).
    pub events: u64,
    /// Retained events (ring sink only; newest-last).
    pub entries: Vec<Event>,
    /// Events the ring evicted to stay within capacity.
    pub evicted: u64,
    /// The JSONL file written (JSONL sink only).
    pub path: Option<PathBuf>,
    /// Digest checkpoints, one per [`SEGMENT_EVENTS`]-event slice (the
    /// last may be partial). Equal chained tails ⇔ equal prefixes;
    /// bisect them with [`crate::diff`] to localize a divergence.
    pub segments: Vec<SegmentCheckpoint>,
    /// Hex Merkle root over the segment digests
    /// ([`segment_merkle_root`]); all-zero hex for an empty capture.
    pub segment_root: String,
}

/// Starts a capture with the given sink. Panics if one is already
/// active — captures are process-global, so tests must serialize via
/// [`test_lock`].
pub fn capture(kind: SinkKind) -> Capture {
    let mut col = collector().lock();
    assert!(
        col.active.is_none(),
        "pds2-obs capture already active; serialize tests with obs::test_lock()"
    );
    let sink = ActiveSink::open(kind).expect("opening obs sink");
    col.active = Some(sink);
    col.digest = seed_digest();
    col.seq = 0;
    col.span_seqs.clear();
    col.seg_digest = segment_seed(0);
    col.seg_start = 0;
    col.chained = chain_seed();
    col.segments.clear();
    ENABLED.store(true, Ordering::Relaxed);
    Capture { finished: false }
}

fn finish_locked(col: &mut Collector) -> TraceReport {
    ENABLED.store(false, Ordering::Relaxed);
    if col.seq > col.seg_start {
        // Flush the trailing partial segment so the checkpoint list
        // covers every event.
        close_segment(col);
    }
    let root = segment_merkle_root(&col.segments);
    if let Some(sink) = col.active.as_mut() {
        sink.record_trailer(&col.segments, root, &col.digest);
    }
    let (entries, evicted, path) = col
        .active
        .take()
        .expect("finish called with no active capture")
        .close();
    col.last_digest = col.digest;
    TraceReport {
        digest: col.digest.to_hex(),
        events: col.seq,
        entries,
        evicted,
        path,
        segments: std::mem::take(&mut col.segments),
        segment_root: root.to_hex(),
    }
}

impl Capture {
    /// Ends the capture and returns digest, event count, and whatever
    /// the sink retained.
    pub fn finish(mut self) -> TraceReport {
        self.finished = true;
        let mut col = collector().lock();
        finish_locked(&mut col)
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        if !self.finished {
            let mut col = collector().lock();
            if col.active.is_some() {
                finish_locked(&mut col);
            }
        }
    }
}

/// Hex digest of the active capture's event stream so far, or of the
/// most recently finished capture. Two runs behaved identically
/// (as far as their instrumentation can see) iff these strings match.
pub fn trace_digest() -> String {
    let col = collector().lock();
    if col.active.is_some() {
        col.digest.to_hex()
    } else {
        col.last_digest.to_hex()
    }
}

/// Global lock for tests that assert counter deltas or trace digests.
/// The registry and collector are process-global, so concurrent tests
/// in one binary would otherwise interleave increments and captures.
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.get_or_init(|| Mutex::new(())).lock()
}
