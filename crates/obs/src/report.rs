//! Offline trace analysis: causal-DAG reconstruction and
//! critical-path profiling over a finished capture.
//!
//! A capture (ring entries or a JSONL file) is a flat, seq-ordered
//! stream of events that carry `span`/`trace`/`parent` ids. This module
//! rebuilds the causal DAG those ids describe and computes the numbers
//! an operator actually wants from a lifecycle run:
//!
//! - the **critical path** of each trace in simulated microseconds
//!   (greedy latest-finisher descent from the root, deterministic
//!   tie-breaking by event seq);
//! - a **per-domain** total/self time breakdown;
//! - **per-hop network latency** from `net/deliver` spans (`sent_us`
//!   field vs delivery stamp);
//! - **blocks-to-inclusion** and **submit-to-payout** distributions;
//! - **folded stacks** (flamegraph collapse format) keyed by span
//!   ancestry, weighted by self time.
//!
//! Everything is computed in *logical* time (see [`Stamp`]): simulated
//! microseconds directly, block heights and learning rounds scaled by
//! fixed factors ([`SIM_US_PER_BLOCK`], [`SIM_US_PER_ROUND`]). All
//! intermediate collections are ordered (`BTreeMap`, seq-sorted
//! vectors) and ties break on seq, so [`TraceAnalysis::render_text`]
//! and [`TraceAnalysis::report_digest`] are bit-identical across
//! reruns, `PDS2_THREADS`, and ring-vs-JSONL capture of the same run.

use crate::metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use crate::sink::escape_json;
use crate::trace::{Event, EventKind, Stamp, Value};
use pds2_crypto::sha256::Sha256;
use std::collections::BTreeMap;

/// Logical microseconds assigned to one block height when mapping
/// [`Stamp::Block`] onto the simulated-time axis (the default
/// `ChainConfig::block_interval_secs` of 12 s).
pub const SIM_US_PER_BLOCK: u64 = 12_000_000;

/// Logical microseconds assigned to one learning round when mapping
/// [`Stamp::Round`] onto the simulated-time axis.
pub const SIM_US_PER_ROUND: u64 = 1_000_000;

/// Field value as recovered from a capture. Numbers keep full integer
/// precision (`u128`/`i128`) — span and trace ids exceed 2^53, so
/// routing them through `f64` would corrupt them.
#[derive(Clone, Debug, PartialEq)]
pub enum RawValue {
    /// Non-negative integer.
    U(u128),
    /// Negative integer.
    I(i128),
    /// Float (finite; non-finite floats are JSONL-quoted and come back
    /// as strings).
    F(f64),
    /// String.
    S(String),
}

impl RawValue {
    fn render_json(&self, out: &mut String) {
        match self {
            RawValue::U(v) => out.push_str(&v.to_string()),
            RawValue::I(v) => out.push_str(&v.to_string()),
            RawValue::F(v) => out.push_str(&format!("{v}")),
            RawValue::S(v) => {
                out.push('"');
                escape_json(v, out);
                out.push('"');
            }
        }
    }
}

impl From<&Value> for RawValue {
    fn from(v: &Value) -> RawValue {
        match v {
            Value::U64(v) => RawValue::U(*v as u128),
            Value::U128(v) => RawValue::U(*v),
            Value::I64(v) if *v < 0 => RawValue::I(*v as i128),
            Value::I64(v) => RawValue::U(*v as u128),
            Value::F64(v) if v.is_finite() => {
                // Mirror `Event::to_json`: integral floats print as
                // integers, so they come back as integers.
                let s = format!("{v}");
                match s.parse::<u128>() {
                    Ok(u) => RawValue::U(u),
                    Err(_) => match s.parse::<i128>() {
                        Ok(i) => RawValue::I(i),
                        Err(_) => RawValue::F(*v),
                    },
                }
            }
            Value::F64(v) => RawValue::S(format!("{v}")),
            Value::Str(s) => RawValue::S(s.clone()),
        }
    }
}

/// One event as recovered from a capture (owned strings — JSONL rows
/// have no `&'static` interned names).
#[derive(Clone, Debug, PartialEq)]
pub struct RawEvent {
    /// Position in the capture's stream.
    pub seq: u64,
    /// Point / span-start / span-end.
    pub kind: EventKind,
    /// Subsystem.
    pub domain: String,
    /// Event name.
    pub name: String,
    /// Owning span id (0 = free-standing).
    pub span: u64,
    /// Trace id (0 = untraced).
    pub trace: u64,
    /// Causal parent span id (0 = root/untraced).
    pub parent: u64,
    /// Logical timestamp.
    pub stamp: Stamp,
    /// Payload fields in emission order.
    pub fields: Vec<(String, RawValue)>,
}

impl From<&Event> for RawEvent {
    fn from(e: &Event) -> RawEvent {
        RawEvent {
            seq: e.seq,
            kind: e.kind,
            domain: e.domain.to_string(),
            name: e.name.to_string(),
            span: e.span,
            trace: e.trace,
            parent: e.parent,
            stamp: e.stamp,
            fields: e
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), RawValue::from(v)))
                .collect(),
        }
    }
}

impl RawEvent {
    /// Re-renders the event in the JSONL row format. For any line
    /// produced by [`Event::to_json`], `parse → to_json` reproduces the
    /// line byte-for-byte (asserted by the round-trip tests), which is
    /// what makes ring- and JSONL-sourced analyses agree.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"seq\":{},\"kind\":\"{}\",\"domain\":\"{}\",\"name\":\"{}\"",
            self.seq,
            match self.kind {
                EventKind::Point => "point",
                EventKind::SpanStart => "span_start",
                EventKind::SpanEnd => "span_end",
            },
            self.domain,
            self.name
        ));
        if self.span != 0 {
            s.push_str(&format!(",\"span\":{}", self.span));
        }
        if self.trace != 0 {
            s.push_str(&format!(",\"trace\":{}", self.trace));
        }
        if self.parent != 0 {
            s.push_str(&format!(",\"parent\":{}", self.parent));
        }
        match self.stamp {
            Stamp::None => {}
            Stamp::Sim(t) => s.push_str(&format!(",\"sim_us\":{t}")),
            Stamp::Block(h) => s.push_str(&format!(",\"block\":{h}")),
            Stamp::Round(r) => s.push_str(&format!(",\"round\":{r}")),
        }
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (key, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                escape_json(key, &mut s);
                s.push_str("\":");
                value.render_json(&mut s);
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// First field named `key` as a `u64`, if present and in range.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                RawValue::U(u) => u64::try_from(*u).ok(),
                _ => None,
            })
    }

    /// Parses one JSONL row. Returns `None` on malformed input.
    pub fn parse_json_line(line: &str) -> Option<RawEvent> {
        let json = Parser::parse(line)?;
        let obj = match json {
            JsonValue::Object(kv) => kv,
            _ => return None,
        };
        let get = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let get_u64 = |key: &str| match get(key) {
            Some(JsonValue::U(u)) => u64::try_from(*u).ok(),
            _ => None,
        };
        let kind = match get("kind")? {
            JsonValue::S(s) if s == "point" => EventKind::Point,
            JsonValue::S(s) if s == "span_start" => EventKind::SpanStart,
            JsonValue::S(s) if s == "span_end" => EventKind::SpanEnd,
            _ => return None,
        };
        let stamp = if let Some(t) = get_u64("sim_us") {
            Stamp::Sim(t)
        } else if let Some(h) = get_u64("block") {
            Stamp::Block(h)
        } else if let Some(r) = get_u64("round") {
            Stamp::Round(r)
        } else {
            Stamp::None
        };
        let string = |key: &str| match get(key) {
            Some(JsonValue::S(s)) => Some(s.clone()),
            _ => None,
        };
        let fields = match get("fields") {
            None => Vec::new(),
            Some(JsonValue::Object(kv)) => kv
                .iter()
                .map(|(k, v)| {
                    let raw = match v {
                        JsonValue::U(u) => RawValue::U(*u),
                        JsonValue::I(i) => RawValue::I(*i),
                        JsonValue::F(f) => RawValue::F(*f),
                        JsonValue::S(s) => RawValue::S(s.clone()),
                        JsonValue::Object(_) => return None,
                    };
                    Some((k.clone(), raw))
                })
                .collect::<Option<Vec<_>>>()?,
            Some(_) => return None,
        };
        Some(RawEvent {
            seq: get_u64("seq")?,
            kind,
            domain: string("domain")?,
            name: string("name")?,
            span: get_u64("span").unwrap_or(0),
            trace: get_u64("trace").unwrap_or(0),
            parent: get_u64("parent").unwrap_or(0),
            stamp,
            fields,
        })
    }
}

/// Minimal JSON value for the row parser. Integer precision is kept
/// exact; the JSONL format never emits arrays, booleans or nulls.
enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    S(String),
    U(u128),
    I(i128),
    F(f64),
}

/// Hand-rolled parser for the JSONL row grammar (objects, strings,
/// numbers; no external JSON dependency is available offline).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(s: &'a str) -> Option<JsonValue> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.bytes.get(self.pos)? {
            b'{' => self.object(),
            b'"' => Some(JsonValue::S(self.string()?)),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Some(JsonValue::Object(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            kv.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos)? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(JsonValue::Object(kv));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return String::from_utf8(out).ok();
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            let c = char::from_u32(code)?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if !float {
            if let Ok(u) = text.parse::<u128>() {
                return Some(JsonValue::U(u));
            }
            if let Ok(i) = text.parse::<i128>() {
                return Some(JsonValue::I(i));
            }
        }
        text.parse::<f64>().ok().map(JsonValue::F)
    }
}

/// One reconstructed span in the causal DAG.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span id.
    pub id: u64,
    /// Trace id (0 = untraced).
    pub trace: u64,
    /// Causal parent span id (0 = root/untraced).
    pub parent: u64,
    /// Subsystem.
    pub domain: String,
    /// Span name.
    pub name: String,
    /// Seq of the span-start event (the deterministic tie-breaker).
    pub start_seq: u64,
    /// Logical start, mapped onto the simulated-µs axis.
    pub start_us: u64,
    /// Logical end (== `start_us` for spans never closed or closed with
    /// `Stamp::None`).
    pub end_us: u64,
    /// Whether a span-end event was seen.
    pub closed: bool,
    /// Child span ids, in start-seq order.
    pub children: Vec<u64>,
    /// Point-event children: `(seq, domain, name, us)`.
    pub points: Vec<(u64, String, String, u64)>,
}

impl SpanNode {
    /// Wall (logical) duration.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One hop on a critical path.
#[derive(Clone, Debug)]
pub struct CriticalHop {
    /// Span id.
    pub span: u64,
    /// `domain/name` label.
    pub label: String,
    /// Span start on the simulated-µs axis.
    pub start_us: u64,
    /// Span end.
    pub end_us: u64,
}

/// Per-trace summary.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Trace id (== root span id).
    pub trace: u64,
    /// Root `domain/name`.
    pub root_label: String,
    /// Spans in the trace.
    pub span_count: usize,
    /// Point events in the trace.
    pub point_count: usize,
    /// Earliest span start.
    pub start_us: u64,
    /// Latest span end / point time.
    pub end_us: u64,
    /// Root-to-latest-leaf chain (greedy latest-finisher descent).
    pub critical_path: Vec<CriticalHop>,
}

impl TraceSummary {
    /// Critical-path length in simulated µs (root start to the last
    /// hop's end).
    pub fn critical_path_us(&self) -> u64 {
        match (self.critical_path.first(), self.critical_path.last()) {
            (Some(first), Some(last)) => last.end_us.saturating_sub(first.start_us),
            _ => 0,
        }
    }
}

/// Maps a stamp onto the simulated-µs axis; `None` stamps inherit
/// `fallback` (their causal predecessor's position).
fn stamp_us(stamp: Stamp, fallback: u64) -> u64 {
    match stamp {
        Stamp::None => fallback,
        Stamp::Sim(t) => t,
        Stamp::Block(h) => h.saturating_mul(SIM_US_PER_BLOCK),
        Stamp::Round(r) => r.saturating_mul(SIM_US_PER_ROUND),
    }
}

/// Exact quantile of a sorted sample: the value at rank `⌈q·n⌉`
/// (1-based), i.e. the smallest element with at least a `q` fraction of
/// the sample at or below it.
fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn render_dist(out: &mut String, label: &str, values: &mut [u64]) {
    values.sort_unstable();
    out.push_str(&format!("{label}: n={}", values.len()));
    if !values.is_empty() {
        out.push_str(&format!(
            " p50={} p90={} p99={} max={}",
            sorted_quantile(values, 0.50),
            sorted_quantile(values, 0.90),
            sorted_quantile(values, 0.99),
            values[values.len() - 1]
        ));
    }
    out.push('\n');
}

fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    let mut sum = 0u64;
    for &v in values {
        let mut idx = HISTOGRAM_BUCKETS - 1;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if v <= Histogram::bucket_bound(i) {
                idx = i;
                break;
            }
        }
        buckets[idx] += 1;
        sum = sum.saturating_add(v);
    }
    HistogramSnapshot {
        count: values.len() as u64,
        sum,
        buckets,
    }
}

/// The reconstructed causal DAG plus every derived statistic.
#[derive(Clone, Debug, Default)]
pub struct TraceAnalysis {
    /// Total events analysed.
    pub events: u64,
    /// All spans by id.
    pub spans: BTreeMap<u64, SpanNode>,
    /// Point events outside any span: `(seq, domain, name, us)`.
    pub free_points: Vec<(u64, String, String, u64)>,
    /// Per-trace summaries, ordered by root start seq.
    pub traces: Vec<TraceSummary>,
    /// `net/deliver` one-hop latencies (µs), unsorted.
    pub hop_latencies_us: Vec<u64>,
    /// Blocks each included tx waited after submission.
    pub blocks_to_inclusion: Vec<u64>,
    /// Submit→payout times (µs) per completed workload trace.
    pub submit_to_payout_us: Vec<u64>,
}

impl TraceAnalysis {
    /// Analyses an event stream (must be seq-ordered, as captures are).
    pub fn from_events(events: &[RawEvent]) -> TraceAnalysis {
        let mut a = TraceAnalysis {
            events: events.len() as u64,
            ..TraceAnalysis::default()
        };
        // Pass 1: build span nodes (starts precede their children and
        // their own ends in seq order).
        for e in events {
            match e.kind {
                EventKind::SpanStart => {
                    let fallback = a.spans.get(&e.parent).map(|p| p.start_us).unwrap_or(0);
                    let start_us = stamp_us(e.stamp, fallback);
                    a.spans.insert(
                        e.span,
                        SpanNode {
                            id: e.span,
                            trace: e.trace,
                            parent: e.parent,
                            domain: e.domain.clone(),
                            name: e.name.clone(),
                            start_seq: e.seq,
                            start_us,
                            end_us: start_us,
                            closed: false,
                            children: Vec::new(),
                            points: Vec::new(),
                        },
                    );
                    if e.parent != 0 && e.trace != 0 {
                        let child = e.span;
                        if let Some(p) = a.spans.get_mut(&e.parent) {
                            p.children.push(child);
                        }
                    }
                }
                EventKind::SpanEnd => {
                    if let Some(node) = a.spans.get_mut(&e.span) {
                        node.end_us = stamp_us(e.stamp, node.start_us).max(node.start_us);
                        node.closed = true;
                    }
                }
                EventKind::Point => {
                    let fallback = a.spans.get(&e.parent).map(|p| p.start_us).unwrap_or(0);
                    let us = stamp_us(e.stamp, fallback);
                    let row = (e.seq, e.domain.clone(), e.name.clone(), us);
                    if e.parent != 0 && a.spans.contains_key(&e.parent) {
                        a.spans.get_mut(&e.parent).unwrap().points.push(row);
                    } else {
                        a.free_points.push(row);
                    }
                }
            }
            // Derived distributions read the raw event, not the DAG.
            if e.kind == EventKind::SpanStart && e.domain == "net" && e.name == "deliver" {
                if let Some(sent) = e.field_u64("sent_us") {
                    let at = stamp_us(e.stamp, sent);
                    a.hop_latencies_us.push(at.saturating_sub(sent));
                }
            }
            if e.kind == EventKind::Point && e.domain == "chain" && e.name == "tx.included" {
                if let Some(waited) = e.field_u64("blocks_waited") {
                    a.blocks_to_inclusion.push(waited);
                }
            }
        }
        // Unclosed spans extend to their last child/point activity so
        // critical paths through them are still meaningful.
        let reach: Vec<(u64, u64)> = a
            .spans
            .values()
            .map(|s| {
                let child_max = s
                    .children
                    .iter()
                    .filter_map(|c| a.spans.get(c))
                    .map(|c| c.end_us)
                    .chain(s.points.iter().map(|p| p.3))
                    .max()
                    .unwrap_or(s.end_us);
                (s.id, child_max)
            })
            .collect();
        for (id, child_max) in reach {
            let node = a.spans.get_mut(&id).unwrap();
            if !node.closed {
                node.end_us = node.end_us.max(child_max);
            }
        }
        a.build_traces();
        a
    }

    /// Reads and analyses a JSONL capture file's contents.
    pub fn from_jsonl(body: &str) -> TraceAnalysis {
        let events: Vec<RawEvent> = body
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(RawEvent::parse_json_line)
            .collect();
        TraceAnalysis::from_events(&events)
    }

    fn build_traces(&mut self) {
        let mut roots: Vec<u64> = self
            .spans
            .values()
            .filter(|s| s.trace != 0 && s.id == s.trace)
            .map(|s| s.id)
            .collect();
        roots.sort_by_key(|id| (self.spans[id].start_seq, *id));
        for root in roots {
            let members: Vec<&SpanNode> = self.spans.values().filter(|s| s.trace == root).collect();
            let span_count = members.len();
            let point_count = members.iter().map(|s| s.points.len()).sum();
            let start_us = members.iter().map(|s| s.start_us).min().unwrap_or(0);
            let end_us = members
                .iter()
                .flat_map(|s| std::iter::once(s.end_us).chain(s.points.iter().map(|p| p.3)))
                .max()
                .unwrap_or(0);
            let root_label = format!("{}/{}", self.spans[&root].domain, self.spans[&root].name);
            let critical_path = self.critical_path(root);
            // Submit→payout: a workload root paired with a payout point
            // anywhere in its trace.
            if self.spans[&root].name == "workload.submit" {
                if let Some(pay) = members
                    .iter()
                    .flat_map(|s| s.points.iter())
                    .filter(|p| p.2 == "workload.payout")
                    .map(|p| p.3)
                    .max()
                {
                    self.submit_to_payout_us
                        .push(pay.saturating_sub(self.spans[&root].start_us));
                }
            }
            self.traces.push(TraceSummary {
                trace: root,
                root_label,
                span_count,
                point_count,
                start_us,
                end_us,
                critical_path,
            });
        }
    }

    /// Greedy latest-finisher descent: from the root, repeatedly step
    /// into the child span (or stop at a point) with the greatest end
    /// time, breaking ties toward the lowest seq. The resulting chain
    /// is the causal sequence that bounded the trace's makespan.
    fn critical_path(&self, root: u64) -> Vec<CriticalHop> {
        let mut path = Vec::new();
        let mut cur = root;
        while let Some(node) = self.spans.get(&cur) {
            path.push(CriticalHop {
                span: node.id,
                label: format!("{}/{}", node.domain, node.name),
                start_us: node.start_us,
                end_us: node.end_us,
            });
            // (end_us desc, start_seq asc) best child.
            let next = node
                .children
                .iter()
                .filter_map(|c| self.spans.get(c))
                .map(|c| (c.end_us, c.start_seq, c.id))
                .max_by(|a, b| (a.0, std::cmp::Reverse(a.1)).cmp(&(b.0, std::cmp::Reverse(b.1))));
            match next {
                Some((_, _, id)) => cur = id,
                None => break,
            }
        }
        path
    }

    /// Per-span self time: duration minus the summed durations of
    /// direct children (clamped at zero for overlapping children).
    fn self_us(&self, s: &SpanNode) -> u64 {
        let child_total: u64 = s
            .children
            .iter()
            .filter_map(|c| self.spans.get(c))
            .map(|c| c.duration_us())
            .sum();
        s.duration_us().saturating_sub(child_total)
    }

    /// Folded-stack (flamegraph collapse) lines: one
    /// `root;frame;…;leaf weight` row per distinct ancestry, weighted
    /// by self time in µs, lexicographically sorted. Pipe into any
    /// flamegraph renderer.
    pub fn render_folded(&self) -> String {
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for s in self.spans.values() {
            if s.trace == 0 {
                continue;
            }
            // Build the ancestry chain root→self.
            let mut frames = Vec::new();
            let mut cur = Some(s);
            while let Some(n) = cur {
                frames.push(format!("{}/{}", n.domain, n.name));
                cur = if n.parent != 0 {
                    self.spans.get(&n.parent)
                } else {
                    None
                };
            }
            frames.reverse();
            *stacks.entry(frames.join(";")).or_insert(0) += self.self_us(s);
        }
        let mut out = String::new();
        for (stack, weight) in &stacks {
            out.push_str(&format!("{stack} {weight}\n"));
        }
        out
    }

    /// Reconstructs a metrics snapshot from the DAG (per-domain span
    /// counters, latency histograms) for Prometheus-style exposition by
    /// `obs_report` — the capture's registry is gone by analysis time,
    /// so the exposition is derived from the trace itself.
    pub fn to_metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let mut domain_spans: BTreeMap<String, u64> = BTreeMap::new();
        let mut domain_self: BTreeMap<String, u64> = BTreeMap::new();
        for s in self.spans.values() {
            *domain_spans.entry(s.domain.clone()).or_insert(0) += 1;
            *domain_self.entry(s.domain.clone()).or_insert(0) += self.self_us(s);
        }
        for (d, n) in domain_spans {
            snap.counters.insert(format!("trace.{d}.spans"), n);
        }
        for (d, us) in domain_self {
            snap.counters.insert(format!("trace.{d}.self_us"), us);
        }
        snap.counters
            .insert("trace.traces".into(), self.traces.len() as u64);
        snap.counters.insert("trace.events".into(), self.events);
        snap.histograms.insert(
            "trace.hop_latency_us".into(),
            histogram_of(&self.hop_latencies_us),
        );
        snap.histograms.insert(
            "trace.blocks_to_inclusion".into(),
            histogram_of(&self.blocks_to_inclusion),
        );
        snap.histograms.insert(
            "trace.submit_to_payout_us".into(),
            histogram_of(&self.submit_to_payout_us),
        );
        snap
    }

    /// The deterministic text report: per-trace critical paths,
    /// per-domain breakdown, latency distributions. Bit-identical
    /// across reruns/threads/sinks of the same run.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let total_points: usize =
            self.spans.values().map(|s| s.points.len()).sum::<usize>() + self.free_points.len();
        out.push_str(&format!(
            "pds2 obs_report\nevents={} spans={} points={} traces={}\n\n",
            self.events,
            self.spans.len(),
            total_points,
            self.traces.len()
        ));
        for t in &self.traces {
            out.push_str(&format!(
                "trace {:#018x} root={} spans={} points={} start_us={} end_us={} duration_us={}\n",
                t.trace,
                t.root_label,
                t.span_count,
                t.point_count,
                t.start_us,
                t.end_us,
                t.end_us.saturating_sub(t.start_us)
            ));
            out.push_str(&format!(
                "  critical path: {} us over {} hops\n",
                t.critical_path_us(),
                t.critical_path.len()
            ));
            for hop in &t.critical_path {
                out.push_str(&format!(
                    "    [{:>12}..{:>12}] {}  self={} us\n",
                    hop.start_us,
                    hop.end_us,
                    hop.label,
                    self.spans
                        .get(&hop.span)
                        .map(|s| self.self_us(s))
                        .unwrap_or(0)
                ));
            }
        }
        if !self.traces.is_empty() {
            out.push('\n');
        }
        out.push_str("per-domain (all spans):\n");
        let mut by_domain: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for s in self.spans.values() {
            let row = by_domain.entry(s.domain.as_str()).or_insert((0, 0, 0));
            row.0 += 1;
            row.1 += s.duration_us();
            row.2 += self.self_us(s);
        }
        for (d, (n, total, selfus)) in &by_domain {
            out.push_str(&format!(
                "  {d} spans={n} total_us={total} self_us={selfus}\n"
            ));
        }
        out.push('\n');
        render_dist(
            &mut out,
            "hop latency us (net/deliver)",
            &mut self.hop_latencies_us.clone(),
        );
        render_dist(
            &mut out,
            "blocks to inclusion",
            &mut self.blocks_to_inclusion.clone(),
        );
        render_dist(
            &mut out,
            "submit to payout us",
            &mut self.submit_to_payout_us.clone(),
        );
        out
    }

    /// SHA-256 of [`render_text`](TraceAnalysis::render_text) — one
    /// string to compare across reruns, thread counts and sinks.
    pub fn report_digest(&self) -> String {
        let mut h = Sha256::new();
        h.update(self.render_text().as_bytes());
        h.finalize().to_hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate as obs;
    use crate::SinkKind;

    /// Builds a tiny two-level trace and checks the DAG, critical path
    /// and folded stacks against hand-computed values.
    #[test]
    fn analysis_reconstructs_dag_and_critical_path() {
        let _g = obs::test_lock();
        let cap = obs::capture(SinkKind::Ring(usize::MAX));
        let root = obs::new_trace("market", "workload.submit", Stamp::Sim(100), vec![]);
        let fast = obs::span_traced(
            "chain",
            "produce_block",
            Stamp::Sim(120),
            root.ctx(),
            vec![],
        );
        fast.finish(Stamp::Sim(200), vec![]);
        let slow = obs::span_traced("net", "deliver", Stamp::Sim(150), root.ctx(), vec![]);
        obs::emit_traced(
            "market",
            "workload.payout",
            Stamp::Sim(890),
            slow.ctx(),
            vec![],
        );
        slow.finish(Stamp::Sim(900), vec![]);
        root.finish(Stamp::Sim(1000), vec![]);
        let report = cap.finish();

        let events: Vec<RawEvent> = report.entries.iter().map(RawEvent::from).collect();
        let a = TraceAnalysis::from_events(&events);
        assert_eq!(a.traces.len(), 1);
        let t = &a.traces[0];
        assert_eq!(t.span_count, 3);
        assert_eq!(t.point_count, 1);
        assert_eq!(t.start_us, 100);
        assert_eq!(t.end_us, 1000);
        // Critical path: root (ends 1000) → slow deliver (ends 900);
        // length = root start 100 → last hop end 900.
        let labels: Vec<&str> = t.critical_path.iter().map(|h| h.label.as_str()).collect();
        assert_eq!(labels, vec!["market/workload.submit", "net/deliver"]);
        assert_eq!(t.critical_path_us(), 800);
        // Self time: root 900 − (80 + 750) = 70.
        let folded = a.render_folded();
        assert!(folded.contains("market/workload.submit 70\n"), "{folded}");
        assert!(
            folded.contains("market/workload.submit;net/deliver 750\n"),
            "{folded}"
        );
        // Payout point at 890 − submit at 100.
        assert_eq!(a.submit_to_payout_us, vec![790]);
        // Deterministic digest across recomputation.
        assert_eq!(
            a.report_digest(),
            TraceAnalysis::from_events(&events).report_digest()
        );
    }

    /// Ring- and JSONL-sourced analyses of one run agree byte-for-byte.
    #[test]
    fn ring_and_jsonl_analyses_agree() {
        let _g = obs::test_lock();
        let run = || {
            let root = obs::new_trace("test", "job", Stamp::Sim(0), vec![]);
            let child = obs::span_traced(
                "test",
                "step",
                Stamp::Sim(10),
                root.ctx(),
                vec![("i", Value::from(1u64))],
            );
            child.finish(Stamp::Sim(40), vec![]);
            root.finish(Stamp::Sim(50), vec![("ok", Value::from("yes"))]);
        };
        let cap = obs::capture(SinkKind::Ring(usize::MAX));
        run();
        let ring = cap.finish();
        let path = std::env::temp_dir().join("pds2_obs_report_unit.jsonl");
        let cap = obs::capture(SinkKind::Jsonl(path.clone()));
        run();
        let jsonl = cap.finish();
        assert_eq!(ring.digest, jsonl.digest);
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let from_ring = TraceAnalysis::from_events(
            &ring.entries.iter().map(RawEvent::from).collect::<Vec<_>>(),
        );
        let from_jsonl = TraceAnalysis::from_jsonl(&body);
        assert_eq!(from_ring.render_text(), from_jsonl.render_text());
        assert_eq!(from_ring.report_digest(), from_jsonl.report_digest());
        assert_eq!(from_ring.render_folded(), from_jsonl.render_folded());
    }

    #[test]
    fn stamp_mapping_and_quantiles() {
        assert_eq!(stamp_us(Stamp::Block(2), 0), 2 * SIM_US_PER_BLOCK);
        assert_eq!(stamp_us(Stamp::Round(3), 0), 3 * SIM_US_PER_ROUND);
        assert_eq!(stamp_us(Stamp::None, 77), 77);
        let xs = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(sorted_quantile(&xs, 0.50), 5);
        assert_eq!(sorted_quantile(&xs, 0.90), 9);
        assert_eq!(sorted_quantile(&xs, 0.99), 10);
        assert_eq!(sorted_quantile(&[], 0.5), 0);
    }
}
