//! Deterministic observability layer (paper §6 "governance and
//! accountability", applied to the implementation itself).
//!
//! The marketplace promises consumers and providers an auditable record
//! of what the platform did with their workloads. This crate is the
//! in-repo analogue of that promise for the simulator: a tracing and
//! metrics substrate whose output is itself replay-checkable. Every
//! event stream folds into a running SHA-256 [`trace_digest`], and
//! because events carry only *logical* timestamps — simulated
//! microseconds, block heights, learning rounds, never the wall clock —
//! a run's trace is bit-identical across reruns, machines, and
//! `PDS2_THREADS` settings. Two runs agree iff their digests agree,
//! which turns "did this refactor change behaviour?" into a string
//! comparison.
//!
//! Three pieces:
//!
//! - **Metrics** ([`counter!`], [`gauge!`], [`histogram!`]): typed
//!   handles interned in a process-wide registry. A hot-path increment
//!   is one relaxed atomic add on a cached `&'static` handle. Counters
//!   are totals, deliberately *outside* the trace digest: parallel
//!   workers may bump them in nondeterministic interleavings (and a
//!   warm sigcache changes hit/miss splits) without breaking trace
//!   determinism.
//! - **Tracing** ([`event!`], [`span`]): structured events with a
//!   domain, a name, a [`Stamp`], and typed fields. Span IDs are
//!   domain-separated (high 32 bits hash the domain, low 32 bits a
//!   per-domain sequence reset at capture start) so IDs are stable
//!   and greppable. Emission is gated on one relaxed atomic load —
//!   when no capture is active the entire layer costs under 1% on
//!   `block_validation_500tx` (measured by `bench_obs`).
//! - **Sinks** ([`SinkKind`]): ring buffer for tests, JSONL writer for
//!   benches and offline analysis, and a digest-only null sink. The
//!   digest is folded in the collector *before* the sink sees the
//!   event, so ring, JSONL and null captures of the same run produce
//!   the same digest.
//!
//! Determinism contract: events must be emitted from serial code paths
//! only (the discrete-event simulator loop, block production and
//! validation entry points, marketplace calls, learning round loops).
//! Parallel workers inside `pds2-par` regions touch *counters* only.
//! Tests that assert counter deltas or digests take [`test_lock`] to
//! serialize against other tests in the same binary, since the
//! registry and collector are process-global.

pub mod diff;
mod metrics;
pub mod report;
mod sink;
mod trace;
pub mod window;

pub use metrics::{
    counter_handle, gauge_handle, histogram_handle, reset_metrics, snapshot, Counter, Gauge,
    Histogram, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use sink::SinkKind;
pub use trace::{
    capture, emit, emit_traced, enabled, new_trace, segment_merkle_root, span, span_traced,
    test_lock, trace_digest, Capture, Event, EventKind, SegmentCheckpoint, Span, Stamp, TraceCtx,
    TraceReport, Value, SEGMENT_EVENTS,
};

/// What a finished capture summarizes: digest, segment checkpoints,
/// Merkle root, retained events. Alias kept so call sites can speak the
/// paper's vocabulary ("the capture summary a committee signs over").
pub type CaptureSummary = TraceReport;

/// Interns (once per call site) and returns a `&'static` [`Counter`].
///
/// ```
/// pds2_obs::counter!("chain.blocks_produced").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __H: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::counter_handle($name))
    }};
}

/// Interns (once per call site) and returns a `&'static` [`Gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __H: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::gauge_handle($name))
    }};
}

/// Interns (once per call site) and returns a `&'static` [`Histogram`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __H: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__H.get_or_init(|| $crate::histogram_handle($name))
    }};
}

/// Emits a point event iff a capture is active. Field values go through
/// [`Value::from`], so `u64`, `u128`, `i64`, `f64`, `&str` and `String`
/// all work:
///
/// ```
/// use pds2_obs as obs;
/// obs::event!("net", "deliver", obs::Stamp::Sim(42), "src" => 1u64, "dst" => 2u64);
/// ```
///
/// When tracing is disabled this is a single relaxed atomic load — the
/// field expressions are not evaluated.
#[macro_export]
macro_rules! event {
    ($domain:expr, $name:expr, $stamp:expr $(, $key:expr => $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit($domain, $name, $stamp, vec![$(($key, $crate::Value::from($val))),*]);
        }
    };
}

/// Emits a point event attached to a causal context ([`TraceCtx`]): the
/// event joins the context's trace as a child of `ctx.parent_span`.
/// With [`TraceCtx::NONE`] this degrades to a plain [`event!`].
///
/// ```
/// use pds2_obs as obs;
/// let root = obs::new_trace("test", "job", obs::Stamp::Sim(0), vec![]);
/// obs::trace_event!("test", "step", obs::Stamp::Sim(5), root.ctx(), "i" => 1u64);
/// ```
///
/// When tracing is disabled this is a single relaxed atomic load — the
/// field expressions are not evaluated.
#[macro_export]
macro_rules! trace_event {
    ($domain:expr, $name:expr, $stamp:expr, $ctx:expr $(, $key:expr => $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit_traced(
                $domain,
                $name,
                $stamp,
                $ctx,
                vec![$(($key, $crate::Value::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as obs;
    use crate::{SinkKind, Stamp};

    #[test]
    fn counters_and_gauges_roundtrip() {
        let _g = obs::test_lock();
        let c = obs::counter!("test.obs.counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);

        let g = obs::gauge!("test.obs.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.add(0.5);
        assert_eq!(g.get(), 3.0);

        let h = obs::histogram!("test.obs.hist");
        h.observe(3);
        h.observe(1000);
        let snap = obs::snapshot();
        let hs = &snap.histograms["test.obs.hist"];
        assert!(hs.count >= 2);
        assert!(hs.sum >= 1003);
        assert!(snap.counters["test.obs.counter"] >= 5);
    }

    #[test]
    fn same_events_same_digest_across_sinks() {
        let _g = obs::test_lock();
        let run = || {
            for i in 0..10u64 {
                obs::event!("test", "tick", Stamp::Sim(i), "i" => i, "sq" => i * i);
            }
            let s = obs::span("test", "work", Stamp::Block(7));
            obs::event!("test", "inner", Stamp::None, "msg" => "hello");
            s.finish(Stamp::Block(8), vec![("gas", obs::Value::from(21u64))]);
        };

        let cap = obs::capture(SinkKind::Ring(1024));
        run();
        let ring = cap.finish();
        assert_eq!(ring.events, 13, "10 points + start + inner + end");
        assert_eq!(ring.entries.len(), 13);

        let path = std::env::temp_dir().join("pds2_obs_unit_test.jsonl");
        let cap = obs::capture(SinkKind::Jsonl(path.clone()));
        run();
        let jsonl = cap.finish();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let event_lines = body
            .lines()
            .filter(|l| !l.starts_with("{\"checkpoint\"") && !l.starts_with("{\"segment_root\""))
            .count();
        assert_eq!(event_lines, 13);
        assert!(
            body.lines().any(|l| l.starts_with("{\"checkpoint\"")),
            "JSONL sink must flush the partial-segment checkpoint"
        );
        assert!(body.contains("\"domain\":\"test\""));

        let cap = obs::capture(SinkKind::Null);
        run();
        let null = cap.finish();

        assert_eq!(
            ring.digest, jsonl.digest,
            "sink choice must not change the digest"
        );
        assert_eq!(ring.digest, null.digest);
        assert_eq!(ring.digest, obs::trace_digest());
    }

    #[test]
    fn span_ids_are_domain_separated_and_reset_per_capture() {
        let _g = obs::test_lock();
        let ids = || {
            let cap = obs::capture(SinkKind::Ring(16));
            let a = obs::span("alpha", "s", Stamp::None);
            let b = obs::span("beta", "s", Stamp::None);
            let ids = (a.id(), b.id());
            drop(a);
            drop(b);
            cap.finish();
            ids
        };
        let (a1, b1) = ids();
        let (a2, b2) = ids();
        assert_eq!(a1, a2, "span ids must be stable across captures");
        assert_eq!(b1, b2);
        assert_ne!(a1 >> 32, b1 >> 32, "different domains, different high bits");
        assert_eq!(
            a1 & 0xffff_ffff,
            b1 & 0xffff_ffff,
            "per-domain sequences both start at 1"
        );
    }

    #[test]
    fn disabled_emission_is_invisible() {
        let _g = obs::test_lock();
        obs::event!("test", "ghost", Stamp::Sim(1), "x" => 1u64);
        let cap = obs::capture(SinkKind::Ring(16));
        let empty = cap.finish();
        assert_eq!(empty.events, 0);
    }
}
