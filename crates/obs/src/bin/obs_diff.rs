//! `obs_diff` — localize the first divergence between two captures.
//!
//! ```text
//! obs_diff A.jsonl B.jsonl [--context K] [--json] [--out FILE]
//! ```
//!
//! Compares two JSONL trace captures using their embedded segment
//! checkpoints: the checkpoint chains are bisected to the first
//! divergent segment (O(log n) digest compares, no event bodies), then
//! only that segment's events are read to name the exact first
//! divergent `seq`, with a ±K context window and a domain
//! classification. Captures without checkpoint rows (pre-segmentation
//! files) fall back to a full linear compare with the same verdict
//! semantics.
//!
//! Exit codes: 0 = identical, 1 = divergence found (verdict printed),
//! 2 = usage or I/O error. `--json` prints the machine-readable
//! verdict instead of the human report; `--out FILE` additionally
//! writes the full report (text + JSON trailer) to `FILE`.

use pds2_obs::diff;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: obs_diff <a.jsonl> <b.jsonl> [--context K] [--json] [--out FILE]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut context_k = 3u64;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--context" => match args.next().and_then(|v| v.parse().ok()) {
                Some(k) => context_k = k,
                None => return usage(),
            },
            "--json" => json = true,
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    if paths.len() != 2 {
        return usage();
    }
    let report = match diff::diff_files(&paths[0], &paths[1], context_k) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs_diff: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if let Some(path) = out {
        let body = format!("{}\n{}\n", report.render_text(), report.to_json());
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("obs_diff: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
