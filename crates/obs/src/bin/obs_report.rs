//! `obs_report`: offline analysis of a JSONL trace capture.
//!
//! ```text
//! obs_report <trace.jsonl> [--folded <out.folded>] [--prom <out.prom>]
//! ```
//!
//! Reads the capture, reconstructs the causal DAG, and prints the
//! deterministic text report (per-trace critical paths, per-domain
//! breakdown, latency distributions) to stdout, followed by the report
//! digest. `--folded` writes flamegraph collapse-format stacks;
//! `--prom` writes a Prometheus-style exposition of the metrics
//! reconstructed from the trace. By default both are written next to
//! the input as `<input>.folded` / `<input>.prom`.
//!
//! Exits non-zero when the capture contains no traces (nothing was
//! minted — almost always a bug in the instrumented run), so smoke
//! jobs can assert a non-empty critical path by exit code alone.

use pds2_obs::report::TraceAnalysis;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<PathBuf> = None;
    let mut folded_out: Option<PathBuf> = None;
    let mut prom_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--folded" => {
                i += 1;
                folded_out = args.get(i).map(PathBuf::from);
            }
            "--prom" => {
                i += 1;
                prom_out = args.get(i).map(PathBuf::from);
            }
            "--help" | "-h" => {
                eprintln!("usage: obs_report <trace.jsonl> [--folded <path>] [--prom <path>]");
                return ExitCode::SUCCESS;
            }
            other => input = Some(PathBuf::from(other)),
        }
        i += 1;
    }
    let input = match input {
        Some(p) => p,
        None => {
            eprintln!("usage: obs_report <trace.jsonl> [--folded <path>] [--prom <path>]");
            return ExitCode::from(2);
        }
    };
    let body = match std::fs::read_to_string(&input) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("obs_report: cannot read {}: {e}", input.display());
            return ExitCode::from(2);
        }
    };

    let analysis = TraceAnalysis::from_jsonl(&body);
    print!("{}", analysis.render_text());
    println!("report digest: {}", analysis.report_digest());

    let folded_path =
        folded_out.unwrap_or_else(|| PathBuf::from(format!("{}.folded", input.display())));
    let prom_path = prom_out.unwrap_or_else(|| PathBuf::from(format!("{}.prom", input.display())));
    if let Err(e) = std::fs::write(&folded_path, analysis.render_folded()) {
        eprintln!("obs_report: cannot write {}: {e}", folded_path.display());
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::write(
        &prom_path,
        analysis.to_metrics_snapshot().render_prometheus(),
    ) {
        eprintln!("obs_report: cannot write {}: {e}", prom_path.display());
        return ExitCode::from(2);
    }
    eprintln!(
        "wrote {} and {}",
        folded_path.display(),
        prom_path.display()
    );

    let hops: usize = analysis.traces.iter().map(|t| t.critical_path.len()).sum();
    if analysis.traces.is_empty() || hops == 0 {
        // Diagnose *why* the DAG was empty instead of failing bare: the
        // usual causes are an untraced run (events but no `new_trace`
        // roots), an empty capture, or a file of non-event lines.
        let mut domains: Vec<&str> = analysis
            .spans
            .values()
            .map(|s| s.domain.as_str())
            .chain(analysis.free_points.iter().map(|(_, d, _, _)| d.as_str()))
            .collect();
        domains.sort_unstable();
        domains.dedup();
        eprintln!("obs_report: capture contains no traced critical path");
        eprintln!(
            "  events parsed:   {} ({} spans, {} free points)",
            analysis.events,
            analysis.spans.len(),
            analysis.free_points.len()
        );
        eprintln!(
            "  domains seen:    {}",
            if domains.is_empty() {
                "<none>".to_string()
            } else {
                domains.join(", ")
            }
        );
        eprintln!(
            "  reason:          {}",
            if analysis.events == 0 {
                "no event rows parsed — empty capture, wrong file, or non-JSONL input"
            } else if analysis.traces.is_empty() {
                "no trace roots — the run never called new_trace(), so \
                 events exist but join no causal DAG"
            } else {
                "traces exist but all have empty critical paths — roots \
                 closed with no child spans"
            }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
