//! Windowed SLO telemetry over *logical* time.
//!
//! The metrics registry (`crate::snapshot`) reports run-to-date totals;
//! post-hoc analysis scans a finished capture. Neither can answer "is
//! the system violating its SLO *right now*?" while a simulation is
//! still running. This module adds that live view without giving up
//! determinism: windows advance on the logical [`Stamp::Sim`] clock
//! carried by the observations themselves, never the wall clock, so a
//! monitor fed the same observation sequence fires at the same logical
//! instant in every rerun, at any `PDS2_THREADS` — and its alert
//! transitions are regular digested trace events, pinned by the same
//! golden-digest machinery as everything else.
//!
//! Two layers:
//!
//! - [`WindowedMetric`]: a ring of time buckets holding count, sum and
//!   a power-of-four histogram; supports sliding-window rates and
//!   quantiles at any logical instant.
//! - [`SloMonitor`]: a multi-window burn-rate alert rule in the
//!   Google-SRE style. An observation is *bad* when it exceeds the
//!   objective's threshold; the monitor fires when the bad fraction
//!   burns the error budget at ≥ the configured rate over a short
//!   *and* a long window (the short window gives fast detection, the
//!   long one suppresses single-burst noise).

use crate::trace::Stamp;

/// Histogram bucket count (mirrors the registry's power-of-four
/// layout: bucket `i` holds values ≤ `4^i`, last bucket unbounded).
const BUCKETS: usize = crate::HISTOGRAM_BUCKETS;

fn value_bucket(value: u64) -> usize {
    for i in 0..BUCKETS - 1 {
        if value <= 1u64 << (2 * i) {
            return i;
        }
    }
    BUCKETS - 1
}

fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (2 * i)
    }
}

#[derive(Clone)]
struct Bucket {
    /// Which time-bucket index this slot currently holds, or
    /// `u64::MAX` when empty.
    stamp: u64,
    count: u64,
    sum: u64,
    bad: u64,
    hist: [u64; BUCKETS],
}

const EMPTY_BUCKET: Bucket = Bucket {
    stamp: u64::MAX,
    count: 0,
    sum: 0,
    bad: 0,
    hist: [0; BUCKETS],
};

/// Sliding-window rates and quantiles over logical time.
///
/// The window is a ring of `buckets` slots, each covering
/// `window_us / buckets` of logical time; a query at instant `t`
/// aggregates every slot whose time-bucket lies within `(t - window,
/// t]`. Observations and queries are pure integer bookkeeping —
/// identical inputs yield identical outputs on every platform.
#[derive(Clone)]
pub struct WindowedMetric {
    bucket_us: u64,
    slots: Vec<Bucket>,
    /// Optional badness threshold: observations strictly greater count
    /// toward [`bad`](WindowedMetric::bad).
    threshold: u64,
}

impl WindowedMetric {
    /// A window spanning `window_us` of logical time, divided into
    /// `buckets` ring slots (expiry granularity = `window_us/buckets`).
    pub fn new(window_us: u64, buckets: usize) -> WindowedMetric {
        let buckets = buckets.max(1);
        WindowedMetric {
            bucket_us: (window_us / buckets as u64).max(1),
            slots: vec![EMPTY_BUCKET; buckets],
            threshold: u64::MAX,
        }
    }

    /// Sets the badness threshold (observations `> threshold` count as
    /// bad in [`bad`](WindowedMetric::bad)).
    pub fn with_threshold(mut self, threshold: u64) -> WindowedMetric {
        self.threshold = threshold;
        self
    }

    /// Total logical time the window spans.
    pub fn window_us(&self) -> u64 {
        self.bucket_us * self.slots.len() as u64
    }

    /// Records `value` at logical instant `t_us`.
    pub fn observe(&mut self, t_us: u64, value: u64) {
        let idx = t_us / self.bucket_us;
        let slot = (idx % self.slots.len() as u64) as usize;
        let b = &mut self.slots[slot];
        if b.stamp != idx {
            *b = EMPTY_BUCKET;
            b.stamp = idx;
        }
        b.count += 1;
        b.sum += value;
        if value > self.threshold {
            b.bad += 1;
        }
        b.hist[value_bucket(value)] += 1;
    }

    fn live(&self, t_us: u64) -> impl Iterator<Item = &Bucket> {
        let idx = t_us / self.bucket_us;
        let oldest = idx.saturating_sub(self.slots.len() as u64 - 1);
        self.slots
            .iter()
            .filter(move |b| b.stamp != u64::MAX && b.stamp >= oldest && b.stamp <= idx)
    }

    /// Observations inside the window ending at `t_us`.
    pub fn count(&self, t_us: u64) -> u64 {
        self.live(t_us).map(|b| b.count).sum()
    }

    /// Bad observations (`> threshold`) inside the window.
    pub fn bad(&self, t_us: u64) -> u64 {
        self.live(t_us).map(|b| b.bad).sum()
    }

    /// Sum of observed values inside the window.
    pub fn sum(&self, t_us: u64) -> u64 {
        self.live(t_us).map(|b| b.sum).sum()
    }

    /// Observations per second of logical time, ×100 (integer, so the
    /// value itself is digestable without float formatting concerns).
    pub fn rate_per_sec_x100(&self, t_us: u64) -> u64 {
        self.count(t_us) * 100_000_000 / self.window_us()
    }

    /// Upper bucket bound of the `q_x100`-th percentile (`q_x100` in
    /// 0..=100) over the window, or 0 for an empty window. Quantiles
    /// are bucket-resolution (power-of-four bounds), which is enough
    /// to compare against an SLO threshold that is itself coarse.
    pub fn quantile_x100(&self, t_us: u64, q_x100: u64) -> u64 {
        let mut merged = [0u64; BUCKETS];
        let mut total = 0u64;
        for b in self.live(t_us) {
            for (m, h) in merged.iter_mut().zip(b.hist.iter()) {
                *m += h;
            }
            total += b.count;
        }
        if total == 0 {
            return 0;
        }
        let rank = (q_x100 * total).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, m) in merged.iter().enumerate() {
            seen += m;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }
}

/// A multi-window burn-rate alert rule.
///
/// The objective is "at most `budget_bp` basis points of observations
/// may exceed `threshold`". The *burn rate* is the observed bad
/// fraction divided by that budget; a burn rate of 1.0 consumes the
/// budget exactly, 10.0 consumes it ten times too fast. The rule fires
/// when the burn rate is ≥ `fire_burn_x100`/100 over **both** windows
/// and the long window has seen at least `min_count` observations;
/// it resolves when the short-window burn rate drops back below the
/// firing rate.
#[derive(Clone, Copy, Debug)]
pub struct SloRule {
    /// Rule name; becomes the `rule` field of alert events.
    pub name: &'static str,
    /// Objective threshold: an observation `> threshold` is bad.
    pub threshold: u64,
    /// Error budget in basis points (100 = 1% of observations may be
    /// bad).
    pub budget_bp: u64,
    /// Fast-detection window, logical µs.
    pub short_window_us: u64,
    /// Noise-suppression window, logical µs.
    pub long_window_us: u64,
    /// Fire when burn ≥ this/100 on both windows (100 = exactly at
    /// budget; 1000 = 10× budget).
    pub fire_burn_x100: u64,
    /// Minimum long-window observations before the rule may fire.
    pub min_count: u64,
}

/// Evaluates an [`SloRule`] over a stream of observations and emits
/// deterministic, digested `slo.alert.fire` / `slo.alert.resolve`
/// trace events on state transitions.
///
/// Feed it from *serial* code only (the obs determinism contract):
/// the simulator loop, block production, a bench harness's
/// measurement path. Observations drive both windows and the alert
/// state machine; no background clock exists.
pub struct SloMonitor {
    rule: SloRule,
    short: WindowedMetric,
    long: WindowedMetric,
    firing: bool,
    fired: u64,
    first_fired_at: Option<u64>,
}

/// Ring slots per monitor window (expiry granularity window/16).
const WINDOW_SLOTS: usize = 16;

impl SloMonitor {
    /// A monitor with empty windows and the alert not firing.
    pub fn new(rule: SloRule) -> SloMonitor {
        SloMonitor {
            short: WindowedMetric::new(rule.short_window_us, WINDOW_SLOTS)
                .with_threshold(rule.threshold),
            long: WindowedMetric::new(rule.long_window_us, WINDOW_SLOTS)
                .with_threshold(rule.threshold),
            rule,
            firing: false,
            fired: 0,
            first_fired_at: None,
        }
    }

    /// Burn rate ×100 of one window at `t_us` (bad-fraction ÷ budget).
    fn burn_x100(w: &WindowedMetric, budget_bp: u64, t_us: u64) -> u64 {
        let count = w.count(t_us);
        if count == 0 || budget_bp == 0 {
            return 0;
        }
        w.bad(t_us) * 10_000 * 100 / (budget_bp * count)
    }

    /// Records one observation at logical instant `t_us` and evaluates
    /// the rule, emitting an alert event if the state flips.
    pub fn observe(&mut self, t_us: u64, value: u64) {
        self.short.observe(t_us, value);
        self.long.observe(t_us, value);
        let short_burn = Self::burn_x100(&self.short, self.rule.budget_bp, t_us);
        let long_burn = Self::burn_x100(&self.long, self.rule.budget_bp, t_us);
        if !self.firing {
            let fire = short_burn >= self.rule.fire_burn_x100
                && long_burn >= self.rule.fire_burn_x100
                && self.long.count(t_us) >= self.rule.min_count;
            if fire {
                self.firing = true;
                self.fired += 1;
                self.first_fired_at.get_or_insert(t_us);
                crate::event!(
                    "slo",
                    "alert.fire",
                    Stamp::Sim(t_us),
                    "rule" => self.rule.name,
                    "burn_short_x100" => short_burn,
                    "burn_long_x100" => long_burn,
                    "bad" => self.long.bad(t_us),
                    "count" => self.long.count(t_us),
                );
            }
        } else if short_burn < self.rule.fire_burn_x100 {
            self.firing = false;
            crate::event!(
                "slo",
                "alert.resolve",
                Stamp::Sim(t_us),
                "rule" => self.rule.name,
                "burn_short_x100" => short_burn,
                "burn_long_x100" => long_burn,
            );
        }
    }

    /// Whether the alert is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Number of fire transitions so far.
    pub fn fired_count(&self) -> u64 {
        self.fired
    }

    /// Logical instant of the first fire transition, if any.
    pub fn first_fired_at(&self) -> Option<u64> {
        self.first_fired_at
    }

    /// The rule under evaluation.
    pub fn rule(&self) -> &SloRule {
        &self.rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_counts_expire() {
        let mut w = WindowedMetric::new(1_000_000, 10).with_threshold(100);
        for i in 0..10u64 {
            w.observe(i * 100_000, 50 + i * 20);
        }
        assert_eq!(w.count(900_000), 10);
        assert!(w.bad(900_000) > 0, "values over 100 must count as bad");
        // 2 s later the whole window has rolled over.
        assert_eq!(w.count(2_900_000), 0);
        assert_eq!(w.bad(2_900_000), 0);
    }

    #[test]
    fn quantile_tracks_distribution() {
        let mut w = WindowedMetric::new(1_000_000, 10);
        for i in 0..100u64 {
            // 90 small values, 10 large.
            w.observe(i * 10_000, if i % 10 == 9 { 5_000 } else { 3 });
        }
        let t = 990_000;
        assert!(w.quantile_x100(t, 50) <= 4, "median must be small");
        assert!(
            w.quantile_x100(t, 99) >= 4096,
            "p99 must land in the large bucket, got {}",
            w.quantile_x100(t, 99)
        );
    }

    #[test]
    fn burn_rate_fires_and_resolves_deterministically() {
        let _g = crate::test_lock();
        let rule = SloRule {
            name: "test.latency",
            threshold: 1_000,
            budget_bp: 100, // 1%
            short_window_us: 500_000,
            long_window_us: 2_000_000,
            fire_burn_x100: 1000, // 10× budget = 10% bad
            min_count: 20,
        };
        let run = || {
            let mut mon = SloMonitor::new(rule);
            // Phase 1: healthy traffic — no alert.
            for i in 0..100u64 {
                mon.observe(i * 10_000, 100);
            }
            assert!(!mon.firing(), "healthy traffic must not fire");
            // Phase 2: half the observations breach the threshold.
            for i in 100..200u64 {
                mon.observe(i * 10_000, if i % 2 == 0 { 5_000 } else { 100 });
            }
            assert!(mon.firing(), "sustained 50% badness must fire");
            let fired_at = mon.first_fired_at().expect("fired");
            // Phase 3: recovery resolves the alert.
            for i in 200..400u64 {
                mon.observe(i * 10_000, 100);
            }
            assert!(!mon.firing(), "recovery must resolve");
            (fired_at, mon.fired_count())
        };
        let cap = crate::capture(crate::SinkKind::Ring(usize::MAX));
        let out1 = run();
        let rep1 = cap.finish();
        let cap = crate::capture(crate::SinkKind::Ring(usize::MAX));
        let out2 = run();
        let rep2 = cap.finish();
        assert_eq!(out1, out2, "alert instants must replay exactly");
        assert_eq!(rep1.digest, rep2.digest, "alert events must digest equal");
        let fires = rep1
            .entries
            .iter()
            .filter(|e| e.domain == "slo" && e.name == "alert.fire")
            .count();
        let resolves = rep1
            .entries
            .iter()
            .filter(|e| e.domain == "slo" && e.name == "alert.resolve")
            .count();
        assert_eq!(fires, 1, "exactly one fire transition");
        assert_eq!(resolves, 1, "exactly one resolve transition");
    }
}
