//! Process-wide typed metrics registry.
//!
//! Handles are interned by name and leaked to `&'static`, so a hot-path
//! increment is one relaxed atomic operation with no lock and no hash
//! lookup (call sites cache the handle in a `OnceLock` via the
//! [`counter!`](crate::counter!) family of macros). Counters and
//! histograms are monotonic totals; [`reset_metrics`] and per-handle
//! `reset` exist for benches and tests that need cold starts.
//!
//! Metrics are deliberately *not* part of the trace digest: parallel
//! workers increment them in nondeterministic interleavings, and cache
//! warmth (e.g. the sigcache) legitimately changes hit/miss splits
//! between otherwise identical runs. Totals are still deterministic
//! for serial workloads, which the chaos tests assert.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Monotonically increasing `u64` total.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the total. Bench/test helper: cold runs must not see a
    /// previous run's counts (mirrors `sigcache::clear`).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins `f64` value (stored as IEEE-754 bits in an atomic),
/// plus a high-water mark: the largest value the gauge has held since
/// creation or the last reset. The mark turns instantaneous gauges
/// (`mempool_size`, queue depths) into answerable capacity questions —
/// "how full did it ever get?" — without sampling.
pub struct Gauge {
    bits: AtomicU64,
    hwm_bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.raise_hwm(v);
    }

    /// Adds `delta` (CAS loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next_val = f64::from_bits(cur) + delta;
            match self.bits.compare_exchange_weak(
                cur,
                next_val.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.raise_hwm(next_val);
                    return;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// CAS-max on the high-water mark (compared as `f64`, not bit
    /// patterns, so negative values order correctly; NaN never raises).
    fn raise_hwm(&self, v: f64) {
        let mut cur = self.hwm_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.hwm_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Largest value held since creation or the last [`reset`](Gauge::reset)
    /// (0.0 if the gauge never rose above zero).
    #[inline]
    pub fn high_water(&self) -> f64 {
        f64::from_bits(self.hwm_bits.load(Ordering::Relaxed))
    }

    /// Resets value and high-water mark to 0.0.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.hwm_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Bucket upper bounds: powers of four (1, 4, 16, …, 4^15) plus a
/// catch-all. Fourteen doublings cover everything from per-tx gas to
/// per-block byte counts without tuning.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// Fixed-bucket histogram of `u64` observations.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Upper bound (inclusive) of bucket `i`; the last bucket is
    /// unbounded.
    pub fn bucket_bound(i: usize) -> u64 {
        if i + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            1u64 << (2 * i as u32)
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let mut idx = HISTOGRAM_BUCKETS - 1;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if v <= Self::bucket_bound(i) {
                idx = i;
                break;
            }
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Zeroes all buckets, count and sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`Histogram::bucket_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`) by linear interpolation
    /// within the bucket holding rank `q·count`. Bucket `i` is treated
    /// as the half-open value range `(bound(i-1), bound(i)]` with mass
    /// spread uniformly, so the estimate is exact when observations sit
    /// at interpolation-consistent positions and never off by more than
    /// one bucket width otherwise. The unbounded last bucket reports its
    /// lower bound (there is no upper edge to interpolate toward).
    /// Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.buckets.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let below = cum as f64;
            cum += c;
            if cum as f64 >= target {
                let lower = if i == 0 {
                    0.0
                } else {
                    Histogram::bucket_bound(i - 1) as f64
                };
                if i + 1 >= self.buckets.len() {
                    return lower;
                }
                let upper = Histogram::bucket_bound(i) as f64;
                let frac = ((target - below) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
        }
        // Unreachable for consistent snapshots (cum == count ≥ target),
        // but stay total: report the largest bounded edge.
        Histogram::bucket_bound(self.buckets.len().saturating_sub(2)) as f64
    }

    /// Median estimate (see [`quantile`](HistogramSnapshot::quantile)).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[derive(Default)]
struct Registry {
    counters: HashMap<&'static str, &'static Counter>,
    gauges: HashMap<&'static str, &'static Gauge>,
    histograms: HashMap<&'static str, &'static Histogram>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Interns and returns the counter named `name`. Prefer the
/// [`counter!`](crate::counter!) macro, which caches the handle per
/// call site.
pub fn counter_handle(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock();
    reg.counters.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Counter {
            value: AtomicU64::new(0),
        }))
    })
}

/// Interns and returns the gauge named `name`.
pub fn gauge_handle(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock();
    reg.gauges.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
            hwm_bits: AtomicU64::new(0f64.to_bits()),
        }))
    })
}

/// Interns and returns the histogram named `name`.
pub fn histogram_handle(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock();
    reg.histograms.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    })
}

/// Point-in-time copy of every registered metric, name-sorted so two
/// snapshots diff cleanly.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Gauge high-water marks by name (peak since creation/reset).
    pub gauge_hwms: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter delta `self - earlier` (names missing from `earlier`
    /// count from zero). Gauges/histograms are excluded: deltas on
    /// last-write-wins values are not meaningful.
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect()
    }

    /// One `name value` line per metric, sorted — the runbook's
    /// "human snapshot" format. Histogram lines carry mean and
    /// interpolated p50/p90/p99; gauges carry their high-water mark.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, v) in &self.gauge_hwms {
            out.push_str(&format!("gauge_hwm {k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k} count={} sum={} mean={:.3} p50={:.3} p90={:.3} p99={:.3}\n",
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            ));
        }
        out
    }

    /// Prometheus text exposition (the `obs_report` output scrapers
    /// ingest): counters/gauges as-is, gauge high-water marks as
    /// `<name>_hwm` gauges, histograms in cumulative-`le` form. Metric
    /// names are sanitized (`[^a-zA-Z0-9_]` → `_`) and prefixed
    /// `pds2_`.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 5);
            out.push_str("pds2_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                });
            }
            out
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
            if let Some(hwm) = self.gauge_hwms.get(k) {
                out.push_str(&format!("# TYPE {n}_hwm gauge\n{n}_hwm {hwm}\n"));
            }
        }
        for (k, h) in &self.histograms {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, c) in h.buckets.iter().enumerate() {
                cum += c;
                if i + 1 >= h.buckets.len() {
                    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n"));
                } else {
                    out.push_str(&format!(
                        "{n}_bucket{{le=\"{}\"}} {cum}\n",
                        Histogram::bucket_bound(i)
                    ));
                }
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock();
    let mut snap = MetricsSnapshot::default();
    for (name, c) in &reg.counters {
        snap.counters.insert((*name).to_string(), c.get());
    }
    for (name, g) in &reg.gauges {
        snap.gauges.insert((*name).to_string(), g.get());
        snap.gauge_hwms.insert((*name).to_string(), g.high_water());
    }
    for (name, h) in &reg.histograms {
        snap.histograms.insert((*name).to_string(), h.snapshot());
    }
    snap
}

/// Zeroes every registered metric (handles stay valid). Bench/test
/// helper; production code never resets.
pub fn reset_metrics() {
    let reg = registry().lock();
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    /// Quantiles on a synthetic distribution confined to one bucket:
    /// interpolation is exact because the bucket's value range and the
    /// rank fraction determine the answer completely.
    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        let _g = test_lock();
        let h = histogram_handle("test.metrics.q_single");
        h.reset();
        // 100 observations in bucket 1, value range (1, 4].
        for _ in 0..100 {
            h.observe(3);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), 1.0 + 3.0 * 0.50); // 2.5
        assert_eq!(s.quantile(0.90), 1.0 + 3.0 * 0.90); // 3.7
        assert_eq!(s.quantile(0.99), 1.0 + 3.0 * 0.99); // 3.97
        assert_eq!(s.p50(), s.quantile(0.5));
    }

    /// Quantiles across buckets: the rank walk picks the right bucket
    /// and interpolates against that bucket's own edges.
    #[test]
    fn quantiles_walk_across_buckets() {
        let _g = test_lock();
        let h = histogram_handle("test.metrics.q_multi");
        h.reset();
        // 50 observations in bucket 0 ([0, 1]), 50 in bucket 2 ((4, 16]).
        for _ in 0..50 {
            h.observe(1);
            h.observe(10);
        }
        let s = h.snapshot();
        // target 50 lands exactly on bucket 0's upper edge.
        assert_eq!(s.quantile(0.50), 1.0);
        // target 90: 40 of bucket 2's 50 → 4 + 12·0.8.
        assert_eq!(s.quantile(0.90), 4.0 + 12.0 * 0.8);
        // Degenerate and clamped arguments stay total.
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 16.0);
        assert_eq!(s.quantile(2.0), s.quantile(1.0));
        assert_eq!(HistogramSnapshot::default_empty().quantile(0.5), 0.0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> HistogramSnapshot {
            HistogramSnapshot {
                count: 0,
                sum: 0,
                buckets: vec![0; HISTOGRAM_BUCKETS],
            }
        }
    }

    /// The unbounded last bucket has no upper edge: quantiles landing
    /// there report its lower bound instead of inventing a value.
    #[test]
    fn quantile_in_unbounded_bucket_reports_lower_bound() {
        let _g = test_lock();
        let h = histogram_handle("test.metrics.q_tail");
        h.reset();
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(
            s.quantile(0.99),
            Histogram::bucket_bound(HISTOGRAM_BUCKETS - 2) as f64
        );
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let _g = test_lock();
        let g = gauge_handle("test.metrics.hwm");
        g.reset();
        g.set(5.0);
        g.set(2.0);
        assert_eq!(g.get(), 2.0);
        assert_eq!(g.high_water(), 5.0);
        g.add(10.0);
        assert_eq!(g.get(), 12.0);
        assert_eq!(g.high_water(), 12.0);
        g.add(-7.0);
        assert_eq!(g.high_water(), 12.0);
        let snap = snapshot();
        assert_eq!(snap.gauge_hwms["test.metrics.hwm"], 12.0);
        assert!(snap
            .render_text()
            .contains("gauge_hwm test.metrics.hwm 12\n"));
        g.reset();
        assert_eq!(g.high_water(), 0.0);
        // Negative excursions never raise the mark above its 0.0 floor.
        g.set(-3.0);
        assert_eq!(g.high_water(), 0.0);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_sanitized() {
        let _g = test_lock();
        let h = histogram_handle("test.metrics.prom-hist");
        h.reset();
        h.observe(1);
        h.observe(10);
        let snap = snapshot();
        let prom = snap.render_prometheus();
        assert!(prom.contains("# TYPE pds2_test_metrics_prom_hist histogram\n"));
        assert!(prom.contains("pds2_test_metrics_prom_hist_bucket{le=\"1\"} 1\n"));
        assert!(prom.contains("pds2_test_metrics_prom_hist_bucket{le=\"16\"} 2\n"));
        assert!(prom.contains("pds2_test_metrics_prom_hist_bucket{le=\"+Inf\"} 2\n"));
        assert!(prom.contains("pds2_test_metrics_prom_hist_sum 11\n"));
        assert!(prom.contains("pds2_test_metrics_prom_hist_count 2\n"));
        assert!(prom.contains("_hwm gauge\n"));
    }
}
