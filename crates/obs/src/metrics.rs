//! Process-wide typed metrics registry.
//!
//! Handles are interned by name and leaked to `&'static`, so a hot-path
//! increment is one relaxed atomic operation with no lock and no hash
//! lookup (call sites cache the handle in a `OnceLock` via the
//! [`counter!`](crate::counter!) family of macros). Counters and
//! histograms are monotonic totals; [`reset_metrics`] and per-handle
//! `reset` exist for benches and tests that need cold starts.
//!
//! Metrics are deliberately *not* part of the trace digest: parallel
//! workers increment them in nondeterministic interleavings, and cache
//! warmth (e.g. the sigcache) legitimately changes hit/miss splits
//! between otherwise identical runs. Totals are still deterministic
//! for serial workloads, which the chaos tests assert.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Monotonically increasing `u64` total.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the total. Bench/test helper: cold runs must not see a
    /// previous run's counts (mirrors `sigcache::clear`).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins `f64` value (stored as IEEE-754 bits in an atomic).
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (CAS loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets to 0.0.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Bucket upper bounds: powers of four (1, 4, 16, …, 4^15) plus a
/// catch-all. Fourteen doublings cover everything from per-tx gas to
/// per-block byte counts without tuning.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// Fixed-bucket histogram of `u64` observations.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Upper bound (inclusive) of bucket `i`; the last bucket is
    /// unbounded.
    pub fn bucket_bound(i: usize) -> u64 {
        if i + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            1u64 << (2 * i as u32)
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let mut idx = HISTOGRAM_BUCKETS - 1;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if v <= Self::bucket_bound(i) {
                idx = i;
                break;
            }
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Zeroes all buckets, count and sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`Histogram::bucket_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: HashMap<&'static str, &'static Counter>,
    gauges: HashMap<&'static str, &'static Gauge>,
    histograms: HashMap<&'static str, &'static Histogram>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Interns and returns the counter named `name`. Prefer the
/// [`counter!`](crate::counter!) macro, which caches the handle per
/// call site.
pub fn counter_handle(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock();
    reg.counters.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Counter {
            value: AtomicU64::new(0),
        }))
    })
}

/// Interns and returns the gauge named `name`.
pub fn gauge_handle(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock();
    reg.gauges.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }))
    })
}

/// Interns and returns the histogram named `name`.
pub fn histogram_handle(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock();
    reg.histograms.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    })
}

/// Point-in-time copy of every registered metric, name-sorted so two
/// snapshots diff cleanly.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter delta `self - earlier` (names missing from `earlier`
    /// count from zero). Gauges/histograms are excluded: deltas on
    /// last-write-wins values are not meaningful.
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect()
    }

    /// One `name value` line per metric, sorted — the runbook's
    /// "human snapshot" format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k} count={} sum={} mean={:.3}\n",
                h.count,
                h.sum,
                h.mean()
            ));
        }
        out
    }
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock();
    let mut snap = MetricsSnapshot::default();
    for (name, c) in &reg.counters {
        snap.counters.insert((*name).to_string(), c.get());
    }
    for (name, g) in &reg.gauges {
        snap.gauges.insert((*name).to_string(), g.get());
    }
    for (name, h) in &reg.histograms {
        snap.histograms.insert((*name).to_string(), h.snapshot());
    }
    snap
}

/// Zeroes every registered metric (handles stay valid). Bench/test
/// helper; production code never resets.
pub fn reset_metrics() {
    let reg = registry().lock();
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}
