//! Pluggable event sinks.
//!
//! The collector folds every event into the trace digest *before*
//! handing it to the sink, so the digest is sink-invariant: a ring
//! capture, a JSONL capture and a digest-only [`SinkKind::Null`]
//! capture of the same run report the same [`trace_digest`]
//! (`crate::trace_digest`). Sinks only decide what, if anything, is
//! retained for later inspection.

use crate::trace::{Event, SegmentCheckpoint};
use pds2_crypto::sha256::Digest;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Which sink a capture writes to.
#[derive(Clone, Debug)]
pub enum SinkKind {
    /// Keep the last `n` events in memory; [`finish`](crate::Capture::finish)
    /// returns them. The test sink.
    Ring(usize),
    /// Append one JSON object per event to the given file. The bench /
    /// offline-analysis sink.
    Jsonl(PathBuf),
    /// Retain nothing; only the digest and event count survive.
    Null,
}

pub(crate) enum ActiveSink {
    Ring {
        cap: usize,
        buf: VecDeque<Event>,
        evicted: u64,
    },
    Jsonl {
        path: PathBuf,
        writer: BufWriter<std::fs::File>,
    },
    Null,
}

impl ActiveSink {
    pub(crate) fn open(kind: SinkKind) -> std::io::Result<ActiveSink> {
        Ok(match kind {
            SinkKind::Ring(cap) => ActiveSink::Ring {
                cap: cap.max(1),
                buf: VecDeque::new(),
                evicted: 0,
            },
            SinkKind::Jsonl(path) => {
                let file = std::fs::File::create(&path)?;
                ActiveSink::Jsonl {
                    path,
                    writer: BufWriter::new(file),
                }
            }
            SinkKind::Null => ActiveSink::Null,
        })
    }

    pub(crate) fn record(&mut self, event: &Event) {
        match self {
            ActiveSink::Ring { cap, buf, evicted } => {
                if buf.len() >= *cap {
                    buf.pop_front();
                    *evicted += 1;
                }
                buf.push_back(event.clone());
            }
            ActiveSink::Jsonl { writer, .. } => {
                // Disk errors must not abort a simulation mid-run; the
                // capture report's path lets callers re-check the file.
                let _ = writer.write_all(event.to_json().as_bytes());
                let _ = writer.write_all(b"\n");
            }
            ActiveSink::Null => {}
        }
    }

    /// Records a closed segment's checkpoint. Only the JSONL sink
    /// persists anything (one checkpoint row); checkpoints are *not*
    /// folded into the trace digest, so this cannot break sink
    /// invariance. In-process captures read checkpoints off the
    /// [`TraceReport`](crate::TraceReport) instead.
    pub(crate) fn record_checkpoint(&mut self, cp: &SegmentCheckpoint) {
        if let ActiveSink::Jsonl { writer, .. } = self {
            let _ = writer.write_all(cp.to_json().as_bytes());
            let _ = writer.write_all(b"\n");
        }
    }

    /// Records the capture trailer (segment count, Merkle root over
    /// segment digests, final trace digest). JSONL sink only; lets
    /// `obs_diff` short-circuit identical files on one line.
    pub(crate) fn record_trailer(
        &mut self,
        segments: &[SegmentCheckpoint],
        root: Digest,
        digest: &Digest,
    ) {
        if let ActiveSink::Jsonl { writer, .. } = self {
            let line = format!(
                "{{\"segment_root\":\"{}\",\"segments\":{},\"trace_digest\":\"{}\"}}\n",
                root.to_hex(),
                segments.len(),
                digest.to_hex()
            );
            let _ = writer.write_all(line.as_bytes());
        }
    }

    /// (retained events, evicted count, jsonl path) at capture end.
    pub(crate) fn close(self) -> (Vec<Event>, u64, Option<PathBuf>) {
        match self {
            ActiveSink::Ring { buf, evicted, .. } => (buf.into(), evicted, None),
            ActiveSink::Jsonl { path, mut writer } => {
                let _ = writer.flush();
                (Vec::new(), 0, Some(path))
            }
            ActiveSink::Null => (Vec::new(), 0, None),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}
