//! Divergence forensics over segmented trace digests.
//!
//! Two captures whose [`trace_digest`](crate::trace_digest)s disagree
//! differ *somewhere*; this module finds the first place without
//! replaying either run or reading both event streams in full. The
//! collector's per-segment checkpoints ([`SegmentCheckpoint`]) chain as
//! `chained_i = H(chained_{i-1} ‖ digest_i)`, so chained-value equality
//! at index `i` certifies that the entire event prefix through segment
//! `i` is identical. Mismatch is therefore *monotone* in `i`, and the
//! first divergent segment is found by binary search over checkpoints —
//! O(log n) digest compares — after which only that one segment's event
//! bodies (≤ [`SEGMENT_EVENTS`](crate::SEGMENT_EVENTS) per side) are
//! materialized and compared to name the exact first divergent `seq`.
//!
//! This is the in-repo seed of ROADMAP item 1's checkpoint fraud proof:
//! a committee signs a segment-root; a challenger who disagrees bisects
//! the chains and opens a single segment instead of replaying the
//! side-chain.

use crate::trace::{Event, SegmentCheckpoint};
use pds2_crypto::sha256::Digest;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// One side of a diff: the checkpoint chain plus a way to fetch the
/// event lines of a single segment on demand.
struct Side {
    label: String,
    checkpoints: Vec<SegmentCheckpoint>,
    /// Event rows (canonical JSON, ascending `seq`): the full stream
    /// for in-process / fallback sides, only the divergent segment's
    /// slice for file-backed bisection.
    events: Vec<(u64, String)>,
}

/// What the diff concluded, machine-readable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Same events, same digests.
    Identical,
    /// First divergent event named exactly.
    DivergesAt {
        /// `seq` of the first event that differs between the captures.
        seq: u64,
        /// Segment index the divergence falls in.
        segment: u64,
        /// `domain` of capture A's event at `seq` (empty if absent).
        domain_a: String,
        /// `name` of capture A's event at `seq` (empty if absent).
        name_a: String,
        /// `domain` of capture B's event at `seq` (empty if absent).
        domain_b: String,
        /// `name` of capture B's event at `seq` (empty if absent).
        name_b: String,
    },
    /// One capture is a strict event-prefix of the other: no event
    /// disagrees, one side simply stops early.
    PrefixOf {
        /// Label of the shorter capture.
        shorter: String,
        /// Events both captures share (= the shorter side's length).
        common_events: u64,
    },
    /// Segment digests disagree but every rendered event row matches:
    /// the divergence is in the canonical binary encoding only (e.g. a
    /// field changed integer width without changing its printed value).
    DigestOnly {
        /// Segment index whose digests disagree.
        segment: u64,
    },
}

/// One event row in the ±k context window around a divergence.
#[derive(Clone, Debug)]
pub struct ContextLine {
    /// Event `seq`.
    pub seq: u64,
    /// Capture A's row at this seq (canonical JSON), if present.
    pub a: Option<String>,
    /// Capture B's row at this seq (canonical JSON), if present.
    pub b: Option<String>,
    /// Whether this is the first divergent row.
    pub divergent: bool,
}

/// Full result of diffing two captures.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Label of capture A (file path or supplied name).
    pub label_a: String,
    /// Label of capture B.
    pub label_b: String,
    /// The conclusion.
    pub verdict: Verdict,
    /// ±k event rows around the divergence (empty when identical).
    pub context: Vec<ContextLine>,
    /// Domain classification: the divergent event's domain, or
    /// `"cross-domain"` when the two sides disagree on it, or empty.
    pub classification: String,
    /// Checkpoint digests compared during bisection.
    pub checkpoints_compared: u64,
    /// Event bodies materialized across both sides — the cost the
    /// bisection bounds to O(n/segment + segment).
    pub bodies_read: u64,
    /// Whether checkpoint bisection was used (false = linear fallback
    /// because at least one capture carried no checkpoints).
    pub bisected: bool,
}

impl DiffReport {
    /// Whether the captures were identical.
    pub fn identical(&self) -> bool {
        self.verdict == Verdict::Identical
    }

    /// The first divergent `seq`, if any (prefix divergence reports the
    /// first seq present on only one side).
    pub fn divergent_seq(&self) -> Option<u64> {
        match &self.verdict {
            Verdict::Identical => None,
            Verdict::DivergesAt { seq, .. } => Some(*seq),
            Verdict::PrefixOf { common_events, .. } => Some(*common_events),
            Verdict::DigestOnly { .. } => None,
        }
    }

    /// One-line JSON verdict for machine consumption (CI, harnesses).
    pub fn to_json(&self) -> String {
        use crate::sink::escape_json;
        let mut s = String::with_capacity(256);
        s.push_str("{\"verdict\":");
        match &self.verdict {
            Verdict::Identical => s.push_str("\"identical\""),
            Verdict::DivergesAt {
                seq,
                segment,
                domain_a,
                name_a,
                domain_b,
                name_b,
            } => {
                s.push_str(&format!("\"diverges\",\"seq\":{seq},\"segment\":{segment}"));
                for (key, val) in [
                    ("domain_a", domain_a),
                    ("name_a", name_a),
                    ("domain_b", domain_b),
                    ("name_b", name_b),
                ] {
                    s.push_str(&format!(",\"{key}\":\""));
                    escape_json(val, &mut s);
                    s.push('"');
                }
            }
            Verdict::PrefixOf {
                shorter,
                common_events,
            } => {
                s.push_str(&format!("\"prefix\",\"common_events\":{common_events}"));
                s.push_str(",\"shorter\":\"");
                escape_json(shorter, &mut s);
                s.push('"');
            }
            Verdict::DigestOnly { segment } => {
                s.push_str(&format!("\"digest_only\",\"segment\":{segment}"));
            }
        }
        if !self.classification.is_empty() {
            s.push_str(",\"classification\":\"");
            escape_json(&self.classification, &mut s);
            s.push('"');
        }
        s.push_str(&format!(
            ",\"checkpoints_compared\":{},\"bodies_read\":{},\"bisected\":{}}}",
            self.checkpoints_compared, self.bodies_read, self.bisected
        ));
        s
    }

    /// Human-readable report with the context window.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "obs_diff: A = {}\n          B = {}\n",
            self.label_a, self.label_b
        ));
        match &self.verdict {
            Verdict::Identical => out.push_str("verdict: identical\n"),
            Verdict::DivergesAt {
                seq,
                segment,
                domain_a,
                name_a,
                domain_b,
                name_b,
            } => {
                out.push_str(&format!(
                    "verdict: first divergence at seq {seq} (segment {segment}, domain {})\n",
                    self.classification
                ));
                out.push_str(&format!("  A: {domain_a}.{name_a}\n"));
                out.push_str(&format!("  B: {domain_b}.{name_b}\n"));
            }
            Verdict::PrefixOf {
                shorter,
                common_events,
            } => out.push_str(&format!(
                "verdict: {shorter} is a strict prefix ({common_events} common events)\n"
            )),
            Verdict::DigestOnly { segment } => out.push_str(&format!(
                "verdict: segment {segment} digests disagree but all rendered rows match \
                 (binary-encoding-level divergence; compare raw captures)\n"
            )),
        }
        out.push_str(&format!(
            "cost: {} checkpoint compares, {} event bodies read ({})\n",
            self.checkpoints_compared,
            self.bodies_read,
            if self.bisected {
                "bisected"
            } else {
                "linear fallback: no checkpoints"
            }
        ));
        if !self.context.is_empty() {
            out.push_str("context:\n");
            for line in &self.context {
                let marker = if line.divergent { ">>" } else { "  " };
                match (&line.a, &line.b) {
                    (Some(a), Some(b)) if a == b => {
                        out.push_str(&format!("{marker} {:>8}  = {a}\n", line.seq));
                    }
                    (a, b) => {
                        out.push_str(&format!(
                            "{marker} {:>8}  A {}\n",
                            line.seq,
                            a.as_deref().unwrap_or("<absent>")
                        ));
                        out.push_str(&format!(
                            "{marker} {:>8}  B {}\n",
                            "",
                            b.as_deref().unwrap_or("<absent>")
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Extracts an unsigned integer field from a canonical JSON row.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a string field from a canonical JSON row (no unescaping —
/// domains/names are static identifiers).
fn json_str<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

fn parse_checkpoint(line: &str) -> Option<SegmentCheckpoint> {
    Some(SegmentCheckpoint {
        index: json_u64(line, "checkpoint")?,
        start_seq: json_u64(line, "start_seq")?,
        end_seq: json_u64(line, "end_seq")?,
        digest: Digest::from_hex(json_str(line, "digest")?)?,
        chained: Digest::from_hex(json_str(line, "chained")?)?,
    })
}

fn is_event_line(line: &str) -> bool {
    line.starts_with("{\"seq\":")
}

/// Loads one side from a JSONL capture. Only checkpoint rows are
/// retained; event rows inside `want` (a `seq` range) are kept, the
/// rest are skipped without inspection beyond the line prefix.
fn load_file(
    path: &Path,
    want: Option<(u64, u64)>,
    bodies_read: &mut u64,
) -> std::io::Result<Side> {
    let file = std::fs::File::open(path)?;
    let mut side = Side {
        label: path.display().to_string(),
        checkpoints: Vec::new(),
        events: Vec::new(),
    };
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.starts_with("{\"checkpoint\"") {
            if let Some(cp) = parse_checkpoint(&line) {
                side.checkpoints.push(cp);
            }
        } else if is_event_line(&line) {
            let seq = json_u64(&line, "seq").unwrap_or(0);
            let keep = match want {
                None => true,
                Some((lo, hi)) => seq >= lo && seq <= hi,
            };
            if keep {
                *bodies_read += 1;
                side.events.push((seq, line));
            }
        }
    }
    Ok(side)
}

fn side_from_report(report: &crate::TraceReport, label: &str, bodies_read: &mut u64) -> Side {
    *bodies_read += report.entries.len() as u64;
    Side {
        label: label.to_string(),
        checkpoints: report.segments.clone(),
        events: report
            .entries
            .iter()
            .map(|e: &Event| (e.seq, e.to_json()))
            .collect(),
    }
}

/// First checkpoint index whose `chained` digests disagree, by binary
/// search (mismatch is monotone: a divergent segment poisons every
/// later chained value). Returns `(index, compares)`; `None` index when
/// the common prefix of checkpoints agrees entirely.
fn bisect_chains(a: &[SegmentCheckpoint], b: &[SegmentCheckpoint]) -> (Option<usize>, u64) {
    let common = a.len().min(b.len());
    let mut compares = 0u64;
    if common == 0 {
        return (None, compares);
    }
    let mismatch = |i: usize| a[i].chained != b[i].chained || a[i].end_seq != b[i].end_seq;
    compares += 1;
    if !mismatch(common - 1) {
        return (None, compares);
    }
    let (mut lo, mut hi) = (0usize, common - 1); // invariant: mismatch(hi)
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        compares += 1;
        if mismatch(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (Some(lo), compares)
}

/// Compares the two sides' event rows over `[start, end]` and returns
/// the first position where they disagree, as
/// `(seq, row_a, row_b)`; `None` when every shared row matches and both
/// sides end together.
#[allow(clippy::type_complexity)]
fn first_divergent_row(
    a: &[(u64, String)],
    b: &[(u64, String)],
    start: u64,
    end: u64,
) -> Option<(u64, Option<String>, Option<String>)> {
    let slice = |side: &[(u64, String)]| -> Vec<(u64, String)> {
        side.iter()
            .filter(|(seq, _)| *seq >= start && *seq <= end)
            .cloned()
            .collect()
    };
    let (ra, rb) = (slice(a), slice(b));
    let n = ra.len().max(rb.len());
    for i in 0..n {
        match (ra.get(i), rb.get(i)) {
            (Some((sa, la)), Some((sb, lb))) => {
                if sa != sb || la != lb {
                    return Some(((*sa).min(*sb), Some(la.clone()), Some(lb.clone())));
                }
            }
            (Some((sa, la)), None) => return Some((*sa, Some(la.clone()), None)),
            (None, Some((sb, lb))) => return Some((*sb, None, Some(lb.clone()))),
            (None, None) => unreachable!(),
        }
    }
    None
}

fn context_window(a: &[(u64, String)], b: &[(u64, String)], seq: u64, k: u64) -> Vec<ContextLine> {
    let lo = seq.saturating_sub(k);
    let hi = seq + k;
    let find = |side: &[(u64, String)], s: u64| -> Option<String> {
        side.iter()
            .find(|(seq, _)| *seq == s)
            .map(|(_, line)| line.clone())
    };
    (lo..=hi)
        .filter_map(|s| {
            let (ra, rb) = (find(a, s), find(b, s));
            if ra.is_none() && rb.is_none() {
                return None;
            }
            Some(ContextLine {
                seq: s,
                a: ra,
                b: rb,
                divergent: s == seq,
            })
        })
        .collect()
}

fn classify(domain_a: &str, domain_b: &str) -> String {
    match (domain_a.is_empty(), domain_b.is_empty()) {
        (true, true) => String::new(),
        (false, true) => domain_a.to_string(),
        (true, false) => domain_b.to_string(),
        (false, false) if domain_a == domain_b => domain_a.to_string(),
        _ => "cross-domain".to_string(),
    }
}

/// Diffs two sides whose checkpoints and (relevant) events are loaded.
fn diff_sides(
    a: Side,
    b: Side,
    seg: Option<usize>,
    checkpoints_compared: u64,
    bodies_read: u64,
    context_k: u64,
    bisected: bool,
) -> DiffReport {
    let (range, segment_index) = match seg {
        Some(i) => (
            (
                a.checkpoints[i].start_seq,
                a.checkpoints[i].end_seq.max(b.checkpoints[i].end_seq),
            ),
            i as u64,
        ),
        None => ((0, u64::MAX), 0),
    };
    let divergence = first_divergent_row(&a.events, &b.events, range.0, range.1);
    let mut report = DiffReport {
        label_a: a.label.clone(),
        label_b: b.label.clone(),
        verdict: Verdict::Identical,
        context: Vec::new(),
        classification: String::new(),
        checkpoints_compared,
        bodies_read,
        bisected,
    };
    match divergence {
        // One side's stream ends where the other continues, every
        // shared row having matched: a strict prefix, not a conflict.
        Some((seq, None, Some(_))) => {
            report.context = context_window(&a.events, &b.events, seq, context_k);
            report.verdict = Verdict::PrefixOf {
                shorter: a.label.clone(),
                common_events: seq,
            };
            report
        }
        Some((seq, Some(_), None)) => {
            report.context = context_window(&a.events, &b.events, seq, context_k);
            report.verdict = Verdict::PrefixOf {
                shorter: b.label.clone(),
                common_events: seq,
            };
            report
        }
        Some((seq, row_a, row_b)) => {
            let domain_a = row_a
                .as_deref()
                .and_then(|l| json_str(l, "domain"))
                .unwrap_or("")
                .to_string();
            let name_a = row_a
                .as_deref()
                .and_then(|l| json_str(l, "name"))
                .unwrap_or("")
                .to_string();
            let domain_b = row_b
                .as_deref()
                .and_then(|l| json_str(l, "domain"))
                .unwrap_or("")
                .to_string();
            let name_b = row_b
                .as_deref()
                .and_then(|l| json_str(l, "name"))
                .unwrap_or("")
                .to_string();
            report.classification = classify(&domain_a, &domain_b);
            report.context = context_window(&a.events, &b.events, seq, context_k);
            report.verdict = Verdict::DivergesAt {
                seq,
                segment: seg.map(|i| i as u64).unwrap_or(seq / crate::SEGMENT_EVENTS),
                domain_a,
                name_a,
                domain_b,
                name_b,
            };
            report
        }
        None => {
            // No row disagreed in the examined range.
            match seg {
                Some(_) => {
                    // This segment's digests disagreed yet every
                    // rendered row matched: the divergence lives only
                    // in the canonical binary encoding.
                    report.verdict = Verdict::DigestOnly {
                        segment: segment_index,
                    };
                    report
                }
                None => {
                    // Full-stream compare with no disagreement: check
                    // for a pure length difference.
                    let (na, nb) = (a.events.len() as u64, b.events.len() as u64);
                    if na != nb {
                        let shorter = if na < nb { &a.label } else { &b.label };
                        report.verdict = Verdict::PrefixOf {
                            shorter: shorter.clone(),
                            common_events: na.min(nb),
                        };
                    }
                    report
                }
            }
        }
    }
}

/// Diffs two JSONL captures on disk. Uses checkpoint bisection when
/// both files carry checkpoint rows (reading only O(n/segment)
/// checkpoints plus one segment of event bodies per side); falls back
/// to a full linear compare otherwise. `context_k` is the ± window of
/// event rows reported around the divergence.
pub fn diff_files(path_a: &Path, path_b: &Path, context_k: u64) -> std::io::Result<DiffReport> {
    // Pass 1: checkpoints only (event bodies skipped by line prefix).
    let mut bodies = 0u64;
    let probe_a = load_file(path_a, Some((1, 0)), &mut bodies)?;
    let probe_b = load_file(path_b, Some((1, 0)), &mut bodies)?;
    let have_checkpoints = !probe_a.checkpoints.is_empty() && !probe_b.checkpoints.is_empty();
    if !have_checkpoints {
        // Legacy captures: linear compare of everything.
        let mut bodies = 0u64;
        let a = load_file(path_a, None, &mut bodies)?;
        let b = load_file(path_b, None, &mut bodies)?;
        return Ok(diff_sides(a, b, None, 0, bodies, context_k, false));
    }
    let (seg, compares) = bisect_chains(&probe_a.checkpoints, &probe_b.checkpoints);
    let seg = match seg {
        Some(i) => i,
        None => {
            // Common checkpoint prefix agrees; any divergence is a
            // trailing-length difference.
            let (ca, cb) = (&probe_a.checkpoints, &probe_b.checkpoints);
            if ca.len() == cb.len() {
                return Ok(DiffReport {
                    label_a: probe_a.label,
                    label_b: probe_b.label,
                    verdict: Verdict::Identical,
                    context: Vec::new(),
                    classification: String::new(),
                    checkpoints_compared: compares,
                    bodies_read: 0,
                    bisected: true,
                });
            }
            let (short, long) = if ca.len() < cb.len() {
                (&probe_a, &probe_b)
            } else {
                (&probe_b, &probe_a)
            };
            let common = short
                .checkpoints
                .last()
                .map(|cp| cp.end_seq + 1)
                .unwrap_or(0);
            let _ = long;
            return Ok(DiffReport {
                label_a: probe_a.label.clone(),
                label_b: probe_b.label.clone(),
                verdict: Verdict::PrefixOf {
                    shorter: short.label.clone(),
                    common_events: common,
                },
                context: Vec::new(),
                classification: String::new(),
                checkpoints_compared: compares,
                bodies_read: 0,
                bisected: true,
            });
        }
    };
    // Pass 2: event bodies of the divergent segment only.
    let range_a = (
        probe_a.checkpoints[seg].start_seq,
        probe_a.checkpoints[seg]
            .end_seq
            .max(probe_b.checkpoints[seg].end_seq)
            + context_k,
    );
    let mut bodies = 0u64;
    let mut a = load_file(
        path_a,
        Some((range_a.0.saturating_sub(context_k), range_a.1)),
        &mut bodies,
    )?;
    let mut b = load_file(
        path_b,
        Some((range_a.0.saturating_sub(context_k), range_a.1)),
        &mut bodies,
    )?;
    a.checkpoints = probe_a.checkpoints;
    b.checkpoints = probe_b.checkpoints;
    Ok(diff_sides(
        a,
        b,
        Some(seg),
        compares,
        bodies,
        context_k,
        true,
    ))
}

/// Diffs two in-process capture summaries (ring sinks must have
/// retained all events for exact localization; evicted events diff as
/// absent rows). Checkpoint bisection narrows the compare to one
/// segment exactly as the file path does.
pub fn diff_reports(
    a: &crate::TraceReport,
    b: &crate::TraceReport,
    label_a: &str,
    label_b: &str,
    context_k: u64,
) -> DiffReport {
    let mut bodies = 0u64;
    let side_a = side_from_report(a, label_a, &mut bodies);
    let side_b = side_from_report(b, label_b, &mut bodies);
    let (seg, compares) = bisect_chains(&side_a.checkpoints, &side_b.checkpoints);
    match seg {
        Some(i) => {
            // Only the divergent segment's bodies count as "read".
            let (lo, hi) = (
                side_a.checkpoints[i].start_seq,
                side_a.checkpoints[i]
                    .end_seq
                    .max(side_b.checkpoints[i].end_seq),
            );
            let read = side_a
                .events
                .iter()
                .chain(side_b.events.iter())
                .filter(|(s, _)| *s >= lo && *s <= hi)
                .count() as u64;
            diff_sides(side_a, side_b, Some(i), compares, read, context_k, true)
        }
        None => {
            let same_len = side_a.checkpoints.len() == side_b.checkpoints.len();
            if same_len && !side_a.checkpoints.is_empty() {
                DiffReport {
                    label_a: side_a.label,
                    label_b: side_b.label,
                    verdict: Verdict::Identical,
                    context: Vec::new(),
                    classification: String::new(),
                    checkpoints_compared: compares,
                    bodies_read: 0,
                    bisected: true,
                }
            } else if !side_a.checkpoints.is_empty() && !side_b.checkpoints.is_empty() {
                let (short_label, common) = {
                    let (s, l) = if side_a.checkpoints.len() < side_b.checkpoints.len() {
                        (&side_a, &side_b)
                    } else {
                        (&side_b, &side_a)
                    };
                    let _ = l;
                    (
                        s.label.clone(),
                        s.checkpoints.last().map(|c| c.end_seq + 1).unwrap_or(0),
                    )
                };
                DiffReport {
                    label_a: side_a.label,
                    label_b: side_b.label,
                    verdict: Verdict::PrefixOf {
                        shorter: short_label,
                        common_events: common,
                    },
                    context: Vec::new(),
                    classification: String::new(),
                    checkpoints_compared: compares,
                    bodies_read: 0,
                    bisected: true,
                }
            } else {
                // One or both captures empty: linear compare.
                diff_sides(side_a, side_b, None, compares, bodies, context_k, false)
            }
        }
    }
}

/// First height at which two chained block-checkpoint lists disagree
/// (`(height, digest)` pairs, ascending height, digests chained by
/// construction — a block hash commits to its parent). `None` when the
/// common prefix agrees and lengths match; a pure length difference
/// reports the first height present on one side only. This is the
/// replica-forensics hook: `ChainReplica` records one pair per applied
/// block, and a chaos harness localizes a fork to its height without
/// comparing block bodies.
pub fn first_divergent_height(a: &[(u64, Digest)], b: &[(u64, Digest)]) -> Option<u64> {
    let common = a.len().min(b.len());
    if common > 0 && a[common - 1] == b[common - 1] {
        // Shared prefix agrees (chaining makes mismatch monotone).
        return match a.len().cmp(&b.len()) {
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Less => Some(b[common].0),
            std::cmp::Ordering::Greater => Some(a[common].0),
        };
    }
    if common == 0 {
        return match a.len().cmp(&b.len()) {
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Less => Some(b[0].0),
            std::cmp::Ordering::Greater => Some(a[0].0),
        };
    }
    // Binary search the first mismatching index.
    let (mut lo, mut hi) = (0usize, common - 1); // invariant: a[hi] != b[hi]
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if a[mid] != b[mid] {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(a[lo].0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SinkKind, Stamp};

    fn run(n: u64, skip: Option<u64>, extra: Option<u64>) {
        for i in 0..n {
            if Some(i) == skip {
                continue;
            }
            crate::event!("test", "tick", Stamp::Sim(i), "i" => i);
            if Some(i) == extra {
                crate::event!("test", "intruder", Stamp::Sim(i));
            }
        }
    }

    #[test]
    fn identical_reports_diff_identical() {
        let _g = crate::test_lock();
        let cap = crate::capture(SinkKind::Ring(usize::MAX));
        run(100, None, None);
        let a = cap.finish();
        let cap = crate::capture(SinkKind::Ring(usize::MAX));
        run(100, None, None);
        let b = cap.finish();
        assert_eq!(a.digest, b.digest);
        let d = diff_reports(&a, &b, "a", "b", 3);
        assert!(d.identical(), "{:?}", d.verdict);
    }

    #[test]
    fn in_process_divergence_is_localized() {
        let _g = crate::test_lock();
        let cap = crate::capture(SinkKind::Ring(usize::MAX));
        run(3000, None, None);
        let a = cap.finish();
        let cap = crate::capture(SinkKind::Ring(usize::MAX));
        run(3000, None, Some(2500));
        let b = cap.finish();
        let d = diff_reports(&a, &b, "a", "b", 3);
        // Event 2500's intruder lands at seq 2501 in run B.
        assert_eq!(d.divergent_seq(), Some(2501), "{:?}", d.verdict);
        assert!(d.bisected);
        assert_eq!(d.classification, "test");
        assert!(
            d.bodies_read <= 2 * (crate::SEGMENT_EVENTS + 16),
            "bisection must confine body reads to one segment, read {}",
            d.bodies_read
        );
        assert!(!d.context.is_empty());
    }

    #[test]
    fn first_divergent_height_bisects() {
        let dg = |x: u64| pds2_crypto::sha256::sha256(&x.to_le_bytes());
        let a: Vec<(u64, Digest)> = (1..=50).map(|h| (h, dg(h))).collect();
        let mut b = a.clone();
        assert_eq!(first_divergent_height(&a, &b), None);
        // Fork at height 33: every later digest differs too.
        for (h, d) in b.iter_mut().skip(32) {
            *d = dg(*h + 1000);
        }
        assert_eq!(first_divergent_height(&a, &b), Some(33));
        // Pure extension.
        let c: Vec<(u64, Digest)> = (1..=40).map(|h| (h, dg(h))).collect();
        assert_eq!(first_divergent_height(&a, &c), Some(41));
    }
}
