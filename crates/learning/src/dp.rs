//! Differential-privacy mechanisms and budget accounting (§IV-D).
//!
//! The paper proposes that "executors could statically or dynamically
//! analyze each workload to assess the risk of privacy leaks and apply the
//! most suitable measures to limit it", citing differential privacy. This
//! module provides the Laplace and Gaussian mechanisms, calibration
//! helpers, and a simple composition accountant, which experiment E11 uses
//! to trade attack advantage against model accuracy.

use rand::Rng;

/// Samples Laplace(0, b) noise.
pub fn laplace_noise<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(scale > 0.0, "scale must be positive");
    // Inverse CDF: u uniform in (-0.5, 0.5].
    let u: f64 = rng.random::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-300).ln()
}

/// Samples Gaussian(0, sigma²) noise (Box–Muller).
pub fn gaussian_noise<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The Laplace mechanism: releases `value + Lap(sensitivity / epsilon)`,
/// which is ε-differentially private for the given L1 sensitivity.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    value: f64,
    sensitivity: f64,
    epsilon: f64,
) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    value + laplace_noise(rng, sensitivity / epsilon)
}

/// Gaussian-mechanism noise stddev for (ε, δ)-DP with L2 sensitivity
/// `sensitivity` (the classic analytic bound, valid for ε ≤ 1).
pub fn gaussian_sigma(sensitivity: f64, epsilon: f64, delta: f64) -> f64 {
    assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0, "bad (ε, δ)");
    sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon
}

/// The Gaussian mechanism on a vector (adds iid noise per coordinate).
pub fn gaussian_mechanism_vec<R: Rng + ?Sized>(
    rng: &mut R,
    values: &mut [f64],
    sensitivity: f64,
    epsilon: f64,
    delta: f64,
) {
    let sigma = gaussian_sigma(sensitivity, epsilon, delta);
    for v in values {
        *v += gaussian_noise(rng, sigma);
    }
}

/// Tracks cumulative privacy spend under basic (linear) composition.
///
/// Basic composition is pessimistic compared to moments accounting, but it
/// is exact as an upper bound and keeps the accounting auditable — the
/// governance layer logs the accumulated ε per provider.
#[derive(Clone, Debug, Default)]
pub struct PrivacyAccountant {
    epsilon: f64,
    delta: f64,
    releases: u64,
}

impl PrivacyAccountant {
    /// Fresh accountant with zero spend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (ε, δ) release.
    pub fn spend(&mut self, epsilon: f64, delta: f64) {
        assert!(epsilon >= 0.0 && delta >= 0.0);
        self.epsilon += epsilon;
        self.delta += delta;
        self.releases += 1;
        pds2_obs::counter!("learning.dp_releases").inc();
        pds2_obs::gauge!("learning.dp_epsilon_spent").add(epsilon);
        pds2_obs::event!(
            "learning",
            "dp.spend",
            pds2_obs::Stamp::None,
            "epsilon" => epsilon,
            "delta" => delta,
            "total_epsilon" => self.epsilon,
        );
    }

    /// Total ε under basic composition.
    pub fn total_epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Total δ under basic composition.
    pub fn total_delta(&self) -> f64 {
        self.delta
    }

    /// Number of releases recorded.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Whether the spend stays within a budget.
    pub fn within(&self, epsilon_budget: f64, delta_budget: f64) -> bool {
        self.epsilon <= epsilon_budget && self.delta <= delta_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = 2.0;
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(&mut rng, b)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        // Laplace variance = 2b².
        assert!((var - 8.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn gaussian_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = 3.0;
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian_noise(&mut rng, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let spread = |eps: f64| {
            let mut rng2 = StdRng::seed_from_u64(4);
            (0..2000)
                .map(|_| (laplace_mechanism(&mut rng2, 0.0, 1.0, eps)).abs())
                .sum::<f64>()
                / 2000.0
        };
        let _ = &mut rng;
        assert!(spread(0.1) > spread(1.0) * 5.0);
    }

    #[test]
    fn gaussian_sigma_calibration() {
        // Known closed form: σ = Δ√(2 ln(1.25/δ)) / ε.
        let s = gaussian_sigma(1.0, 1.0, 1e-5);
        assert!((s - (2.0f64 * (1.25f64 / 1e-5).ln()).sqrt()).abs() < 1e-9);
        // Tighter ε or δ → more noise.
        assert!(gaussian_sigma(1.0, 0.5, 1e-5) > s);
        assert!(gaussian_sigma(1.0, 1.0, 1e-9) > s);
    }

    #[test]
    fn accountant_composes_linearly() {
        let mut acc = PrivacyAccountant::new();
        for _ in 0..10 {
            acc.spend(0.1, 1e-6);
        }
        assert!((acc.total_epsilon() - 1.0).abs() < 1e-9);
        assert!((acc.total_delta() - 1e-5).abs() < 1e-12);
        assert_eq!(acc.releases(), 10);
        assert!(acc.within(1.0, 1e-4));
        assert!(!acc.within(0.5, 1e-4));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = laplace_mechanism(&mut rng, 0.0, 1.0, 0.0);
    }

    #[test]
    fn mechanism_vec_perturbs_in_place() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v = vec![1.0; 100];
        gaussian_mechanism_vec(&mut rng, &mut v, 1.0, 1.0, 1e-5);
        assert!(v.iter().any(|&x| (x - 1.0).abs() > 1e-6));
    }
}
