//! Federated learning (FedAvg) — the centralized baseline of §III-C.
//!
//! A coordinator samples a fraction of clients each round; sampled clients
//! train locally from the global model and return their parameters, which
//! the server averages weighted by shard size. The implementation exposes
//! exactly the failure modes the paper attributes to the central
//! coordinator: aggregator load scaling with participation, stalling when
//! the coordinator fails, and wasted rounds when sampled clients are
//! offline.

use pds2_ml::data::Dataset;
use pds2_ml::linalg::weighted_mean;
use pds2_ml::model::Model;
use pds2_ml::sgd::{self, SgdConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FedAvg hyperparameters.
#[derive(Clone, Debug)]
pub struct FedConfig {
    /// Fraction of clients sampled per round.
    pub client_fraction: f64,
    /// Local epochs per sampled client per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Local learning rate.
    pub learning_rate: f64,
    /// Number of federated rounds.
    pub rounds: usize,
    /// RNG seed (client sampling).
    pub seed: u64,
}

impl Default for FedConfig {
    fn default() -> Self {
        FedConfig {
            client_fraction: 0.3,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.1,
            rounds: 50,
            seed: 0,
        }
    }
}

/// Per-round telemetry from a FedAvg run.
#[derive(Clone, Debug, Default)]
pub struct FedStats {
    /// Model transfers (down + up) over the whole run.
    pub models_transferred: u64,
    /// Bytes moved (param vectors, 8 bytes per element + overhead).
    pub bytes_transferred: u64,
    /// Model transfers handled by the coordinator alone (its load).
    pub coordinator_transfers: u64,
    /// Rounds in which no sampled client was available.
    pub wasted_rounds: u64,
}

/// Outcome of a FedAvg run.
#[derive(Clone, Debug)]
pub struct FedOutcome<M: Model> {
    /// Final global model.
    pub model: M,
    /// Test accuracy after each round (if a test set was supplied).
    pub accuracy_curve: Vec<f64>,
    /// Telemetry.
    pub stats: FedStats,
}

/// Availability oracle: maps `(round, client)` to online status.
pub type Availability<'a> = &'a dyn Fn(usize, usize) -> bool;

/// Runs FedAvg over `shards`, evaluating on `test` after every round.
///
/// * `availability` — client availability per round (models churn);
/// * `coordinator_alive_until` — round after which the coordinator is
///   dead; aggregation stops and the model freezes (E6's coordinator-
///   failure scenario). Use `usize::MAX` for no failure.
pub fn run_fedavg<M, F>(
    shards: &[Dataset],
    test: &Dataset,
    cfg: &FedConfig,
    make_model: F,
    availability: Availability<'_>,
    coordinator_alive_until: usize,
) -> FedOutcome<M>
where
    M: Model,
    F: Fn() -> M,
{
    assert!(!shards.is_empty(), "need at least one client");
    assert!(
        (0.0..=1.0).contains(&cfg.client_fraction) && cfg.client_fraction > 0.0,
        "client fraction must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut global = make_model();
    let n_params = global.n_params() as u64;
    let model_bytes = n_params * 8 + 16;
    let mut stats = FedStats::default();
    let mut accuracy_curve = Vec::with_capacity(cfg.rounds);
    let sample_size = ((shards.len() as f64 * cfg.client_fraction).round() as usize).max(1);

    // One causal trace per experiment; each round is a child span.
    let root = pds2_obs::new_trace(
        "learning",
        "fed.experiment",
        pds2_obs::Stamp::Round(0),
        vec![
            ("clients", pds2_obs::Value::from(shards.len() as u64)),
            ("rounds", pds2_obs::Value::from(cfg.rounds as u64)),
        ],
    );
    for round in 0..cfg.rounds {
        if round >= coordinator_alive_until {
            // Coordinator dead: nothing aggregates; model frozen.
            accuracy_curve.push(eval(&global, test));
            continue;
        }
        // Sample distinct clients.
        let mut pool: Vec<usize> = (0..shards.len()).collect();
        for i in (1..pool.len()).rev() {
            let j = rng.random_range(0..=i);
            pool.swap(i, j);
        }
        let sampled = &pool[..sample_size];
        let mut updates: Vec<Vec<f64>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for &client in sampled {
            if !availability(round, client) || shards[client].is_empty() {
                continue;
            }
            // Download global, train locally, upload.
            stats.models_transferred += 2;
            stats.bytes_transferred += 2 * model_bytes;
            stats.coordinator_transfers += 2;
            let mut local = global.clone();
            sgd::train(
                &mut local,
                &shards[client],
                &SgdConfig {
                    learning_rate: cfg.learning_rate,
                    lr_decay: 1.0,
                    batch_size: cfg.batch_size,
                    epochs: cfg.local_epochs,
                    clip: None,
                    seed: cfg.seed ^ (round as u64) << 20 ^ client as u64,
                },
            );
            updates.push(local.params());
            weights.push(shards[client].len() as f64);
        }
        if updates.is_empty() {
            stats.wasted_rounds += 1;
            pds2_obs::counter!("learning.fed_wasted_rounds").inc();
        } else {
            let averaged = weighted_mean(&updates, &weights);
            global.set_params(&averaged);
        }
        let acc = eval(&global, test);
        pds2_obs::counter!("learning.fed_rounds").inc();
        pds2_obs::trace_event!(
            "learning",
            "fed.round",
            pds2_obs::Stamp::Round(round as u64),
            root.ctx(),
            "participants" => updates.len(),
            "accuracy" => acc,
        );
        accuracy_curve.push(acc);
    }
    root.finish(
        pds2_obs::Stamp::Round(cfg.rounds as u64),
        vec![("wasted_rounds", pds2_obs::Value::from(stats.wasted_rounds))],
    );
    FedOutcome {
        model: global,
        accuracy_curve,
        stats,
    }
}

fn eval<M: Model>(model: &M, test: &Dataset) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let preds: Vec<f64> = test
        .x
        .iter()
        .map(|x| if model.predict(x) >= 0.5 { 1.0 } else { 0.0 })
        .collect();
    pds2_ml::metrics::accuracy(&preds, &test.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_ml::data::gaussian_blobs;
    use pds2_ml::model::LogisticRegression;

    fn setup() -> (Vec<Dataset>, Dataset) {
        let data = gaussian_blobs(600, 3, 0.7, 1);
        let (train, test) = data.split(0.25, 2);
        (train.partition_iid(10, 3), test)
    }

    const ALWAYS: fn(usize, usize) -> bool = |_, _| true;

    #[test]
    fn fedavg_converges_on_blobs() {
        let (shards, test) = setup();
        let out = run_fedavg(
            &shards,
            &test,
            &FedConfig::default(),
            || LogisticRegression::new(3),
            &ALWAYS,
            usize::MAX,
        );
        assert!(
            *out.accuracy_curve.last().unwrap() > 0.9,
            "{:?}",
            out.accuracy_curve.last()
        );
        assert_eq!(out.stats.wasted_rounds, 0);
        assert!(out.stats.models_transferred > 0);
    }

    #[test]
    fn coordinator_load_equals_all_transfers() {
        // Every model transfer passes through the coordinator — the
        // bottleneck claim of §III-C.
        let (shards, test) = setup();
        let out = run_fedavg(
            &shards,
            &test,
            &FedConfig::default(),
            || LogisticRegression::new(3),
            &ALWAYS,
            usize::MAX,
        );
        assert_eq!(
            out.stats.coordinator_transfers,
            out.stats.models_transferred
        );
    }

    #[test]
    fn coordinator_failure_freezes_model() {
        let (shards, test) = setup();
        let out = run_fedavg(
            &shards,
            &test,
            &FedConfig {
                rounds: 30,
                ..Default::default()
            },
            || LogisticRegression::new(3),
            &ALWAYS,
            5, // coordinator dies after round 5
        );
        // Accuracy is constant after the failure round.
        let frozen = &out.accuracy_curve[5..];
        assert!(
            frozen.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12),
            "model must freeze after coordinator failure"
        );
    }

    #[test]
    fn offline_clients_waste_rounds() {
        let (shards, test) = setup();
        let nobody: fn(usize, usize) -> bool = |_, _| false;
        let out = run_fedavg(
            &shards,
            &test,
            &FedConfig {
                rounds: 10,
                ..Default::default()
            },
            || LogisticRegression::new(3),
            &nobody,
            usize::MAX,
        );
        assert_eq!(out.stats.wasted_rounds, 10);
        assert_eq!(out.stats.models_transferred, 0);
        // Untrained model: blob accuracy ~0.5.
        assert!(*out.accuracy_curve.last().unwrap() < 0.7);
    }

    #[test]
    fn partial_availability_still_learns() {
        let (shards, test) = setup();
        let flaky: fn(usize, usize) -> bool = |round, client| (round + client) % 2 == 0;
        let out = run_fedavg(
            &shards,
            &test,
            &FedConfig::default(),
            || LogisticRegression::new(3),
            &flaky,
            usize::MAX,
        );
        assert!(*out.accuracy_curve.last().unwrap() > 0.85);
    }

    #[test]
    fn deterministic_given_seed() {
        let (shards, test) = setup();
        let run = || {
            run_fedavg(
                &shards,
                &test,
                &FedConfig::default(),
                || LogisticRegression::new(3),
                &ALWAYS,
                usize::MAX,
            )
        };
        assert_eq!(run().model.params(), run().model.params());
    }

    #[test]
    #[should_panic(expected = "client fraction")]
    fn zero_fraction_rejected() {
        let (shards, test) = setup();
        let _ = run_fedavg(
            &shards,
            &test,
            &FedConfig {
                client_fraction: 0.0,
                ..Default::default()
            },
            || LogisticRegression::new(3),
            &ALWAYS,
            usize::MAX,
        );
    }
}
