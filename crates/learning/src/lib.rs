//! # pds2-learning
//!
//! Decentralized machine learning for PDS² — §III-C of the paper.
//!
//! - [`gossip`] — gossip learning (the paper's selected aggregation
//!   method): peer-to-peer model exchange with age-weighted merging, run
//!   on the `pds2-net` event simulator; supports DP-noised local updates
//!   and pluggable merge rules for the A1 ablation;
//! - [`federated`] — the FedAvg baseline with a central coordinator,
//!   exhibiting exactly the §III-C limitations (aggregator load,
//!   coordinator single point of failure, wasted rounds under churn);
//! - [`dp`] — Laplace/Gaussian mechanisms and privacy accounting (§IV-D);
//! - [`attack`] — the loss-threshold membership-inference attack used to
//!   *measure* leakage with and without DP (experiment E11).

pub mod attack;
pub mod dp;
pub mod federated;
pub mod gossip;

pub use attack::{loss_threshold_attack, AttackResult};
pub use dp::PrivacyAccountant;
pub use federated::{run_fedavg, FedConfig, FedOutcome};
pub use gossip::{run_gossip_experiment, GossipConfig, GossipNode, GossipOutcome, MergeRule};
