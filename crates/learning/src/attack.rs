//! Membership-inference attack harness (§IV-D "Privacy Leaks").
//!
//! The paper warns that information "may still leak … through the results
//! that \[consumers\] download from the platform", citing the white-box
//! membership-inference literature. This module implements the standard
//! loss-threshold attack: training members tend to have lower per-sample
//! loss than non-members, so an attacker thresholds the loss to guess
//! membership. Experiment E11 reports the attack *advantage* (max over
//! thresholds of TPR − FPR) with and without differential privacy.

use pds2_ml::data::Dataset;
use pds2_ml::model::Model;

/// Per-sample loss of a model on one example (log loss for classifiers
/// via predicted probability; squared error for regressors would use raw
/// output — this harness targets binary classifiers).
pub fn sample_loss<M: Model>(model: &M, x: &[f64], y: f64) -> f64 {
    let eps = 1e-12;
    let p = model.predict(x).clamp(eps, 1.0 - eps);
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

/// Result of a membership-inference evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackResult {
    /// Best achievable TPR − FPR over all loss thresholds.
    pub advantage: f64,
    /// The loss threshold achieving it.
    pub best_threshold: f64,
    /// Attack accuracy at the best threshold (balanced).
    pub accuracy: f64,
}

/// Runs the loss-threshold membership-inference attack.
///
/// `members` are training examples, `non_members` held-out examples.
/// Advantage 0 = no leakage (attacker no better than chance);
/// advantage 1 = total leakage.
pub fn loss_threshold_attack<M: Model>(
    model: &M,
    members: &Dataset,
    non_members: &Dataset,
) -> AttackResult {
    assert!(!members.is_empty() && !non_members.is_empty(), "empty sets");
    let member_losses: Vec<f64> = members
        .x
        .iter()
        .zip(&members.y)
        .map(|(x, &y)| sample_loss(model, x, y))
        .collect();
    let non_member_losses: Vec<f64> = non_members
        .x
        .iter()
        .zip(&non_members.y)
        .map(|(x, &y)| sample_loss(model, x, y))
        .collect();

    // Sweep every observed loss as a candidate threshold:
    // predict "member" iff loss <= threshold.
    let mut candidates: Vec<f64> = member_losses
        .iter()
        .chain(&non_member_losses)
        .copied()
        .collect();
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    candidates.dedup();

    let mut best = AttackResult {
        advantage: 0.0,
        best_threshold: 0.0,
        accuracy: 0.5,
    };
    for &t in &candidates {
        let tpr =
            member_losses.iter().filter(|&&l| l <= t).count() as f64 / member_losses.len() as f64;
        let fpr = non_member_losses.iter().filter(|&&l| l <= t).count() as f64
            / non_member_losses.len() as f64;
        let adv = tpr - fpr;
        if adv > best.advantage {
            best = AttackResult {
                advantage: adv,
                best_threshold: t,
                accuracy: 0.5 * (tpr + (1.0 - fpr)),
            };
        }
    }
    best
}

/// Mean-loss gap diagnostic: `mean(non_member_loss) - mean(member_loss)`.
/// A large positive gap indicates memorization.
pub fn generalization_gap<M: Model>(model: &M, members: &Dataset, non_members: &Dataset) -> f64 {
    let mean = |d: &Dataset| {
        if d.is_empty() {
            return 0.0;
        }
        d.x.iter()
            .zip(&d.y)
            .map(|(x, &y)| sample_loss(model, x, y))
            .sum::<f64>()
            / d.len() as f64
    };
    mean(non_members) - mean(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_ml::data::gaussian_blobs;
    use pds2_ml::model::LogisticRegression;
    use pds2_ml::sgd::{train, SgdConfig};

    #[test]
    fn overfit_model_leaks_membership() {
        // Tiny training set + many epochs + high-dim features -> the model
        // memorizes; the attack should gain real advantage.
        let data = gaussian_blobs(60, 20, 2.5, 1);
        let (train_set, test_set) = data.split(0.5, 2);
        let mut m = LogisticRegression::new(20);
        train(
            &mut m,
            &train_set,
            &SgdConfig {
                learning_rate: 0.5,
                epochs: 400,
                lr_decay: 1.0,
                ..Default::default()
            },
        );
        let result = loss_threshold_attack(&m, &train_set, &test_set);
        assert!(
            result.advantage > 0.15,
            "expected leakage on overfit model, got {result:?}"
        );
        assert!(generalization_gap(&m, &train_set, &test_set) > 0.0);
    }

    #[test]
    fn well_generalizing_model_leaks_little() {
        // Plenty of easy data -> train/test losses match -> low advantage.
        let data = gaussian_blobs(2000, 3, 0.6, 3);
        let (train_set, test_set) = data.split(0.5, 4);
        let mut m = LogisticRegression::with_l2(3, 0.01);
        train(&mut m, &train_set, &SgdConfig::default());
        let result = loss_threshold_attack(&m, &train_set, &test_set);
        assert!(
            result.advantage < 0.1,
            "expected little leakage, got {result:?}"
        );
    }

    #[test]
    fn untrained_model_has_no_signal() {
        let data = gaussian_blobs(200, 3, 1.0, 5);
        let (a, b) = data.split(0.5, 6);
        let m = LogisticRegression::new(3);
        let result = loss_threshold_attack(&m, &a, &b);
        assert!(result.advantage < 0.15, "{result:?}");
    }

    #[test]
    fn advantage_bounds() {
        let data = gaussian_blobs(100, 2, 1.0, 7);
        let (a, b) = data.split(0.5, 8);
        let mut m = LogisticRegression::new(2);
        train(&mut m, &a, &SgdConfig::default());
        let r = loss_threshold_attack(&m, &a, &b);
        assert!((0.0..=1.0).contains(&r.advantage));
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert!(r.accuracy >= 0.5, "best threshold is at least chance");
    }

    #[test]
    #[should_panic(expected = "empty sets")]
    fn empty_inputs_rejected() {
        let m = LogisticRegression::new(2);
        let empty = Dataset::new(Vec::new(), Vec::new());
        let _ = loss_threshold_attack(&m, &empty, &empty);
    }
}
