//! Gossip learning (Ormándi, Hegedűs & Jelasity) over the event simulator.
//!
//! Each node holds a local model and its private shard. On a periodic
//! timer it pushes `(parameters, age)` to a uniformly random peer; on
//! receipt it merges the incoming model with its own and takes local SGD
//! steps on its private data. No coordinator exists — this is the
//! decentralized aggregation §III-C of the paper selects over federated
//! learning.
//!
//! The merge rule is pluggable for ablation A1: age-weighted averaging
//! (the rule from the gossip-learning papers), plain averaging, or
//! replace-if-older.

use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::Sha256;
use pds2_ml::data::Dataset;
use pds2_ml::linalg::weighted_average;
use pds2_ml::model::Model;
use pds2_ml::sgd;
use pds2_net::fault::FaultPlan;
use pds2_net::{Ctx, Node, NodeId};
use rand::Rng;

/// Gossip exchange pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GossipProtocol {
    /// Classic push: each cycle, send the local model to one random peer.
    Push,
    /// Push-pull: the receiver answers with its own model, doubling the
    /// mixing rate per cycle at one extra message.
    PushPull,
}

/// How an incoming model is combined with the local one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeRule {
    /// Weighted average with weights proportional to model ages.
    AgeWeighted,
    /// Plain 50/50 average.
    Average,
    /// Adopt the incoming model iff it is older (more trained).
    Replace,
}

/// Differential-privacy settings for local updates (DP-SGD style).
#[derive(Clone, Copy, Debug)]
pub struct DpConfig {
    /// L2 clip applied to each local gradient.
    pub clip: f64,
    /// Gaussian noise stddev = `noise_multiplier * clip / batch`.
    pub noise_multiplier: f64,
}

/// Gossip-learning protocol parameters.
#[derive(Clone, Debug)]
pub struct GossipConfig {
    /// Gossip cycle length in simulated microseconds.
    pub period_us: u64,
    /// Mini-batch size of each local step.
    pub batch_size: usize,
    /// Local SGD steps per received model.
    pub local_steps: usize,
    /// Learning rate for local steps.
    pub learning_rate: f64,
    /// Merge rule (ablation A1).
    pub merge: MergeRule,
    /// Exchange pattern (push vs push-pull).
    pub protocol: GossipProtocol,
    /// Optional DP noise on local updates (experiment E11).
    pub dp: Option<DpConfig>,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            period_us: 1_000_000, // 1 s cycles
            batch_size: 16,
            local_steps: 1,
            learning_rate: 0.1,
            merge: MergeRule::AgeWeighted,
            protocol: GossipProtocol::Push,
            dp: None,
        }
    }
}

/// The message gossiped between peers.
#[derive(Clone, Debug, PartialEq)]
pub struct GossipMsg {
    /// Flat model parameters.
    pub params: Vec<f64>,
    /// Number of merge+update events this model has absorbed.
    pub age: u64,
    /// Push-pull: the sender expects the receiver's model in return.
    pub want_reply: bool,
    /// Content digest over `(params, age, want_reply)`; receivers drop
    /// messages whose digest does not match (in-flight corruption).
    pub digest: u64,
}

impl GossipMsg {
    /// Builds a message with its content digest.
    pub fn new(params: Vec<f64>, age: u64, want_reply: bool) -> GossipMsg {
        let digest = Self::compute_digest(&params, age, want_reply);
        GossipMsg {
            params,
            age,
            want_reply,
            digest,
        }
    }

    /// The expected digest for the given content.
    pub fn compute_digest(params: &[f64], age: u64, want_reply: bool) -> u64 {
        let mut h = Sha256::new();
        h.update(b"pds2-gossip-v1");
        for p in params {
            h.update(&p.to_bits().to_le_bytes());
        }
        h.update(&age.to_le_bytes());
        h.update(&[want_reply as u8]);
        h.finalize().fold_u64()
    }

    /// Whether the carried digest matches the content.
    pub fn verify(&self) -> bool {
        Self::compute_digest(&self.params, self.age, self.want_reply) == self.digest
    }
}

impl Encode for GossipMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.params.len() as u32);
        for p in &self.params {
            enc.put_f64(*p);
        }
        enc.put_u64(self.age);
        enc.put_bool(self.want_reply);
        enc.put_u64(self.digest);
    }
}

impl Decode for GossipMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = dec.get_u32()? as usize;
        if n > dec.remaining() / 8 {
            return Err(DecodeError::LengthOverflow);
        }
        let mut params = Vec::with_capacity(n);
        for _ in 0..n {
            params.push(dec.get_f64()?);
        }
        Ok(GossipMsg {
            params,
            age: dec.get_u64()?,
            want_reply: dec.get_bool()?,
            digest: dec.get_u64()?,
        })
    }
}

/// A gossip-learning participant.
pub struct GossipNode<M: Model> {
    /// The node's current model.
    pub model: M,
    /// The node's private shard.
    pub data: Dataset,
    /// Model age (training maturity).
    pub age: u64,
    /// Protocol parameters.
    pub cfg: GossipConfig,
    /// Models sent by this node (communication accounting).
    pub models_sent: u64,
    /// Models received and merged.
    pub models_merged: u64,
    /// Incoming messages dropped because their digest did not match
    /// (corrupted in flight by a byzantine link).
    pub corrupted_dropped: u64,
}

impl<M: Model> GossipNode<M> {
    /// Creates a node from an initial model and its private shard.
    pub fn new(model: M, data: Dataset, cfg: GossipConfig) -> Self {
        GossipNode {
            model,
            data,
            age: 0,
            cfg,
            models_sent: 0,
            models_merged: 0,
            corrupted_dropped: 0,
        }
    }

    fn local_update(&mut self, rng: &mut rand::rngs::StdRng) {
        if self.data.is_empty() {
            return;
        }
        for _ in 0..self.cfg.local_steps {
            let batch: Vec<usize> = (0..self.cfg.batch_size.min(self.data.len()))
                .map(|_| rng.random_range(0..self.data.len()))
                .collect();
            match self.cfg.dp {
                None => sgd::step(
                    &mut self.model,
                    &self.data,
                    &batch,
                    self.cfg.learning_rate,
                    None,
                ),
                Some(dp) => {
                    // Clip, then add Gaussian noise scaled to the clip.
                    let mut grad = self.model.gradient(&self.data, &batch);
                    pds2_ml::linalg::clip_norm(&mut grad, dp.clip);
                    let sigma = dp.noise_multiplier * dp.clip / batch.len() as f64;
                    for g in &mut grad {
                        *g += sigma * gaussian(rng);
                    }
                    let mut params = self.model.params();
                    for (p, g) in params.iter_mut().zip(&grad) {
                        *p -= self.cfg.learning_rate * g;
                    }
                    self.model.set_params(&params);
                }
            }
        }
    }

    fn merge(&mut self, incoming: &GossipMsg) {
        let my = self.model.params();
        let merged = match self.cfg.merge {
            MergeRule::AgeWeighted => {
                let wa = (self.age as f64).max(1.0);
                let wb = (incoming.age as f64).max(1.0);
                weighted_average(&my, wa, &incoming.params, wb)
            }
            MergeRule::Average => weighted_average(&my, 1.0, &incoming.params, 1.0),
            MergeRule::Replace => {
                if incoming.age > self.age {
                    incoming.params.clone()
                } else {
                    my
                }
            }
        };
        self.model.set_params(&merged);
        self.age = self.age.max(incoming.age) + 1;
        self.models_merged += 1;
    }
}

/// Standard-normal sample via Box–Muller (local helper to avoid a
/// distribution dependency).
fn gaussian(rng: &mut rand::rngs::StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl<M: Model> Node for GossipNode<M> {
    type Msg = GossipMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GossipMsg>) {
        // Desynchronize cycles with a random initial offset.
        let offset = ctx.rng().random_range(0..self.cfg.period_us.max(1));
        ctx.set_timer(offset, 0);
        // Bootstrap the local model so the first gossip is meaningful.
        let mut seed_rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(ctx.id as u64)
        };
        self.local_update(&mut seed_rng);
        self.age = 1;
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GossipMsg>, from: NodeId, msg: GossipMsg) {
        if !msg.verify() {
            // Corrupted in flight: never merge a model we cannot
            // authenticate against its digest. The per-node field feeds
            // `GossipOutcome`; the registry counter is the process-wide
            // aggregate visible in `pds2_obs::snapshot()`.
            self.corrupted_dropped += 1;
            pds2_obs::counter!("learning.corrupted_dropped").inc();
            return;
        }
        let want_reply = msg.want_reply;
        self.merge(&msg);
        let mut rng = {
            use rand::SeedableRng;
            let s: u64 = ctx.rng().random();
            rand::rngs::StdRng::seed_from_u64(s)
        };
        self.local_update(&mut rng);
        if want_reply {
            ctx.send(from, GossipMsg::new(self.model.params(), self.age, false));
            self.models_sent += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GossipMsg>, _tag: u64) {
        if let Some(peer) = ctx.random_peer() {
            ctx.send(
                peer,
                GossipMsg::new(
                    self.model.params(),
                    self.age,
                    self.cfg.protocol == GossipProtocol::PushPull,
                ),
            );
            self.models_sent += 1;
        }
        ctx.set_timer(self.cfg.period_us, 0);
    }

    fn msg_size(msg: &GossipMsg) -> u64 {
        (msg.params.len() * 8 + 25) as u64
    }

    fn msg_digest(msg: &GossipMsg) -> u64 {
        msg.digest
    }

    fn corrupt_msg(msg: &GossipMsg, rng: &mut rand::rngs::StdRng) -> Option<GossipMsg> {
        // Flip one bit of one parameter but keep the stale digest: a
        // structurally valid message the digest check must reject.
        if msg.params.is_empty() {
            return None;
        }
        let mut mangled = msg.clone();
        let i = rng.random_range(0..mangled.params.len());
        let bit = rng.random_range(0..64);
        mangled.params[i] = f64::from_bits(mangled.params[i].to_bits() ^ (1u64 << bit));
        Some(mangled)
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, GossipMsg>) {
        // A recovered node rejoins the gossip schedule immediately.
        ctx.set_timer(self.cfg.period_us.max(1), 0);
    }
}

/// Builds a gossip simulation over label-partitioned data and runs it,
/// returning mean test accuracy over online nodes, sampled at each element
/// of `eval_at_us`.
///
/// This is the E5/E6 workhorse; `make_model` supplies the (identical)
/// initial model for every node.
#[allow(clippy::too_many_arguments)]
pub fn run_gossip_experiment<M, F>(
    shards: Vec<Dataset>,
    test: &Dataset,
    cfg: GossipConfig,
    link: pds2_net::LinkModel,
    seed: u64,
    eval_at_us: &[u64],
    churn: Option<(f64, u64)>, // (fail probability, horizon_us); permanent failures
    make_model: F,
) -> GossipOutcome
where
    M: Model + Sync,
    F: Fn() -> M,
{
    run_gossip_experiment_with_faults(
        shards, test, cfg, link, seed, eval_at_us, churn, None, make_model,
    )
}

/// [`run_gossip_experiment`] with an optional chaos [`FaultPlan`]
/// (partitions, byzantine corruption, crash-recovery) compiled into the
/// run, plus a delivered-message trace hash for golden-trace regression
/// tests.
#[allow(clippy::too_many_arguments)]
pub fn run_gossip_experiment_with_faults<M, F>(
    shards: Vec<Dataset>,
    test: &Dataset,
    cfg: GossipConfig,
    link: pds2_net::LinkModel,
    seed: u64,
    eval_at_us: &[u64],
    churn: Option<(f64, u64)>,
    fault_plan: Option<FaultPlan>,
    make_model: F,
) -> GossipOutcome
where
    M: Model + Sync,
    F: Fn() -> M,
{
    let nodes: Vec<GossipNode<M>> = shards
        .into_iter()
        .map(|shard| GossipNode::new(make_model(), shard, cfg.clone()))
        .collect();
    let mut sim = pds2_net::Simulator::new(nodes, link, seed);
    if let Some((prob, horizon)) = churn {
        sim.schedule_random_churn(prob, horizon, 0);
    }
    if let Some(plan) = fault_plan {
        sim.install_fault_plan(plan);
    }
    sim.enable_trace();
    // The experiment is the root of one causal trace: every message the
    // simulator delivers (and every eval round below) descends from it, so
    // obs_report can profile the whole gossip run as a single DAG.
    let root = pds2_obs::new_trace(
        "learning",
        "gossip.experiment",
        pds2_obs::Stamp::Sim(0),
        vec![
            ("nodes", pds2_obs::Value::from(sim.len() as u64)),
            ("evals", pds2_obs::Value::from(eval_at_us.len() as u64)),
        ],
    );
    if root.id() != 0 {
        sim.set_root_ctx(root.ctx());
    }
    let mut accuracy_curve = Vec::with_capacity(eval_at_us.len());
    for &t in eval_at_us {
        let round_span = pds2_obs::span_traced(
            "learning",
            "gossip.round",
            pds2_obs::Stamp::Sim(sim.now()),
            root.ctx(),
            vec![("eval_at", pds2_obs::Value::from(t))],
        );
        sim.run_until(t);
        // Per-node evaluation sweeps are read-only over the test set, so
        // they fan out across the pds2-par pool; the node-order mean below
        // keeps the float summation identical for any thread count.
        let online: Vec<usize> = (0..sim.len()).filter(|&id| sim.is_online(id)).collect();
        let accs = pds2_par::par_map_indexed(&online, |_, &id| {
            let model = &sim.node(id).model;
            let preds: Vec<f64> = test
                .x
                .iter()
                .map(|x| if model.predict(x) >= 0.5 { 1.0 } else { 0.0 })
                .collect();
            pds2_ml::metrics::accuracy(&preds, &test.y)
        });
        let mean = if accs.is_empty() {
            0.0
        } else {
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        pds2_obs::counter!("learning.gossip_evals").inc();
        pds2_obs::trace_event!(
            "learning",
            "gossip.eval",
            pds2_obs::Stamp::Sim(t),
            round_span.ctx(),
            "round" => accuracy_curve.len(),
            "online" => online.len(),
            "accuracy" => mean,
        );
        round_span.finish(
            pds2_obs::Stamp::Sim(t),
            vec![("accuracy", pds2_obs::Value::from(mean))],
        );
        accuracy_curve.push(mean);
    }
    let stats = sim.stats();
    let models_transferred = sim.stats().delivered;
    root.finish(
        pds2_obs::Stamp::Sim(sim.now()),
        vec![("delivered", pds2_obs::Value::from(stats.delivered))],
    );
    GossipOutcome {
        accuracy_curve,
        models_transferred,
        bytes_transferred: stats.bytes_delivered,
        online_nodes: sim.online_count(),
        corrupted_dropped: sim.nodes().map(|n| n.corrupted_dropped).sum(),
        trace_hash: sim.trace_hash(),
    }
}

/// Options for a fleet-scale gossip run ([`run_gossip_experiment_at_scale`]).
#[derive(Clone, Debug)]
pub struct ScaleGossipOpts {
    /// Total fleet size (most nodes hold no data and only relay/merge).
    pub n_nodes: usize,
    /// How many nodes receive a shard of the training data, spread
    /// evenly across the id space.
    pub data_holders: usize,
    /// Evaluation samples at most this many online nodes per round
    /// (stride-sampled; evaluating 100k nodes would dominate the run).
    pub eval_sample: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Evaluation instants (µs).
    pub eval_at_us: Vec<u64>,
    /// Protocol parameters.
    pub cfg: GossipConfig,
    /// Link model — typically [`pds2_net::LinkModel::regional`] over a
    /// generator-backed topology at this scale.
    pub link: pds2_net::LinkModel,
    /// Optional generated churn trace compiled into a fault plan.
    pub churn: Option<pds2_net::ChurnModel>,
    /// Scheduler override (`None` = `PDS2_NET_SCHED` / wheel default).
    pub scheduler: Option<pds2_net::SchedulerKind>,
}

/// Gossip learning at fleet scale: `n_nodes` participants of which only
/// `data_holders` hold training shards, the rest merging and relaying —
/// the paper-vision shape where most user devices contribute connectivity
/// and only some contribute data. Per-node state stays small (empty
/// datasets skip local SGD), so 100k+-node fleets are practical; the
/// E19 `bench_scale` bin drives this to find the scaling knee.
pub fn run_gossip_experiment_at_scale<M, F>(
    train: &Dataset,
    test: &Dataset,
    opts: &ScaleGossipOpts,
    make_model: F,
) -> GossipOutcome
where
    M: Model + Sync,
    F: Fn() -> M,
{
    let holders = opts.data_holders.clamp(1, opts.n_nodes);
    let shards = train.partition_iid(holders, opts.seed);
    let stride = (opts.n_nodes / holders).max(1);
    let mut shard_iter = shards.into_iter();
    let nodes: Vec<GossipNode<M>> = (0..opts.n_nodes)
        .map(|id| {
            let empty = || Dataset::new(Vec::new(), Vec::new());
            let data = if id % stride == 0 && id / stride < holders {
                shard_iter.next().unwrap_or_else(empty)
            } else {
                empty()
            };
            GossipNode::new(make_model(), data, opts.cfg.clone())
        })
        .collect();
    let scheduler = opts
        .scheduler
        .unwrap_or_else(pds2_net::SchedulerKind::from_env);
    let mut sim =
        pds2_net::Simulator::with_scheduler(nodes, opts.link.clone(), opts.seed, scheduler);
    if let Some(churn) = opts.churn {
        let trace = churn.trace(opts.seed, opts.n_nodes);
        sim.install_fault_plan(FaultPlan::new(opts.seed).crashes_from(trace));
    }
    sim.enable_trace();
    let root = pds2_obs::new_trace(
        "learning",
        "gossip.scale",
        pds2_obs::Stamp::Sim(0),
        vec![
            ("nodes", pds2_obs::Value::from(opts.n_nodes as u64)),
            ("holders", pds2_obs::Value::from(holders as u64)),
        ],
    );
    if root.id() != 0 {
        sim.set_root_ctx(root.ctx());
    }
    let mut accuracy_curve = Vec::with_capacity(opts.eval_at_us.len());
    for &t in &opts.eval_at_us {
        sim.run_until(t);
        let online: Vec<usize> = (0..sim.len()).filter(|&id| sim.is_online(id)).collect();
        let step = (online.len() / opts.eval_sample.max(1)).max(1);
        let sampled: Vec<usize> = online.iter().copied().step_by(step).collect();
        let accs = pds2_par::par_map_indexed(&sampled, |_, &id| {
            let model = &sim.node(id).model;
            let preds: Vec<f64> = test
                .x
                .iter()
                .map(|x| if model.predict(x) >= 0.5 { 1.0 } else { 0.0 })
                .collect();
            pds2_ml::metrics::accuracy(&preds, &test.y)
        });
        let mean = if accs.is_empty() {
            0.0
        } else {
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        pds2_obs::counter!("learning.gossip_evals").inc();
        accuracy_curve.push(mean);
    }
    let stats = sim.stats();
    root.finish(
        pds2_obs::Stamp::Sim(sim.now()),
        vec![("delivered", pds2_obs::Value::from(stats.delivered))],
    );
    GossipOutcome {
        accuracy_curve,
        models_transferred: stats.delivered,
        bytes_transferred: stats.bytes_delivered,
        online_nodes: sim.online_count(),
        corrupted_dropped: sim.nodes().map(|n| n.corrupted_dropped).sum(),
        trace_hash: sim.trace_hash(),
    }
}

/// Result of a gossip-learning run.
#[derive(Clone, Debug)]
pub struct GossipOutcome {
    /// Mean online-node test accuracy at each evaluation time.
    pub accuracy_curve: Vec<f64>,
    /// Models delivered over the network.
    pub models_transferred: u64,
    /// Bytes delivered.
    pub bytes_transferred: u64,
    /// Nodes still online at the end.
    pub online_nodes: usize,
    /// Messages receivers discarded on digest mismatch.
    pub corrupted_dropped: u64,
    /// Delivered-message trace digest of the run (golden-trace tests).
    pub trace_hash: Option<pds2_crypto::Digest>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_ml::data::gaussian_blobs;
    use pds2_ml::model::LogisticRegression;
    use pds2_net::LinkModel;

    fn quick_run(merge: MergeRule, churn: Option<(f64, u64)>) -> GossipOutcome {
        let data = gaussian_blobs(600, 3, 0.7, 1);
        let (train, test) = data.split(0.25, 2);
        let shards = train.partition_iid(10, 3);
        run_gossip_experiment(
            shards,
            &test,
            GossipConfig {
                period_us: 100_000,
                merge,
                ..Default::default()
            },
            LinkModel::instant(),
            7,
            &[5_000_000],
            churn,
            || LogisticRegression::new(3),
        )
    }

    #[test]
    fn gossip_converges_on_blobs() {
        let out = quick_run(MergeRule::AgeWeighted, None);
        assert!(
            out.accuracy_curve[0] > 0.9,
            "accuracy {:?}",
            out.accuracy_curve
        );
        assert!(out.models_transferred > 100);
    }

    #[test]
    fn all_merge_rules_learn() {
        for rule in [
            MergeRule::AgeWeighted,
            MergeRule::Average,
            MergeRule::Replace,
        ] {
            let out = quick_run(rule, None);
            assert!(
                out.accuracy_curve[0] > 0.8,
                "{rule:?}: {:?}",
                out.accuracy_curve
            );
        }
    }

    #[test]
    fn gossip_survives_churn() {
        // 30% of nodes fail permanently; the rest still converge —
        // the §III-C robustness claim for coordinator-free aggregation.
        let out = quick_run(MergeRule::AgeWeighted, Some((0.3, 2_000_000)));
        assert!(out.online_nodes <= 10);
        assert!(
            out.accuracy_curve[0] > 0.85,
            "accuracy under churn {:?}",
            out.accuracy_curve
        );
    }

    #[test]
    fn merge_age_weighted_prefers_mature_model() {
        let data = gaussian_blobs(50, 2, 1.0, 1);
        let mut node = GossipNode::new(LogisticRegression::new(2), data, GossipConfig::default());
        node.age = 1;
        let incoming = GossipMsg::new(vec![10.0, 10.0, 10.0], 9, false);
        node.merge(&incoming);
        // Age-weighted: (1*0 + 9*10)/10 = 9.
        assert!((node.model.params()[0] - 9.0).abs() < 1e-9);
        assert_eq!(node.age, 10);
        assert_eq!(node.models_merged, 1);
    }

    #[test]
    fn merge_replace_ignores_younger() {
        let data = gaussian_blobs(50, 2, 1.0, 1);
        let mut node = GossipNode::new(
            LogisticRegression::new(2),
            data,
            GossipConfig {
                merge: MergeRule::Replace,
                ..Default::default()
            },
        );
        node.age = 5;
        let before = node.model.params();
        node.merge(&GossipMsg::new(vec![9.0, 9.0, 9.0], 2, false));
        assert_eq!(node.model.params(), before, "younger model rejected");
        node.merge(&GossipMsg::new(vec![9.0, 9.0, 9.0], 20, false));
        assert_eq!(node.model.params(), vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn dp_noise_perturbs_updates() {
        let data = gaussian_blobs(100, 2, 1.0, 1);
        let shards = data.partition_iid(4, 1);
        let run = |dp| {
            run_gossip_experiment(
                shards.clone(),
                &data,
                GossipConfig {
                    period_us: 100_000,
                    dp,
                    ..Default::default()
                },
                LinkModel::instant(),
                3,
                &[1_000_000],
                None,
                || LogisticRegression::new(2),
            )
        };
        let clean = run(None);
        let noisy = run(Some(DpConfig {
            clip: 1.0,
            noise_multiplier: 20.0,
        }));
        // Heavy noise must hurt accuracy relative to the clean run.
        assert!(
            noisy.accuracy_curve[0] <= clean.accuracy_curve[0] + 0.02,
            "clean {:?} noisy {:?}",
            clean.accuracy_curve,
            noisy.accuracy_curve
        );
    }

    #[test]
    fn push_pull_doubles_mixing_per_cycle() {
        let data = gaussian_blobs(400, 3, 0.7, 1);
        let (train, test) = data.split(0.25, 2);
        let shards = train.partition_iid(8, 3);
        let run = |protocol| {
            run_gossip_experiment(
                shards.clone(),
                &test,
                GossipConfig {
                    period_us: 200_000,
                    protocol,
                    ..Default::default()
                },
                LinkModel::instant(),
                7,
                &[2_000_000],
                None,
                || LogisticRegression::new(3),
            )
        };
        let push = run(GossipProtocol::Push);
        let push_pull = run(GossipProtocol::PushPull);
        // Push-pull moves roughly twice the models in the same sim time.
        assert!(
            push_pull.models_transferred > push.models_transferred * 3 / 2,
            "push {} vs push-pull {}",
            push.models_transferred,
            push_pull.models_transferred
        );
        // Both converge on this easy task.
        assert!(push.accuracy_curve[0] > 0.9);
        assert!(push_pull.accuracy_curve[0] > 0.9);
    }

    #[test]
    fn gossip_is_model_generic_multiclass_softmax() {
        // The protocol averages flat parameter vectors, so any Model works —
        // here a 3-class softmax over three Gaussian clusters.
        use pds2_ml::model::SoftmaxRegression;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..600 {
            let c = i % 3;
            x.push(vec![
                centers[c].0 + rng.random::<f64>() - 0.5,
                centers[c].1 + rng.random::<f64>() - 0.5,
            ]);
            y.push(c as f64);
        }
        let data = pds2_ml::data::Dataset::new(x, y);
        let (train, test) = data.split(0.25, 2);
        let shards = train.partition_iid(6, 3);
        let nodes: Vec<GossipNode<SoftmaxRegression>> = shards
            .into_iter()
            .map(|shard| {
                GossipNode::new(
                    SoftmaxRegression::new(2, 3),
                    shard,
                    GossipConfig {
                        period_us: 100_000,
                        learning_rate: 0.3,
                        local_steps: 2,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let mut sim = pds2_net::Simulator::new(nodes, LinkModel::instant(), 7);
        sim.run_until(5_000_000);
        // Every node's model classifies the held-out set well.
        for id in 0..sim.len() {
            let model = &sim.node(id).model;
            let preds: Vec<f64> = test.x.iter().map(|x| model.classify(x)).collect();
            let acc = pds2_ml::metrics::accuracy(&preds, &test.y);
            assert!(acc > 0.9, "node {id} accuracy {acc}");
        }
    }

    #[test]
    fn message_size_tracks_dimension() {
        let msg = GossipMsg::new(vec![0.0; 100], 1, false);
        assert_eq!(
            <GossipNode<LogisticRegression> as Node>::msg_size(&msg),
            825
        );
    }

    #[test]
    fn digest_detects_any_single_bit_flip() {
        let msg = GossipMsg::new(vec![1.5, -2.25, 0.0], 7, true);
        assert!(msg.verify());
        let mut flipped = msg.clone();
        flipped.params[1] = f64::from_bits(flipped.params[1].to_bits() ^ 1);
        assert!(!flipped.verify());
        let mut aged = msg.clone();
        aged.age += 1;
        assert!(!aged.verify());
        let mut reply = msg.clone();
        reply.want_reply = false;
        assert!(!reply.verify());
    }

    #[test]
    fn gossip_msg_codec_roundtrip() {
        use pds2_crypto::codec::{Decode, Encode};
        let msg = GossipMsg::new(vec![0.25, f64::MAX, -0.0], 42, true);
        let back = GossipMsg::from_bytes(&msg.to_bytes()).unwrap();
        assert_eq!(back.params, msg.params);
        assert_eq!(back.age, msg.age);
        assert_eq!(back.want_reply, msg.want_reply);
        assert!(back.verify());
    }

    #[test]
    fn corrupt_msg_is_always_caught_by_digest() {
        use rand::SeedableRng;
        let msg = GossipMsg::new(vec![1.0, 2.0, 3.0], 5, false);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mangled =
                <GossipNode<LogisticRegression> as Node>::corrupt_msg(&msg, &mut rng).unwrap();
            assert!(!mangled.verify(), "stale digest must not verify");
        }
    }

    #[test]
    fn scale_run_learns_on_a_sparse_fleet_and_is_scheduler_invariant() {
        // A 600-node fleet where only 12 nodes hold data: relays still
        // spread the model, the sampled eval converges, and the
        // delivered-message trace is identical under both schedulers.
        let data = gaussian_blobs(600, 3, 0.7, 1);
        let (train, test) = data.split(0.25, 2);
        let run = |scheduler| {
            let opts = ScaleGossipOpts {
                n_nodes: 600,
                data_holders: 12,
                eval_sample: 40,
                seed: 11,
                eval_at_us: vec![4_000_000],
                cfg: GossipConfig {
                    period_us: 400_000,
                    ..Default::default()
                },
                link: pds2_net::LinkModel::regional(pds2_net::Topology::five_continents(11)),
                churn: Some(pds2_net::ChurnModel {
                    horizon_us: 4_000_000,
                    mean_uptime_us: 2_000_000,
                    mean_downtime_us: 500_000,
                    churn_fraction_x1024: 100, // ~10% of nodes churn
                }),
                scheduler: Some(scheduler),
            };
            run_gossip_experiment_at_scale(&train, &test, &opts, || LogisticRegression::new(3))
        };
        let wheel = run(pds2_net::SchedulerKind::Wheel);
        let heap = run(pds2_net::SchedulerKind::Heap);
        assert_eq!(wheel.trace_hash, heap.trace_hash, "schedulers must agree");
        assert_eq!(wheel.models_transferred, heap.models_transferred);
        assert!(wheel.online_nodes > 500);
        assert!(
            wheel.accuracy_curve[0] > 0.8,
            "sparse fleet accuracy {:?}",
            wheel.accuracy_curve
        );
    }

    #[test]
    fn byzantine_corruption_is_dropped_not_merged() {
        let data = gaussian_blobs(600, 3, 0.7, 1);
        let (train, test) = data.split(0.25, 2);
        let shards = train.partition_iid(10, 3);
        let plan = pds2_net::FaultPlan::new(7).byzantine(
            0,
            5_000_000,
            pds2_net::LinkScope::any(),
            pds2_net::LinkEffect::Corrupt { probability: 0.3 },
        );
        let out = run_gossip_experiment_with_faults(
            shards,
            &test,
            GossipConfig {
                period_us: 100_000,
                ..Default::default()
            },
            LinkModel::instant(),
            7,
            &[5_000_000],
            None,
            Some(plan),
            || LogisticRegression::new(3),
        );
        assert!(out.corrupted_dropped > 0, "corruption must be observed");
        // Learning still converges because corrupt models are never merged.
        assert!(
            out.accuracy_curve[0] > 0.9,
            "accuracy under corruption {:?}",
            out.accuracy_curve
        );
        assert!(out.trace_hash.is_some());
    }
}
