//! # pds2-par — deterministic fork-join parallelism
//!
//! A small scoped-thread runtime for the PDS² hot paths (block
//! validation, Merkle hashing, Monte-Carlo Shapley, evaluation sweeps)
//! built on std threads and `parking_lot`, with one hard guarantee:
//!
//! > **The thread count never changes a result.** `PDS2_THREADS=1` and
//! > `PDS2_THREADS=64` produce bit-identical outputs.
//!
//! Three mechanisms deliver that guarantee:
//!
//! 1. **Index-ordered results** — [`par_map_indexed`] hands each worker
//!    dynamically-scheduled chunks but reassembles outputs strictly by
//!    input index, so the caller sees exactly the serial ordering.
//! 2. **Index-ordered reduction** — [`par_chunks_reduce`] folds chunk
//!    accumulators left-to-right in chunk order. Chunk boundaries depend
//!    only on the input length and chunk size, never on the thread
//!    count, so floating-point reductions associate identically on every
//!    run.
//! 3. **Per-task RNG streams** — [`stream_rng`] derives an independent
//!    generator from `(seed, task_index)`, so randomized tasks (e.g.
//!    Shapley permutations) draw the same values no matter which thread
//!    executes them.
//!
//! ## Thread-count knob
//!
//! The effective worker count resolves, in order: the scoped
//! [`with_threads`] override (used by benchmarks and tests so parallel
//! and serial runs can be compared inside one process), the
//! `PDS2_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. A value of `1` executes on
//! the calling thread with zero spawning overhead — exactly the code a
//! serial implementation would have run.
//!
//! ## Serial-fallback cutoff
//!
//! Spawning workers the hardware cannot run concurrently only buys
//! scheduling overhead (the original `BENCH_parallel.json` measured
//! block validation at 0.72× with `PDS2_THREADS=4` on a 1-core host).
//! Two guards remove that penalty without touching results:
//!
//! * **effective-core detection** — an env-derived worker count is
//!   capped at [`hardware_cores`] (a scoped [`with_threads`] override is
//!   honoured verbatim: tests force worker counts deliberately);
//! * **work-size threshold** — inputs below [`MIN_PAR_ITEMS`] items run
//!   on the calling thread; fork-join setup dwarfs the work for tiny
//!   batches.
//!
//! Both guards change only *where* code runs, never what it computes —
//! the determinism contract (bit-identical at any worker count) already
//! guarantees that.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Scoped per-thread override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Cached `PDS2_THREADS` / hardware default (read once per process).
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Cached hardware thread count (read once per process).
static HW_CORES: OnceLock<usize> = OnceLock::new();

/// Inputs smaller than this run on the calling thread regardless of the
/// worker count: fork-join setup costs more than the work it would
/// distribute.
pub const MIN_PAR_ITEMS: usize = 16;

/// Number of hardware threads the machine reports (cached; ≥ 1).
pub fn hardware_cores() -> usize {
    *HW_CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Caps a requested worker count by the hardware: asking for more
/// workers than cores only adds scheduling overhead (never changes
/// results — see the crate-level determinism contract).
pub fn effective_workers(requested: usize) -> usize {
    requested.clamp(1, hardware_cores())
}

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        match std::env::var("PDS2_THREADS") {
            // Env-derived counts are capped at the hardware: a
            // `PDS2_THREADS=4` on a 1-core host runs serial instead of
            // paying for context switches.
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => effective_workers(n.min(256)),
                _ => 1, // unparseable or zero: fail safe to serial
            },
            Err(_) => hardware_cores(),
        }
    })
}

/// The worker count parallel operations will use right now.
pub fn current_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(env_threads)
}

/// Runs `f` with the worker count forced to `n` on this thread.
///
/// Restores the previous setting afterwards (also on panic), so tests
/// and benchmarks can compare `with_threads(1, ..)` and
/// `with_threads(8, ..)` inside one process without racing on global
/// state.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|o| o.set(prev));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Derives the RNG for task `index` of a computation seeded with `seed`.
///
/// Uses two rounds of SplitMix64 finalization over `seed ^ φ·index`, so
/// neighbouring task indices receive statistically independent streams
/// and task 0's stream differs from `StdRng::seed_from_u64(seed)`.
pub fn stream_rng(seed: u64, index: u64) -> StdRng {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Chunk size giving each worker several chunks for load balancing.
fn default_chunk(len: usize, threads: usize) -> usize {
    (len / (threads * 4)).max(1)
}

/// Applies `f(index, &item)` to every item and returns the results in
/// input order.
///
/// Workers pull contiguous chunks from a shared queue (dynamic load
/// balancing), but the output vector is assembled by input index, so the
/// result is identical to the serial `items.iter().enumerate().map(f)`
/// for every thread count.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = current_threads();
    if threads <= 1 || items.len() < MIN_PAR_ITEMS {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = default_chunk(items.len(), threads);
    let n_chunks = items.len().div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    let workers = threads.min(n_chunks);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    return;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(items.len());
                let out: Vec<R> = items[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(lo + i, t))
                    .collect();
                done.lock().push((c, out));
            });
        }
    });
    let mut chunks = done.into_inner();
    chunks.sort_unstable_by_key(|(c, _)| *c);
    debug_assert_eq!(chunks.len(), n_chunks);
    let mut result = Vec::with_capacity(items.len());
    for (_, mut part) in chunks {
        result.append(&mut part);
    }
    result
}

/// Maps fixed-size chunks of `items` through `map` and folds the chunk
/// accumulators **in chunk order** with `reduce`.
///
/// `map` receives `(chunk_index, base_item_index, chunk_slice)`. Chunk
/// boundaries are a pure function of `items.len()` and `chunk_size`, and
/// the fold runs left-to-right over chunk indices, so the reduction
/// associates identically for every thread count — the property that
/// keeps floating-point reductions bit-stable. Returns `None` for empty
/// input.
pub fn par_chunks_reduce<T, A, M, R>(items: &[T], chunk_size: usize, map: M, reduce: R) -> Option<A>
where
    T: Sync,
    A: Send,
    M: Fn(usize, usize, &[T]) -> A + Sync,
    R: Fn(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    let chunk = chunk_size.max(1);
    let bounds: Vec<(usize, usize)> = (0..items.len().div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(items.len())))
        .collect();
    let accumulators = par_map_indexed(&bounds, |c, &(lo, hi)| map(c, lo, &items[lo..hi]));
    accumulators.into_iter().reduce(reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn map_preserves_index_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 8] {
            let par = with_threads(threads, || par_map_indexed(&items, |i, v| v * 3 + i as u64));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_small_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(with_threads(4, || par_map_indexed(&empty, |_, v| *v)).is_empty());
        let one = [7u32];
        assert_eq!(
            with_threads(4, || par_map_indexed(&one, |_, v| v + 1)),
            vec![8]
        );
    }

    #[test]
    fn float_reduction_is_bit_stable_across_thread_counts() {
        // Sums that differ under re-association expose any ordering bug.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761u64 % 1000) as f64).powf(1.5) * 1e-7 + 1.0)
            .collect();
        let reference = with_threads(1, || {
            par_chunks_reduce(
                &values,
                64,
                |_, _, chunk| chunk.iter().sum::<f64>(),
                |a, b| a + b,
            )
        })
        .unwrap();
        for threads in [2, 3, 5, 16] {
            let sum = with_threads(threads, || {
                par_chunks_reduce(
                    &values,
                    64,
                    |_, _, chunk| chunk.iter().sum::<f64>(),
                    |a, b| a + b,
                )
            })
            .unwrap();
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunks_reduce_reports_indices() {
        let items: Vec<u32> = (0..10).collect();
        let spans = with_threads(3, || {
            par_chunks_reduce(
                &items,
                4,
                |c, base, chunk| vec![(c, base, chunk.len())],
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
        })
        .unwrap();
        assert_eq!(spans, vec![(0, 0, 4), (1, 4, 4), (2, 8, 2)]);
        assert!(par_chunks_reduce(&[] as &[u32], 4, |_, _, c| c.len(), |a, b| a + b).is_none());
    }

    #[test]
    fn stream_rngs_are_independent_and_deterministic() {
        let mut a = stream_rng(42, 0);
        let mut a2 = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let xs2: Vec<u64> = (0..32).map(|_| a2.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, xs2, "same (seed, index) must replay");
        assert_ne!(xs, ys, "different indices must diverge");
        let mut c = stream_rng(43, 0);
        let zs: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_ne!(xs, zs, "different seeds must diverge");
    }

    #[test]
    fn with_threads_nests_and_restores() {
        assert_eq!(with_threads(3, current_threads), 3);
        with_threads(2, || {
            assert_eq!(current_threads(), 2);
            assert_eq!(with_threads(5, current_threads), 5);
            assert_eq!(current_threads(), 2);
        });
    }

    #[test]
    fn effective_workers_caps_at_hardware() {
        let cores = hardware_cores();
        assert!(cores >= 1);
        assert_eq!(effective_workers(0), 1);
        assert_eq!(effective_workers(1), 1);
        assert_eq!(effective_workers(cores), cores);
        assert_eq!(effective_workers(cores + 7), cores);
        assert_eq!(effective_workers(usize::MAX), cores);
    }

    #[test]
    fn tiny_inputs_stay_on_the_calling_thread() {
        let main_id = std::thread::current().id();
        let items: Vec<u32> = (0..MIN_PAR_ITEMS as u32 - 1).collect();
        let ids = with_threads(8, || {
            par_map_indexed(&items, |_, _| std::thread::current().id())
        });
        assert!(
            ids.iter().all(|id| *id == main_id),
            "below the work-size threshold no worker may be spawned"
        );
        // Results are identical either way, threshold or not.
        let serial: Vec<u32> = items.iter().map(|v| v * 2).collect();
        assert_eq!(
            with_threads(8, || par_map_indexed(&items, |_, v| v * 2)),
            serial
        );
    }

    #[test]
    fn map_actually_runs_on_worker_threads() {
        let main_id = std::thread::current().id();
        let items: Vec<u32> = (0..256).collect();
        let ids = with_threads(4, || {
            par_map_indexed(&items, |_, _| std::thread::current().id())
        });
        assert!(
            ids.iter().any(|id| *id != main_id),
            "expected at least one item processed off the main thread"
        );
    }
}
