//! The PDS² marketplace orchestrator.
//!
//! Wires the five roles of Fig. 1 — consumers, providers, the storage
//! subsystem, executors, and the blockchain governance layer — and drives
//! the Fig. 2 workload lifecycle end to end:
//!
//! 1. consumer submits a workload specification (on-chain contract +
//!    escrow + workload-code NFT);
//! 2. storage subsystems match provider data against the precondition and
//!    providers are notified;
//! 3. providers verify the executor's enclave attestation, then hand over
//!    data under signed access grants and participation certificates;
//! 4. executors verify device signatures (§IV-B), register participation
//!    on-chain, and once the contract's quorum is met the governance layer
//!    starts execution;
//! 5. executors train inside (simulated) enclaves and aggregate
//!    peer-to-peer; the agreed result hash goes on-chain;
//! 6. rewards are split (proportional or Shapley) and paid out by the
//!    workload contract, with the whole trail in the event log.

use crate::authenticity::{Device, DeviceId, ManufacturerRegistry, ReadingVerifier, SignedReading};
use crate::certificate::ParticipationCertificate;
use crate::contract::{calls, Phase, WorkloadContract, WorkloadState, WORKLOAD_CODE_ID};
use crate::workload::{RewardScheme, TaskKind, WorkloadSpec};
use pds2_chain::address::Address;
use pds2_chain::chain::Blockchain;
use pds2_chain::contract::ContractRegistry;
use pds2_chain::erc721::{AssetKind, Erc721Op};
use pds2_chain::state::TxReceipt;
use pds2_chain::tx::{Transaction, TxKind};
use pds2_crypto::codec::Encoder;
use pds2_crypto::schnorr::KeyPair;
use pds2_crypto::sha256::{sha256, Digest};
use pds2_ml::data::Dataset;
use pds2_ml::model::{LinearRegression, LogisticRegression, Model};
use pds2_ml::sgd::{train, SgdConfig};
use pds2_rewards::shapley::{
    exact_shapley, monte_carlo_shapley_par, proportional, to_reward_shares, McConfig,
};
use pds2_rewards::utility::MlUtility;
use pds2_storage::semantic::{Metadata, Ontology};
use pds2_storage::store::{
    AccessGrant, LocalStore, Record, RecordId, StorageBackend, StorageError, ThirdPartyStore,
};
use pds2_tee::attestation::{AttestationService, Quote};
use pds2_tee::cost::{CostMeter, CostModel};
use pds2_tee::measurement::EnclaveCode;
use pds2_tee::platform::{Enclave, Platform};
use std::collections::HashMap;
use std::sync::Arc;

/// Marketplace-level errors.
#[derive(Debug)]
pub enum MarketError {
    /// Referenced actor is not registered.
    UnknownActor(&'static str),
    /// Referenced workload id does not exist.
    UnknownWorkload(u64),
    /// An on-chain transaction failed.
    ChainFailure(String),
    /// Attestation of an executor enclave failed.
    Attestation(String),
    /// Storage-layer failure.
    Storage(StorageError),
    /// Device-signature verification rejected data.
    Authenticity(String),
    /// The operation is invalid in the workload's current phase.
    BadPhase(String),
    /// Spec/feature-shape mismatch.
    ShapeMismatch(String),
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::UnknownActor(kind) => write!(f, "unknown {kind}"),
            MarketError::UnknownWorkload(id) => write!(f, "unknown workload {id}"),
            MarketError::ChainFailure(e) => write!(f, "chain failure: {e}"),
            MarketError::Attestation(e) => write!(f, "attestation failure: {e}"),
            MarketError::Storage(e) => write!(f, "storage failure: {e}"),
            MarketError::Authenticity(e) => write!(f, "authenticity failure: {e}"),
            MarketError::BadPhase(e) => write!(f, "bad phase: {e}"),
            MarketError::ShapeMismatch(e) => write!(f, "shape mismatch: {e}"),
        }
    }
}

impl std::error::Error for MarketError {}

impl From<StorageError> for MarketError {
    fn from(e: StorageError) -> Self {
        MarketError::Storage(e)
    }
}

/// Where a provider keeps its data (the Fig. 3 hardware configurations).
pub enum StorageChoice {
    /// Provider-owned hardware holding plaintext.
    Local,
    /// Outsourced sealed storage publishing metadata at the given detail
    /// level.
    ThirdParty {
        /// Metadata detail level revealed to the operator.
        publish_level: u8,
    },
}

struct ProviderAccount {
    keys: KeyPair,
    store: ProviderStore,
    devices: Vec<Device>,
    /// Readings per record (the provider's own plaintext copy).
    readings: HashMap<RecordId, Vec<SignedReading>>,
}

enum ProviderStore {
    Local(LocalStore),
    Third {
        store: ThirdPartyStore,
        key: [u8; 32],
    },
}

impl ProviderStore {
    fn backend(&self) -> &dyn StorageBackend {
        match self {
            ProviderStore::Local(s) => s,
            ProviderStore::Third { store, .. } => store,
        }
    }

    fn backend_mut(&mut self) -> &mut dyn StorageBackend {
        match self {
            ProviderStore::Local(s) => s,
            ProviderStore::Third { store, .. } => store,
        }
    }
}

struct ExecutorAccount {
    keys: KeyPair,
    platform: Arc<Platform>,
    /// Enclaves launched per workload id.
    enclaves: HashMap<u64, Enclave>,
    /// Crash-stop flag: a crashed executor lost all enclave state and is
    /// skipped by `execute` until it recovers.
    crashed: bool,
    /// When set, the executor recovers automatically once the governance
    /// chain reaches this height (used by `execute_with_retry` backoff).
    recover_at_height: Option<u64>,
}

struct ConsumerAccount {
    keys: KeyPair,
}

/// Per-workload runtime state held by the marketplace (off-chain side).
struct WorkloadRuntime {
    spec: WorkloadSpec,
    code: EnclaveCode,
    contract: Address,
    consumer: Address,
    executors: Vec<Address>,
    /// Attestation quotes produced by joined executors.
    quotes: HashMap<Address, Quote>,
    /// Verified provider data held by each executor.
    executor_data: HashMap<Address, Vec<(Address, Dataset)>>,
    certificates: Vec<ParticipationCertificate>,
    /// On-chain participation transaction per provider (dispute proofs).
    participation_tx: HashMap<Address, Digest>,
    /// Final agreed model parameters after execution.
    result_params: Option<Vec<f64>>,
    /// Per-executor verification stats.
    /// (accepted, rejected, out-of-bounds)
    verifier_stats: HashMap<Address, (u64, u64, u64)>,
    /// Causal context minted when the workload was submitted; every later
    /// lifecycle phase re-enters it so the whole submit→payout story is
    /// one trace ([`pds2_obs::TraceCtx::NONE`] when no capture was active).
    trace: pds2_obs::TraceCtx,
}

/// Outcome of the execution phase.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Hash submitted on-chain by every honest executor.
    pub result_hash: Digest,
    /// Validation accuracy (classification) or negative MSE (regression)
    /// of the aggregated model on the consumer's validation set.
    pub validation_score: f64,
    /// Per-executor simulated enclave cost.
    pub enclave_costs: HashMap<Address, CostMeter>,
    /// Readings accepted / rejected across executors (§IV-B pipeline).
    pub readings_accepted: u64,
    /// Readings rejected.
    pub readings_rejected: u64,
    /// Readings discarded by §IV-C executor-side data verification
    /// (authentic but outside the workload's declared value bounds).
    pub readings_out_of_bounds: u64,
}

/// Retry discipline for [`Marketplace::execute_with_retry`]: how often to
/// re-attempt a failed execution and how long to back off between
/// attempts (backoff is expressed in mined governance blocks and doubles
/// after every failure, so crashed executors with a scheduled recovery
/// height come back within a bounded number of attempts).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum execution attempts (≥ 1).
    pub max_attempts: u32,
    /// Empty blocks mined after the first failure; doubles per attempt.
    pub backoff_blocks: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_blocks: 2,
        }
    }
}

/// Outcome of finalization.
#[derive(Clone, Debug)]
pub struct FinalizeReport {
    /// Reward paid per provider.
    pub provider_shares: Vec<(Address, u128)>,
    /// Executors that received fees.
    pub paid_executors: Vec<Address>,
    /// Executors slashed for disagreement.
    pub slashed: Vec<Address>,
}

/// The marketplace: all five roles plus the governance chain.
pub struct Marketplace {
    /// The governance-layer blockchain.
    pub chain: Blockchain,
    /// TEE attestation verifier.
    pub attestation: AttestationService,
    /// Semantic ontology shared by the platform.
    pub ontology: Ontology,
    /// Trusted device manufacturers.
    pub manufacturers: ManufacturerRegistry,
    manufacturer_keys: KeyPair,
    consumers: HashMap<Address, ConsumerAccount>,
    providers: HashMap<Address, ProviderAccount>,
    executors: HashMap<Address, ExecutorAccount>,
    workloads: HashMap<u64, WorkloadRuntime>,
    next_workload_id: u64,
    next_device_seed: u64,
    now: u64,
    /// Ambient causal context for chain traffic: the trace of whichever
    /// workload a lifecycle method is currently acting for.
    current_trace: pds2_obs::TraceCtx,
}

impl Marketplace {
    /// Boots a marketplace with a single-validator governance chain.
    pub fn new(seed: u64) -> Marketplace {
        let mut registry = ContractRegistry::new();
        registry.register(WORKLOAD_CODE_ID, WorkloadContract::construct);
        let chain = Blockchain::single_validator(seed ^ 0xb10c, &[], registry);
        let mut manufacturers = ManufacturerRegistry::new();
        let manufacturer_keys = KeyPair::from_seed(seed ^ 0xfac);
        manufacturers.register_manufacturer(manufacturer_keys.public.clone());
        let mut ontology = Ontology::new();
        ontology.declare("sensor/environment/temperature");
        ontology.declare("sensor/environment/humidity");
        ontology.declare("sensor/motion/accelerometer");
        ontology.declare("sensor/health/heart-rate");
        Marketplace {
            chain,
            attestation: AttestationService::new(),
            ontology,
            manufacturers,
            manufacturer_keys,
            consumers: HashMap::new(),
            providers: HashMap::new(),
            executors: HashMap::new(),
            workloads: HashMap::new(),
            next_workload_id: 0,
            next_device_seed: 0x1000,
            now: 0,
            current_trace: pds2_obs::TraceCtx::NONE,
        }
    }

    /// Re-enters the causal context minted at workload submission, so
    /// chain traffic and phase events from this lifecycle step join the
    /// workload's trace. No-op ([`pds2_obs::TraceCtx::NONE`]) for unknown
    /// workloads or untraced submissions.
    fn enter_workload_trace(&mut self, workload_id: u64) {
        self.current_trace = self
            .workloads
            .get(&workload_id)
            .map(|r| r.trace)
            .unwrap_or(pds2_obs::TraceCtx::NONE);
    }

    /// Current logical marketplace time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the logical clock.
    pub fn tick(&mut self) {
        self.now += 1;
    }

    // ---------------------------------------------------------------
    // Registration
    // ---------------------------------------------------------------

    /// Registers a consumer with initial funds.
    pub fn register_consumer(&mut self, seed: u64, funds: u128) -> Address {
        let keys = KeyPair::from_seed(seed);
        let addr = Address::of(&keys.public);
        self.chain.state.genesis_credit(addr, funds);
        self.consumers.insert(addr, ConsumerAccount { keys });
        addr
    }

    /// Registers a provider with a storage choice (Fig. 3).
    pub fn register_provider(&mut self, seed: u64, storage: StorageChoice) -> Address {
        let keys = KeyPair::from_seed(seed);
        let addr = Address::of(&keys.public);
        let store = match storage {
            StorageChoice::Local => ProviderStore::Local(LocalStore::new()),
            StorageChoice::ThirdParty { publish_level } => {
                let key_bytes = pds2_crypto::hmac::hkdf(
                    b"pds2-provider-store",
                    &seed.to_le_bytes(),
                    b"key",
                    32,
                );
                ProviderStore::Third {
                    store: ThirdPartyStore::new(
                        key_bytes.clone().try_into().unwrap(),
                        publish_level,
                    ),
                    key: key_bytes.try_into().unwrap(),
                }
            }
        };
        self.providers.insert(
            addr,
            ProviderAccount {
                keys,
                store,
                devices: Vec::new(),
                readings: HashMap::new(),
            },
        );
        addr
    }

    /// Registers an executor with its own TEE-capable platform.
    pub fn register_executor(&mut self, seed: u64) -> Address {
        self.register_executor_with_cost_model(seed, CostModel::default())
    }

    /// Registers an executor with an explicit TEE cost model (ablation A2).
    pub fn register_executor_with_cost_model(&mut self, seed: u64, model: CostModel) -> Address {
        let keys = KeyPair::from_seed(seed);
        let addr = Address::of(&keys.public);
        let platform = Platform::new(seed, model);
        self.attestation
            .register_platform(platform.attestation_key());
        self.executors.insert(
            addr,
            ExecutorAccount {
                keys,
                platform,
                enclaves: HashMap::new(),
                crashed: false,
                recover_at_height: None,
            },
        );
        addr
    }

    /// Creates an ERC-20 reward token minted to the consumer — used to
    /// denominate workloads in fungible tokens instead of native currency.
    pub fn consumer_create_reward_token(
        &mut self,
        consumer: Address,
        symbol: &str,
        supply: u128,
    ) -> Result<pds2_chain::erc20::TokenId, MarketError> {
        let keys = self
            .consumers
            .get(&consumer)
            .ok_or(MarketError::UnknownActor("consumer"))?
            .keys
            .clone();
        let receipt = self.send_tx(
            &keys,
            TxKind::Erc20(pds2_chain::erc20::Erc20Op::Create {
                symbol: symbol.to_string(),
                initial_supply: supply,
            }),
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        Ok(pds2_chain::erc20::TokenId(u64::from_le_bytes(
            receipt.output[..8]
                .try_into()
                .expect("create returns token id"),
        )))
    }

    /// Provisions a manufacturer-endorsed device for a provider.
    pub fn provider_add_device(&mut self, provider: Address) -> Result<DeviceId, MarketError> {
        let seed = self.next_device_seed;
        self.next_device_seed += 1;
        let device = Device::new(seed);
        self.manufacturers
            .endorse(&self.manufacturer_keys.clone(), &device)
            .expect("platform manufacturer is registered");
        let id = device.id();
        let account = self
            .providers
            .get_mut(&provider)
            .ok_or(MarketError::UnknownActor("provider"))?;
        account.devices.push(device);
        Ok(id)
    }

    // ---------------------------------------------------------------
    // Data ingestion
    // ---------------------------------------------------------------

    /// A provider's device signs `data` reading-by-reading; the signed
    /// batch is stored in the provider's storage subsystem and registered
    /// on-chain as a dataset NFT.
    pub fn provider_ingest(
        &mut self,
        provider: Address,
        device_index: usize,
        data: &Dataset,
        metadata: Metadata,
    ) -> Result<RecordId, MarketError> {
        let now = self.now;
        let account = self
            .providers
            .get_mut(&provider)
            .ok_or(MarketError::UnknownActor("provider"))?;
        let device = account
            .devices
            .get_mut(device_index)
            .ok_or(MarketError::UnknownActor("device"))?;
        let readings: Vec<SignedReading> = data
            .x
            .iter()
            .zip(&data.y)
            .enumerate()
            .map(|(i, (row, &y))| device.sign_reading(now + i as u64, row.clone(), y))
            .collect();
        let mut enc = Encoder::new();
        enc.put_seq(&readings);
        let payload = enc.finish();
        let record = Record {
            payload,
            metadata,
            timestamp: now,
        };
        let id = account.store.backend_mut().put(record);
        account.readings.insert(id, readings);

        // Register the dataset on-chain as an NFT committing to its hash.
        let keys = account.keys.clone();
        let receipt = self.send_tx(
            &keys,
            TxKind::Erc721(Erc721Op::Mint {
                kind: AssetKind::Dataset,
                content: id.0,
                label: format!("dataset-{}", id.0.short()),
            }),
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        self.now += data.len() as u64;
        Ok(id)
    }

    // ---------------------------------------------------------------
    // Workload lifecycle (Fig. 2)
    // ---------------------------------------------------------------

    /// Step 1: the consumer submits a workload. Deploys the contract,
    /// funds the escrow for up to `max_executors` executors and mints the
    /// workload-code NFT.
    pub fn submit_workload(
        &mut self,
        consumer: Address,
        spec: WorkloadSpec,
        code: EnclaveCode,
        max_executors: u32,
    ) -> Result<u64, MarketError> {
        self.submit_workload_with_timeout(consumer, spec, code, max_executors, 0)
    }

    /// Like [`Marketplace::submit_workload`], but arms the contract's
    /// execution timeout: once Executing, anyone may abort the workload
    /// after `exec_timeout_blocks` governance blocks and refund the
    /// consumer — the escape hatch when every executor holding data
    /// crashes mid-workload (0 disables the timeout).
    pub fn submit_workload_with_timeout(
        &mut self,
        consumer: Address,
        spec: WorkloadSpec,
        code: EnclaveCode,
        max_executors: u32,
        exec_timeout_blocks: u64,
    ) -> Result<u64, MarketError> {
        if code.measurement() != spec.code_measurement {
            return Err(MarketError::Attestation(
                "spec measurement does not match supplied code".into(),
            ));
        }
        let keys = self
            .consumers
            .get(&consumer)
            .ok_or(MarketError::UnknownActor("consumer"))?
            .keys
            .clone();
        // A workload entering the system is the root of a new trace: every
        // later phase (join, accept, start, execute, payout) re-enters this
        // context, and the chain/net layers inherit it for the workload's
        // transactions and gossip.
        let root = pds2_obs::new_trace(
            "market",
            "workload.submit",
            pds2_obs::Stamp::Block(self.chain.height()),
            vec![
                ("max_executors", pds2_obs::Value::from(max_executors as u64)),
                ("timeout_blocks", pds2_obs::Value::from(exec_timeout_blocks)),
            ],
        );
        self.current_trace = root.ctx();
        // Mint the workload-code NFT (§III-A: code as a non-fungible asset).
        let code_content = sha256(&code.code);
        let receipt = self.send_tx(
            &keys,
            TxKind::Erc721(Erc721Op::Mint {
                kind: AssetKind::WorkloadCode,
                content: code_content,
                label: code.name.clone(),
            }),
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        // Deploy the workload contract.
        let init = WorkloadContract::init_bytes(
            spec.spec_hash(),
            spec.code_measurement.0,
            spec.provider_reward,
            spec.executor_fee,
            spec.min_providers,
            spec.min_records,
            0, // marketplace workloads carry no on-chain deadline by default
            exec_timeout_blocks,
            spec.reward_token,
        );
        let receipt = self.send_tx(
            &keys,
            TxKind::Deploy {
                code_id: WORKLOAD_CODE_ID.into(),
                init,
            },
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        let contract = receipt.deployed.expect("deploy receipt carries address");
        // Fund the escrow: native value, or an ERC-20 transfer followed by
        // a zero-value FUND acknowledgement (§III-A token rewards).
        let escrow = spec.required_escrow(max_executors);
        match spec.reward_token {
            None => {
                let receipt = self.send_tx(
                    &keys,
                    TxKind::Call {
                        contract,
                        input: calls::fund(),
                        value: escrow,
                    },
                );
                if !receipt.success {
                    return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
                }
            }
            Some(token) => {
                let receipt = self.send_tx(
                    &keys,
                    TxKind::Erc20(pds2_chain::erc20::Erc20Op::Transfer {
                        token,
                        to: contract,
                        amount: escrow,
                    }),
                );
                if !receipt.success {
                    return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
                }
                let receipt = self.send_tx(
                    &keys,
                    TxKind::Call {
                        contract,
                        input: calls::fund(),
                        value: 0,
                    },
                );
                if !receipt.success {
                    return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
                }
            }
        }
        let id = self.next_workload_id;
        self.next_workload_id += 1;
        self.workloads.insert(
            id,
            WorkloadRuntime {
                spec,
                code,
                contract,
                consumer,
                executors: Vec::new(),
                quotes: HashMap::new(),
                executor_data: HashMap::new(),
                certificates: Vec::new(),
                participation_tx: HashMap::new(),
                result_params: None,
                verifier_stats: HashMap::new(),
                trace: self.current_trace,
            },
        );
        self.tick();
        root.finish(
            pds2_obs::Stamp::Block(self.chain.height()),
            vec![("workload", pds2_obs::Value::from(id))],
        );
        Ok(id)
    }

    /// An executor joins a workload: launches the enclave, produces an
    /// attestation quote (verified against the approved measurement) and
    /// registers on-chain.
    pub fn executor_join(
        &mut self,
        executor: Address,
        workload_id: u64,
    ) -> Result<(), MarketError> {
        self.enter_workload_trace(workload_id);
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let code = runtime.code.clone();
        let expected = runtime.spec.code_measurement;
        let contract = runtime.contract;
        let account = self
            .executors
            .get_mut(&executor)
            .ok_or(MarketError::UnknownActor("executor"))?;
        let mut enclave = account.platform.launch(&code);
        let report_data = sha256(&executor.0 .0);
        let quote = enclave.attest(report_data);
        self.attestation
            .verify_expecting(&quote, expected)
            .map_err(|e| MarketError::Attestation(e.to_string()))?;
        account.enclaves.insert(workload_id, enclave);
        let keys = account.keys.clone();
        let receipt = self.send_tx(
            &keys,
            TxKind::Call {
                contract,
                input: calls::register_executor(),
                value: 0,
            },
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        let runtime = self.workloads.get_mut(&workload_id).expect("checked");
        runtime.executors.push(executor);
        runtime.quotes.insert(executor, quote);
        self.tick();
        pds2_obs::trace_event!(
            "market",
            "executor.join",
            pds2_obs::Stamp::Block(self.chain.height()),
            self.current_trace,
            "workload" => workload_id,
        );
        Ok(())
    }

    // ---------------------------------------------------------------
    // Executor crash-recovery (chaos-harness consumer)
    // ---------------------------------------------------------------

    /// Simulates a crash-stop failure of an executor: all volatile enclave
    /// state is lost and the executor is skipped by [`Marketplace::execute`]
    /// until it recovers. `recover_at_height` optionally schedules an
    /// automatic recovery once the governance chain reaches that height
    /// (the hook [`Marketplace::execute_with_retry`] backoff relies on).
    pub fn executor_crash(
        &mut self,
        executor: Address,
        recover_at_height: Option<u64>,
    ) -> Result<(), MarketError> {
        let account = self
            .executors
            .get_mut(&executor)
            .ok_or(MarketError::UnknownActor("executor"))?;
        account.crashed = true;
        account.recover_at_height = recover_at_height;
        account.enclaves.clear();
        Ok(())
    }

    /// Recovers a crashed executor: clears the crash flag and relaunches
    /// (and re-attests) an enclave for every workload the executor had
    /// joined — the original enclaves died with the crash.
    pub fn executor_recover(&mut self, executor: Address) -> Result<(), MarketError> {
        {
            let account = self
                .executors
                .get_mut(&executor)
                .ok_or(MarketError::UnknownActor("executor"))?;
            account.crashed = false;
            account.recover_at_height = None;
        }
        let mut joined: Vec<u64> = self
            .workloads
            .iter()
            .filter(|(_, rt)| rt.executors.contains(&executor))
            .map(|(id, _)| *id)
            .collect();
        joined.sort_unstable();
        for workload_id in joined {
            self.executor_relaunch(executor, workload_id)?;
        }
        Ok(())
    }

    /// Relaunches and re-attests the enclave for one workload, refreshing
    /// the quote providers verify against. The executor stays registered
    /// on-chain; only the off-chain enclave is replaced.
    pub fn executor_relaunch(
        &mut self,
        executor: Address,
        workload_id: u64,
    ) -> Result<(), MarketError> {
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let code = runtime.code.clone();
        let expected = runtime.spec.code_measurement;
        let account = self
            .executors
            .get_mut(&executor)
            .ok_or(MarketError::UnknownActor("executor"))?;
        let mut enclave = account.platform.launch(&code);
        let report_data = sha256(&executor.0 .0);
        let quote = enclave.attest(report_data);
        self.attestation
            .verify_expecting(&quote, expected)
            .map_err(|e| MarketError::Attestation(e.to_string()))?;
        account.enclaves.insert(workload_id, enclave);
        self.workloads
            .get_mut(&workload_id)
            .expect("checked")
            .quotes
            .insert(executor, quote);
        Ok(())
    }

    /// Whether an executor is currently in the crashed state.
    pub fn executor_is_crashed(&self, executor: Address) -> bool {
        self.executors.get(&executor).is_some_and(|a| a.crashed)
    }

    /// Wakes up crashed executors whose scheduled recovery height has
    /// been reached by the governance chain.
    fn recover_due_executors(&mut self) -> Result<(), MarketError> {
        let height = self.chain.height();
        let mut due: Vec<Address> = self
            .executors
            .iter()
            .filter(|(_, a)| a.crashed && a.recover_at_height.is_some_and(|h| height >= h))
            .map(|(addr, _)| *addr)
            .collect();
        due.sort();
        for executor in due {
            self.executor_recover(executor)?;
        }
        Ok(())
    }

    /// Step 2: storage subsystems match the precondition; returns the
    /// providers with at least one eligible record.
    pub fn eligible_providers(&self, workload_id: u64) -> Result<Vec<Address>, MarketError> {
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let mut eligible: Vec<Address> = self
            .providers
            .iter()
            .filter(|(_, account)| {
                !account
                    .store
                    .backend()
                    .match_workload(&runtime.spec.precondition, &self.ontology)
                    .is_empty()
            })
            .map(|(addr, _)| *addr)
            .collect();
        eligible.sort();
        Ok(eligible)
    }

    /// Steps 3–4: a provider accepts a workload through a chosen executor.
    ///
    /// The provider first verifies the executor's enclave attestation,
    /// then issues access grants and a participation certificate; the
    /// executor fetches the data, verifies every device signature and
    /// registers the contribution on-chain.
    pub fn provider_accept(
        &mut self,
        provider: Address,
        workload_id: u64,
        executor: Address,
    ) -> Result<(), MarketError> {
        self.enter_workload_trace(workload_id);
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let contract = runtime.contract;
        let expected_measurement = runtime.spec.code_measurement;
        let precondition = runtime.spec.precondition.clone();
        let feature_dim = runtime.spec.feature_dim as usize;
        let data_bounds = runtime.spec.data_bounds;
        if !runtime.executors.contains(&executor) {
            return Err(MarketError::UnknownActor("executor (not joined)"));
        }
        // Provider-side attestation check (§II-E: no trust in executors).
        let quote = runtime
            .quotes
            .get(&executor)
            .ok_or(MarketError::Attestation("no quote from executor".into()))?
            .clone();
        self.attestation
            .verify_expecting(&quote, expected_measurement)
            .map_err(|e| MarketError::Attestation(e.to_string()))?;

        let now = self.now;
        let executor_digest = sha256(&executor.0 .0);
        let (grants, cert, keys) = {
            let account = self
                .providers
                .get_mut(&provider)
                .ok_or(MarketError::UnknownActor("provider"))?;
            let matching = account
                .store
                .backend()
                .match_workload(&precondition, &self.ontology);
            if matching.is_empty() {
                return Err(MarketError::BadPhase("no eligible records".into()));
            }
            let n_readings: u64 = matching
                .iter()
                .map(|id| account.readings.get(id).map_or(0, |r| r.len() as u64))
                .sum();
            let grants: Vec<AccessGrant> = matching
                .iter()
                .map(|&id| {
                    AccessGrant::issue(
                        &account.keys,
                        id,
                        workload_id,
                        executor_digest,
                        now + 10_000,
                    )
                })
                .collect();
            let cert = ParticipationCertificate::issue(
                &account.keys,
                workload_id,
                contract,
                matching.clone(),
                n_readings,
                executor,
                now + 10_000,
            );
            (grants, cert, account.keys.clone())
        };
        drop(keys); // provider key not needed past issuance

        // Executor fetches and verifies the data.
        let mut dataset_rows: Vec<Vec<f64>> = Vec::new();
        let mut dataset_targets: Vec<f64> = Vec::new();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut out_of_bounds = 0u64;
        {
            let account = self.providers.get(&provider).expect("checked above");
            let mut verifier = ReadingVerifier::new(&self.manufacturers);
            for grant in &grants {
                let wire = match &account.store {
                    ProviderStore::Local(store) => {
                        store.fetch_with_grant(grant, &executor_digest, now)?
                    }
                    ProviderStore::Third { store, key } => {
                        let sealed_wire = store.fetch_with_grant(grant, &executor_digest, now)?;
                        // The provider releases its key to the *attested*
                        // enclave only; we already verified the quote.
                        let mut dec = pds2_crypto::codec::Decoder::new(&sealed_wire);
                        let nonce: [u8; 12] = dec
                            .get_raw(12)
                            .map_err(storage_decode_err)?
                            .try_into()
                            .unwrap();
                        let ciphertext = dec.get_bytes().map_err(storage_decode_err)?;
                        let tag = dec.get_digest().map_err(storage_decode_err)?;
                        ThirdPartyStore::unseal_payload(
                            key,
                            &pds2_crypto::chacha20::SealedBlob {
                                nonce,
                                ciphertext,
                                tag,
                            },
                        )?
                    }
                };
                let readings = decode_readings(&wire)
                    .map_err(|e| MarketError::Authenticity(format!("payload decode: {e}")))?;
                for reading in &readings {
                    if let Ok(()) = verifier.verify(reading) {
                        if reading.features.len() != feature_dim {
                            return Err(MarketError::ShapeMismatch(format!(
                                "reading has {} features, workload expects {feature_dim}",
                                reading.features.len()
                            )));
                        }
                        // §IV-C complementary check: verify the requirement
                        // directly on the data. Costs executor compute on
                        // irrelevant readings (counted), but leaks nothing
                        // via metadata.
                        if let Some((lo, hi)) = data_bounds {
                            if reading.features.iter().any(|v| *v < lo || *v > hi) {
                                out_of_bounds += 1;
                                continue;
                            }
                        }
                        dataset_rows.push(reading.features.clone());
                        dataset_targets.push(reading.target);
                    }
                }
            }
            accepted += verifier.accepted;
            rejected += verifier.rejected;
        }
        if dataset_rows.is_empty() {
            return Err(MarketError::Authenticity(
                "no readings survived verification".into(),
            ));
        }
        let verified_data = Dataset::new(dataset_rows, dataset_targets);

        // Executor registers the contribution on-chain with the cert hash.
        let cert_hash = cert.certificate_hash();
        let n_verified = verified_data.len() as u64;
        let exec_keys = self
            .executors
            .get(&executor)
            .ok_or(MarketError::UnknownActor("executor"))?
            .keys
            .clone();
        let receipt = self.send_tx(
            &exec_keys,
            TxKind::Call {
                contract,
                input: calls::submit_participation(&[(provider, n_verified, cert_hash)]),
                value: 0,
            },
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        let participation_tx_hash = receipt.tx_hash;

        let runtime = self.workloads.get_mut(&workload_id).expect("checked");
        runtime
            .executor_data
            .entry(executor)
            .or_default()
            .push((provider, verified_data));
        runtime.certificates.push(cert);
        runtime
            .participation_tx
            .insert(provider, participation_tx_hash);
        let stats = runtime.verifier_stats.entry(executor).or_insert((0, 0, 0));
        stats.0 += accepted;
        stats.1 += rejected;
        stats.2 += out_of_bounds;
        self.tick();
        pds2_obs::trace_event!(
            "market",
            "provider.accept",
            pds2_obs::Stamp::Block(self.chain.height()),
            self.current_trace,
            "workload" => workload_id,
            "accepted" => accepted,
            "rejected" => rejected,
        );
        Ok(())
    }

    /// Step 5 precursor: asks the governance layer to start execution.
    /// Returns `true` when the contract's quorum conditions were met.
    pub fn try_start(&mut self, workload_id: u64) -> Result<bool, MarketError> {
        self.enter_workload_trace(workload_id);
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let contract = runtime.contract;
        let keys = self
            .consumers
            .get(&runtime.consumer)
            .expect("consumer registered")
            .keys
            .clone();
        let receipt = self.send_tx(
            &keys,
            TxKind::Call {
                contract,
                input: calls::start(),
                value: 0,
            },
        );
        self.tick();
        Ok(receipt.success)
    }

    /// Step 5: executors train inside enclaves and aggregate peer-to-peer;
    /// every honest executor submits the agreed result hash on-chain.
    pub fn execute(&mut self, workload_id: u64) -> Result<ExecutionReport, MarketError> {
        self.enter_workload_trace(workload_id);
        let span = pds2_obs::span_traced(
            "market",
            "execute",
            pds2_obs::Stamp::Block(self.chain.height()),
            self.current_trace,
            Vec::new(),
        );
        // Chain traffic during the attempt nests under the execute span.
        let outer = self.current_trace;
        if span.id() != 0 {
            self.current_trace = span.ctx();
        }
        let res = self.execute_attempt(workload_id);
        self.current_trace = outer;
        match &res {
            Ok(report) => {
                pds2_obs::counter!("market.executions").inc();
                if pds2_obs::enabled() {
                    span.finish(
                        pds2_obs::Stamp::Block(self.chain.height()),
                        vec![
                            ("workload", pds2_obs::Value::from(workload_id)),
                            ("ok", pds2_obs::Value::from(1u64)),
                            (
                                "validation_score",
                                pds2_obs::Value::from(report.validation_score),
                            ),
                        ],
                    );
                }
            }
            Err(_) => {
                pds2_obs::counter!("market.execution_failures").inc();
                if pds2_obs::enabled() {
                    span.finish(
                        pds2_obs::Stamp::Block(self.chain.height()),
                        vec![
                            ("workload", pds2_obs::Value::from(workload_id)),
                            ("ok", pds2_obs::Value::from(0u64)),
                        ],
                    );
                }
            }
        }
        res
    }

    /// [`Marketplace::execute`] minus the observability wrapper.
    fn execute_attempt(&mut self, workload_id: u64) -> Result<ExecutionReport, MarketError> {
        let state = self.workload_state(workload_id)?;
        if state.phase != Phase::Executing {
            return Err(MarketError::BadPhase(format!(
                "expected Executing, contract is {:?}",
                state.phase
            )));
        }
        // Crash-recovery: executors whose scheduled recovery height has
        // passed come back (with freshly attested enclaves) before the
        // live set is computed.
        self.recover_due_executors()?;
        let (spec, contract, executors_with_data) = {
            let runtime = self
                .workloads
                .get(&workload_id)
                .ok_or(MarketError::UnknownWorkload(workload_id))?;
            let ex: Vec<Address> = runtime
                .executors
                .iter()
                .copied()
                .filter(|e| {
                    runtime.executor_data.contains_key(e)
                        && self.executors.get(e).is_some_and(|a| !a.crashed)
                })
                .collect();
            (runtime.spec.clone(), runtime.contract, ex)
        };
        if executors_with_data.is_empty() {
            return Err(MarketError::BadPhase("no live executor holds data".into()));
        }

        // Local training inside each executor's enclave.
        let mut local_params: Vec<(Address, Vec<f64>, u64)> = Vec::new();
        let mut enclave_costs = HashMap::new();
        for &executor in &executors_with_data {
            let pooled = {
                let runtime = self.workloads.get(&workload_id).expect("checked");
                let parts: Vec<Dataset> = runtime.executor_data[&executor]
                    .iter()
                    .map(|(_, d)| d.clone())
                    .collect();
                Dataset::concat(&parts)
            };
            let n = pooled.len() as u64;
            let params = {
                let account = self.executors.get_mut(&executor).expect("registered");
                let enclave = account
                    .enclaves
                    .get_mut(&workload_id)
                    .ok_or(MarketError::Attestation("enclave not launched".into()))?;
                // Cost model: ~200ns per sample-epoch of plain compute over
                // the pooled working set.
                let compute_ns = 200 * n * spec.local_epochs as u64;
                let working_set = n * (spec.feature_dim as u64 + 1) * 8;
                let spec_ref = &spec;
                let pooled_ref = &pooled;
                let params = enclave.execute(compute_ns, working_set, || {
                    train_local(spec_ref, pooled_ref, workload_id)
                });
                enclave_costs.insert(executor, enclave.meter());
                params
            };
            local_params.push((executor, params, n));
        }

        // Decentralized aggregation: iterative peer averaging converging to
        // the record-weighted mean (identical on every executor, so all
        // honest executors submit the same hash).
        let total_records: u64 = local_params.iter().map(|(_, _, n)| n).sum();
        let dim = local_params[0].1.len();
        let mut aggregated = vec![0.0; dim];
        for (_, params, n) in &local_params {
            for (a, p) in aggregated.iter_mut().zip(params) {
                *a += p * (*n as f64 / total_records as f64);
            }
        }
        // Aggregation rounds only affect simulated communication cost here;
        // the fixed point is the weighted mean.
        let result_hash = hash_params(&aggregated);

        // Validation score on the consumer's public validation set.
        let validation_score = score_params(&spec, &aggregated);

        // Every executor submits the result on-chain.
        for &executor in &executors_with_data {
            let keys = self.executors[&executor].keys.clone();
            let receipt = self.send_tx(
                &keys,
                TxKind::Call {
                    contract,
                    input: calls::submit_result(result_hash),
                    value: 0,
                },
            );
            if !receipt.success {
                return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
            }
        }

        let (accepted, rejected, out_of_bounds) = {
            let runtime = self.workloads.get_mut(&workload_id).expect("checked");
            runtime.result_params = Some(aggregated);
            runtime
                .verifier_stats
                .values()
                .fold((0, 0, 0), |acc, (a, r, f)| {
                    (acc.0 + a, acc.1 + r, acc.2 + f)
                })
        };
        self.tick();
        Ok(ExecutionReport {
            result_hash,
            validation_score,
            enclave_costs,
            readings_accepted: accepted,
            readings_rejected: rejected,
            readings_out_of_bounds: out_of_bounds,
        })
    }

    /// Runs [`Marketplace::execute`] under a retry discipline: after each
    /// failed attempt the marketplace mines empty governance blocks
    /// (doubling the backoff, and waking any executor whose scheduled
    /// recovery height passes) and tries again. Returns the report plus
    /// the number of attempts used; the last error if all attempts fail.
    pub fn execute_with_retry(
        &mut self,
        workload_id: u64,
        policy: RetryPolicy,
    ) -> Result<(ExecutionReport, u32), MarketError> {
        self.enter_workload_trace(workload_id);
        let max_attempts = policy.max_attempts.max(1);
        let mut backoff = policy.backoff_blocks.max(1);
        let mut attempt = 1u32;
        loop {
            match self.execute(workload_id) {
                Ok(report) => return Ok((report, attempt)),
                Err(e) if attempt >= max_attempts => return Err(e),
                Err(_) => {
                    pds2_obs::counter!("market.retries").inc();
                    pds2_obs::trace_event!(
                        "market",
                        "execute.retry",
                        pds2_obs::Stamp::Block(self.chain.height()),
                        self.current_trace,
                        "workload" => workload_id,
                        "attempt" => attempt as u64,
                        "backoff_blocks" => backoff,
                    );
                    self.mine_empty_blocks(backoff);
                    backoff *= 2;
                    attempt += 1;
                }
            }
        }
    }

    /// Advances the governance chain by `n` empty blocks. Retry backoff,
    /// deadline expiry and execution timeouts all measure time in blocks.
    pub fn mine_empty_blocks(&mut self, n: u64) {
        self.chain.set_trace_ctx(self.current_trace);
        for _ in 0..n {
            self.chain.produce_block();
        }
    }

    /// Gracefully aborts an Executing workload whose executors crashed
    /// mid-computation: mines past the contract's execution timeout if
    /// necessary, then calls ABORT, refunding the remaining escrow to the
    /// consumer. Returns the refunded amount.
    pub fn abort_workload(&mut self, workload_id: u64) -> Result<u128, MarketError> {
        self.enter_workload_trace(workload_id);
        let state = self.workload_state(workload_id)?;
        if state.phase != Phase::Executing {
            return Err(MarketError::BadPhase(format!(
                "expected Executing, contract is {:?}",
                state.phase
            )));
        }
        if state.exec_timeout_blocks == 0 {
            return Err(MarketError::BadPhase(
                "workload has no execution timeout".into(),
            ));
        }
        let abort_height = state.started_height + state.exec_timeout_blocks;
        let height = self.chain.height();
        if height <= abort_height {
            self.mine_empty_blocks(abort_height - height + 1);
        }
        let refund = state.funded;
        let contract = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?
            .contract;
        let keys = self
            .consumers
            .get(&state.consumer)
            .ok_or(MarketError::UnknownActor("consumer"))?
            .keys
            .clone();
        let receipt = self.send_tx(
            &keys,
            TxKind::Call {
                contract,
                input: calls::abort(),
                value: 0,
            },
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        self.tick();
        pds2_obs::counter!("market.aborts").inc();
        pds2_obs::trace_event!(
            "market",
            "workload.abort",
            pds2_obs::Stamp::Block(self.chain.height()),
            self.current_trace,
            "workload" => workload_id,
            "refund" => refund,
        );
        Ok(refund)
    }

    /// An adversarial executor submits a forged result hash (E12 hook).
    pub fn executor_submit_forged_result(
        &mut self,
        executor: Address,
        workload_id: u64,
        forged: Digest,
    ) -> Result<TxReceipt, MarketError> {
        self.enter_workload_trace(workload_id);
        let contract = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?
            .contract;
        let keys = self
            .executors
            .get(&executor)
            .ok_or(MarketError::UnknownActor("executor"))?
            .keys
            .clone();
        Ok(self.send_tx(
            &keys,
            TxKind::Call {
                contract,
                input: calls::submit_result(forged),
                value: 0,
            },
        ))
    }

    /// Step 6: reward computation (per the spec's scheme) and on-chain
    /// payout through the workload contract.
    pub fn finalize(&mut self, workload_id: u64) -> Result<FinalizeReport, MarketError> {
        self.enter_workload_trace(workload_id);
        let (spec, contract, consumer, provider_data) = {
            let runtime = self
                .workloads
                .get(&workload_id)
                .ok_or(MarketError::UnknownWorkload(workload_id))?;
            let mut provider_data: Vec<(Address, Dataset)> = Vec::new();
            for datasets in runtime.executor_data.values() {
                for (provider, data) in datasets {
                    provider_data.push((*provider, data.clone()));
                }
            }
            provider_data.sort_by_key(|(a, _)| *a);
            (
                runtime.spec.clone(),
                runtime.contract,
                runtime.consumer,
                provider_data,
            )
        };
        let shares = compute_shares(&spec, &provider_data, workload_id);
        let keys = self.consumers[&consumer].keys.clone();
        let receipt = self.send_tx(
            &keys,
            TxKind::Call {
                contract,
                input: calls::finalize(&shares),
                value: 0,
            },
        );
        if !receipt.success {
            return Err(MarketError::ChainFailure(receipt.error.unwrap_or_default()));
        }
        let state = self.workload_state(workload_id)?;
        // Fees go only to executors whose submitted result matches the
        // agreed one; abstainers and slashed executors earn nothing.
        let paid_executors: Vec<Address> = state
            .executors
            .iter()
            .filter(|(_, r)| **r == state.result)
            .map(|(e, _)| *e)
            .collect();
        self.tick();
        pds2_obs::trace_event!(
            "market",
            "workload.payout",
            pds2_obs::Stamp::Block(self.chain.height()),
            self.current_trace,
            "workload" => workload_id,
            "providers_paid" => shares.len(),
            "executors_paid" => paid_executors.len(),
        );
        Ok(FinalizeReport {
            provider_shares: shares,
            paid_executors,
            slashed: state.slashed,
        })
    }

    /// The consumer retrieves the trained model parameters.
    pub fn consumer_retrieve_result(&self, workload_id: u64) -> Result<Vec<f64>, MarketError> {
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let state = self.workload_state(workload_id)?;
        let params = runtime
            .result_params
            .clone()
            .ok_or_else(|| MarketError::BadPhase("no result yet".into()))?;
        // Integrity: the off-chain parameters must hash to the on-chain
        // agreed result.
        match state.result {
            Some(onchain) if onchain == hash_params(&params) => Ok(params),
            Some(_) => Err(MarketError::ChainFailure(
                "result does not match on-chain hash".into(),
            )),
            None => Err(MarketError::BadPhase("not finalized".into())),
        }
    }

    /// Produces a light-client proof that a provider's participation in a
    /// workload is recorded on-chain: the participation transaction's
    /// Merkle inclusion proof plus the signed header it verifies against.
    /// Providers use this in §IV-A reward disputes without trusting the
    /// marketplace operator.
    pub fn prove_participation(
        &self,
        workload_id: u64,
        provider: Address,
    ) -> Result<
        (
            pds2_chain::chain::InclusionProof,
            pds2_chain::block::BlockHeader,
        ),
        MarketError,
    > {
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let tx_hash = runtime
            .participation_tx
            .get(&provider)
            .ok_or(MarketError::UnknownActor("provider (no participation)"))?;
        let proof = self
            .chain
            .prove_inclusion(tx_hash)
            .ok_or_else(|| MarketError::ChainFailure("participation tx not on-chain".into()))?;
        let header = self
            .chain
            .block(proof.block_height)
            .expect("proof references an existing block")
            .header
            .clone();
        Ok((proof, header))
    }

    /// Reads the on-chain contract state for a workload.
    pub fn workload_state(&self, workload_id: u64) -> Result<WorkloadState, MarketError> {
        let runtime = self
            .workloads
            .get(&workload_id)
            .ok_or(MarketError::UnknownWorkload(workload_id))?;
        let snapshot = self
            .chain
            .state
            .contract_snapshot(&runtime.contract)
            .ok_or_else(|| MarketError::ChainFailure("contract missing".into()))?;
        WorkloadState::from_snapshot(&snapshot)
            .map_err(|e| MarketError::ChainFailure(e.to_string()))
    }

    /// The contract address of a workload.
    pub fn workload_contract(&self, workload_id: u64) -> Option<Address> {
        self.workloads.get(&workload_id).map(|r| r.contract)
    }

    /// Convenience: drives a workload through the whole Fig. 2 lifecycle.
    ///
    /// `assignments` maps each accepting provider to its chosen executor.
    pub fn run_full_lifecycle(
        &mut self,
        workload_id: u64,
        assignments: &[(Address, Address)],
    ) -> Result<(ExecutionReport, FinalizeReport), MarketError> {
        for (provider, executor) in assignments {
            self.provider_accept(*provider, workload_id, *executor)?;
        }
        if !self.try_start(workload_id)? {
            return Err(MarketError::BadPhase("start conditions not met".into()));
        }
        let exec_report = self.execute(workload_id)?;
        let fin_report = self.finalize(workload_id)?;
        Ok((exec_report, fin_report))
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    /// Signs, submits and mines one transaction, returning its receipt.
    /// The chain inherits the marketplace's ambient causal context, so the
    /// submit→inclusion→contract-event chain joins the workload's trace.
    fn send_tx(&mut self, keys: &KeyPair, kind: TxKind) -> TxReceipt {
        self.chain.set_trace_ctx(self.current_trace);
        let sender = Address::of(&keys.public);
        let nonce = self.chain.state.nonce(&sender);
        let tx = Transaction {
            from: keys.public.clone(),
            nonce,
            kind,
            gas_limit: 10_000_000,
            // High fee ceiling, zero tip: marketplace actors always clear
            // the base fee, and at the idle-chain base fee of zero they
            // pay nothing (legacy behaviour preserved).
            max_fee_per_gas: u64::MAX / 2,
            priority_fee_per_gas: 0,
        }
        .sign(keys);
        let hash = match self.chain.submit(tx) {
            Ok(h) => h,
            Err(e) => {
                return TxReceipt {
                    tx_hash: Digest::ZERO,
                    success: false,
                    gas_used: 0,
                    effective_gas_price: 0,
                    output: Vec::new(),
                    error: Some(e.to_string()),
                    events: Vec::new(),
                    deployed: None,
                }
            }
        };
        self.chain.produce_block();
        self.chain
            .receipt(&hash)
            .cloned()
            .expect("produced block contains the receipt")
    }
}

fn storage_decode_err(_e: pds2_crypto::codec::DecodeError) -> MarketError {
    MarketError::Storage(StorageError::CorruptCiphertext)
}

/// Decodes a reading batch written by `provider_ingest`.
pub fn decode_readings(
    bytes: &[u8],
) -> Result<Vec<SignedReading>, pds2_crypto::codec::DecodeError> {
    let mut dec = pds2_crypto::codec::Decoder::new(bytes);
    let readings: Vec<SignedReading> = dec.get_seq()?;
    dec.expect_end()?;
    Ok(readings)
}

/// Deterministic local training for one executor.
fn train_local(spec: &WorkloadSpec, data: &Dataset, workload_id: u64) -> Vec<f64> {
    let cfg = SgdConfig {
        learning_rate: 0.1,
        lr_decay: 0.98,
        batch_size: 16,
        epochs: spec.local_epochs as usize,
        clip: spec.dp_noise_multiplier.map(|_| 1.0),
        seed: workload_id,
    };
    match spec.task {
        TaskKind::BinaryClassification => {
            let mut m = LogisticRegression::new(spec.feature_dim as usize);
            match spec.dp_noise_multiplier {
                None => {
                    train(&mut m, data, &cfg);
                }
                Some(multiplier) => {
                    // DP-SGD: clipped per-epoch gradients plus seeded
                    // Gaussian noise (deterministic per workload, so all
                    // executors converge to the same aggregate).
                    train_dp_classifier(&mut m, data, &cfg, multiplier, workload_id);
                }
            }
            m.params()
        }
        TaskKind::Regression => {
            // Closed-form ridge: deterministic and robust to raw sensor
            // scales (naive SGD on unscaled temperature units diverges).
            let m = pds2_ml::solve::ridge_fit(data, 1e-6);
            m.params()
        }
    }
}

/// DP-SGD training for the classification workload path: per-step clipped
/// gradients with Gaussian noise, all seeded from the workload id so the
/// run stays replayable.
fn train_dp_classifier(
    model: &mut LogisticRegression,
    data: &Dataset,
    cfg: &SgdConfig,
    noise_multiplier: f64,
    workload_id: u64,
) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    if data.is_empty() {
        return;
    }
    let clip = cfg.clip.unwrap_or(1.0);
    let mut rng = StdRng::seed_from_u64(workload_id ^ 0xd9);
    let mut lr = cfg.learning_rate;
    for _ in 0..cfg.epochs {
        let batch: Vec<usize> = (0..cfg.batch_size.min(data.len()))
            .map(|_| rng.random_range(0..data.len()))
            .collect();
        let mut grad = model.gradient(data, &batch);
        pds2_ml::linalg::clip_norm(&mut grad, clip);
        let sigma = noise_multiplier * clip / batch.len() as f64;
        for g in &mut grad {
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *g += sigma * z;
        }
        let mut params = model.params();
        for (p, g) in params.iter_mut().zip(&grad) {
            *p -= lr * g;
        }
        model.set_params(&params);
        lr *= cfg.lr_decay;
    }
}

/// Scores aggregated parameters on the validation set.
fn score_params(spec: &WorkloadSpec, params: &[f64]) -> f64 {
    match spec.task {
        TaskKind::BinaryClassification => {
            let mut m = LogisticRegression::new(spec.feature_dim as usize);
            m.set_params(params);
            let preds: Vec<f64> = spec.validation.x.iter().map(|x| m.classify(x)).collect();
            pds2_ml::metrics::accuracy(&preds, &spec.validation.y)
        }
        TaskKind::Regression => {
            let mut m = LinearRegression::new(spec.feature_dim as usize);
            m.set_params(params);
            let preds: Vec<f64> = spec.validation.x.iter().map(|x| m.predict(x)).collect();
            -pds2_ml::metrics::mse(&preds, &spec.validation.y)
        }
    }
}

/// Canonical hash of model parameters (the on-chain result commitment).
pub fn hash_params(params: &[f64]) -> Digest {
    let mut enc = Encoder::new();
    enc.put_u64(params.len() as u64);
    for p in params {
        enc.put_f64(*p);
    }
    sha256(&enc.finish())
}

/// Computes reward shares per the spec's scheme. Deterministic: MC Shapley
/// seeds from the workload id.
fn compute_shares(
    spec: &WorkloadSpec,
    provider_data: &[(Address, Dataset)],
    workload_id: u64,
) -> Vec<(Address, u128)> {
    if provider_data.is_empty() {
        return Vec::new();
    }
    let total = spec.provider_reward;
    let raw: Vec<f64> = match spec.reward_scheme {
        RewardScheme::ProportionalToRecords => {
            let weights: Vec<f64> = provider_data.iter().map(|(_, d)| d.len() as f64).collect();
            proportional(&weights, total as f64)
        }
        RewardScheme::ShapleyExact | RewardScheme::ShapleyMonteCarlo { .. } => {
            let shards: Vec<Dataset> = provider_data.iter().map(|(_, d)| d.clone()).collect();
            let mut utility = MlUtility::new(
                shards,
                spec.validation.clone(),
                SgdConfig {
                    epochs: (spec.local_epochs as usize).max(1),
                    seed: workload_id,
                    ..Default::default()
                },
            );
            let phi = match spec.reward_scheme {
                RewardScheme::ShapleyExact => exact_shapley(&mut utility),
                // Parallel estimator: bit-identical to the serial one for
                // any PDS2_THREADS, so reward splits stay reproducible.
                RewardScheme::ShapleyMonteCarlo { permutations } => monte_carlo_shapley_par(
                    &utility,
                    &McConfig {
                        permutations: permutations as usize,
                        truncation_tolerance: 1e-3,
                        seed: workload_id,
                    },
                ),
                RewardScheme::ProportionalToRecords => unreachable!(),
            };
            to_reward_shares(&phi, total as f64)
        }
    };
    // Integer conversion with remainder to the largest share.
    let mut shares: Vec<(Address, u128)> = provider_data
        .iter()
        .zip(&raw)
        .map(|((addr, _), v)| (*addr, v.floor().max(0.0) as u128))
        .collect();
    let assigned: u128 = shares.iter().map(|(_, v)| v).sum();
    if assigned < total {
        if let Some(max_entry) = shares.iter_mut().max_by_key(|(_, v)| *v) {
            max_entry.1 += total - assigned;
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::tests_support::sample_spec_with;
    use pds2_ml::data::gaussian_blobs;
    use pds2_storage::semantic::MetaValue;

    fn temperature_metadata() -> Metadata {
        Metadata::new()
            .with(
                "type",
                MetaValue::Class("sensor/environment/temperature".into()),
                0,
            )
            .with("sample-rate-hz", MetaValue::Num(1.0), 1)
    }

    struct World {
        market: Marketplace,
        consumer: Address,
        providers: Vec<Address>,
        executors: Vec<Address>,
        workload: u64,
        full_data: Dataset,
    }

    fn build_world(n_providers: usize, n_executors: usize, scheme: RewardScheme) -> World {
        build_world_with_timeout(n_providers, n_executors, scheme, 0)
    }

    fn build_world_with_timeout(
        n_providers: usize,
        n_executors: usize,
        scheme: RewardScheme,
        exec_timeout_blocks: u64,
    ) -> World {
        let mut market = Marketplace::new(42);
        let consumer = market.register_consumer(1, 1_000_000);
        let data = gaussian_blobs(60 * n_providers, 3, 0.7, 7);
        let (train, validation) = data.split(0.2, 8);
        let shards = train.partition_iid(n_providers, 9);
        let mut providers = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            let storage = if i % 2 == 0 {
                StorageChoice::Local
            } else {
                StorageChoice::ThirdParty { publish_level: 1 }
            };
            let p = market.register_provider(1000 + i as u64, storage);
            market.provider_add_device(p).unwrap();
            market
                .provider_ingest(p, 0, shard, temperature_metadata())
                .unwrap();
            providers.push(p);
        }
        let executors: Vec<Address> = (0..n_executors)
            .map(|i| market.register_executor(2000 + i as u64))
            .collect();

        let code = EnclaveCode::new("logistic-trainer", 1, b"trainer-binary-v1".to_vec());
        let spec = sample_spec_with(code.measurement(), validation, scheme, n_providers as u32);
        let workload = market
            .submit_workload_with_timeout(
                consumer,
                spec,
                code,
                n_executors as u32,
                exec_timeout_blocks,
            )
            .unwrap();
        for &e in &executors {
            market.executor_join(e, workload).unwrap();
        }
        World {
            market,
            consumer,
            providers,
            executors,
            workload,
            full_data: train,
        }
    }

    #[test]
    fn full_lifecycle_proportional() {
        let mut w = build_world(4, 2, RewardScheme::ProportionalToRecords);
        let assignments: Vec<(Address, Address)> = w
            .providers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, w.executors[i % 2]))
            .collect();
        let (exec, fin) = w
            .market
            .run_full_lifecycle(w.workload, &assignments)
            .unwrap();
        assert!(
            exec.validation_score > 0.85,
            "score {}",
            exec.validation_score
        );
        assert_eq!(exec.readings_rejected, 0);
        assert!(exec.readings_accepted as usize >= w.full_data.len());
        assert!(fin.slashed.is_empty());
        assert_eq!(fin.paid_executors.len(), 2);
        // All provider rewards disbursed.
        let total: u128 = fin.provider_shares.iter().map(|(_, v)| v).sum();
        let st = w.market.workload_state(w.workload).unwrap();
        assert_eq!(total, st.provider_reward);
        // Providers actually hold their balances on-chain.
        for (p, v) in &fin.provider_shares {
            assert_eq!(w.market.chain.state.balance(p), *v);
        }
        // Consumer can retrieve the verified model.
        let params = w.market.consumer_retrieve_result(w.workload).unwrap();
        assert_eq!(params.len(), 4);
        // Full audit trail on-chain.
        assert!(!w
            .market
            .chain
            .events_by_topic("workload.completed")
            .is_empty());
        assert!(!w.market.chain.events_by_topic("erc721.mint").is_empty());
    }

    #[test]
    fn full_lifecycle_shapley() {
        let mut w = build_world(3, 1, RewardScheme::ShapleyExact);
        let assignments: Vec<(Address, Address)> =
            w.providers.iter().map(|&p| (p, w.executors[0])).collect();
        let (_, fin) = w
            .market
            .run_full_lifecycle(w.workload, &assignments)
            .unwrap();
        assert_eq!(fin.provider_shares.len(), 3);
        let total: u128 = fin.provider_shares.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn eligible_providers_respect_precondition() {
        let mut w = build_world(2, 1, RewardScheme::ProportionalToRecords);
        let eligible = w.market.eligible_providers(w.workload).unwrap();
        assert_eq!(eligible.len(), 2);
        // A provider with non-matching data is not eligible.
        let other = w.market.register_provider(5000, StorageChoice::Local);
        w.market.provider_add_device(other).unwrap();
        let shard = gaussian_blobs(10, 3, 1.0, 1);
        let meta = Metadata::new().with(
            "type",
            MetaValue::Class("sensor/motion/accelerometer".into()),
            0,
        );
        w.market.provider_ingest(other, 0, &shard, meta).unwrap();
        let eligible = w.market.eligible_providers(w.workload).unwrap();
        assert!(!eligible.contains(&other));
    }

    #[test]
    fn start_blocked_below_quorum() {
        let mut w = build_world(3, 1, RewardScheme::ProportionalToRecords);
        // Only one provider accepts; min_providers is 3.
        w.market
            .provider_accept(w.providers[0], w.workload, w.executors[0])
            .unwrap();
        assert!(!w.market.try_start(w.workload).unwrap());
        let st = w.market.workload_state(w.workload).unwrap();
        assert_eq!(st.phase, Phase::Open);
    }

    #[test]
    fn wrong_code_executor_rejected_at_join() {
        let mut w = build_world(2, 1, RewardScheme::ProportionalToRecords);
        // Build a second workload whose spec demands different code than
        // what the executor runs.
        let honest_code = EnclaveCode::new("trainer", 1, b"trainer-binary-v1".to_vec());
        let evil_code = EnclaveCode::new("trainer", 1, b"evil-binary".to_vec());
        let spec = sample_spec_with(
            honest_code.measurement(),
            gaussian_blobs(10, 3, 1.0, 1),
            RewardScheme::ProportionalToRecords,
            1,
        );
        // submit_workload itself rejects mismatched code.
        let err = w
            .market
            .submit_workload(w.consumer, spec, evil_code, 1)
            .unwrap_err();
        assert!(matches!(err, MarketError::Attestation(_)));
    }

    #[test]
    fn forged_result_executor_gets_slashed() {
        let mut w = build_world(4, 3, RewardScheme::ProportionalToRecords);
        for (i, &p) in w.providers.iter().enumerate() {
            // Give data to executors 0 and 1 only; executor 2 joins with
            // no data but still registered on-chain... must hold data to
            // submit a forged result? No: registered executors may submit.
            w.market
                .provider_accept(p, w.workload, w.executors[i % 2])
                .unwrap();
        }
        assert!(w.market.try_start(w.workload).unwrap());
        let exec = w.market.execute(w.workload).unwrap();
        // Executor 2 (no data, did not auto-submit) now submits a forgery.
        let forged = sha256(b"forged-model");
        let receipt = w
            .market
            .executor_submit_forged_result(w.executors[2], w.workload, forged)
            .unwrap();
        assert!(receipt.success);
        let fin = w.market.finalize(w.workload).unwrap();
        assert_eq!(fin.slashed, vec![w.executors[2]]);
        assert!(!fin.paid_executors.contains(&w.executors[2]));
        // The honest result stands.
        let st = w.market.workload_state(w.workload).unwrap();
        assert_eq!(st.result, Some(exec.result_hash));
    }

    #[test]
    fn provider_cannot_double_participate() {
        let mut w = build_world(3, 2, RewardScheme::ProportionalToRecords);
        w.market
            .provider_accept(w.providers[0], w.workload, w.executors[0])
            .unwrap();
        // Accepting again through another executor fails on-chain.
        let err = w
            .market
            .provider_accept(w.providers[0], w.workload, w.executors[1])
            .unwrap_err();
        assert!(matches!(err, MarketError::ChainFailure(_)), "{err}");
    }

    #[test]
    fn execute_requires_started_contract() {
        let mut w = build_world(2, 1, RewardScheme::ProportionalToRecords);
        let err = w.market.execute(w.workload).unwrap_err();
        assert!(matches!(err, MarketError::BadPhase(_)));
    }

    #[test]
    fn third_party_storage_works_end_to_end() {
        // build_world already mixes Local and ThirdParty providers; this
        // asserts a pure third-party world also completes.
        let mut market = Marketplace::new(7);
        let consumer = market.register_consumer(1, 1_000_000);
        let data = gaussian_blobs(120, 3, 0.7, 7);
        let (train, validation) = data.split(0.2, 8);
        let shards = train.partition_iid(2, 9);
        let mut providers = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            let p = market.register_provider(
                1000 + i as u64,
                StorageChoice::ThirdParty { publish_level: 1 },
            );
            market.provider_add_device(p).unwrap();
            market
                .provider_ingest(p, 0, shard, temperature_metadata())
                .unwrap();
            providers.push(p);
        }
        let executor = market.register_executor(2000);
        let code = EnclaveCode::new("trainer", 1, b"bin".to_vec());
        let spec = sample_spec_with(
            code.measurement(),
            validation,
            RewardScheme::ProportionalToRecords,
            2,
        );
        let workload = market.submit_workload(consumer, spec, code, 1).unwrap();
        market.executor_join(executor, workload).unwrap();
        let assignments: Vec<(Address, Address)> =
            providers.iter().map(|&p| (p, executor)).collect();
        let (exec, _) = market.run_full_lifecycle(workload, &assignments).unwrap();
        assert!(exec.validation_score > 0.8, "{}", exec.validation_score);
    }

    #[test]
    fn crashed_executor_aborts_with_refund() {
        let mut w = build_world_with_timeout(2, 1, RewardScheme::ProportionalToRecords, 3);
        for &p in &w.providers.clone() {
            w.market
                .provider_accept(p, w.workload, w.executors[0])
                .unwrap();
        }
        assert!(w.market.try_start(w.workload).unwrap());
        // The only executor holding data crashes with no recovery in sight.
        w.market.executor_crash(w.executors[0], None).unwrap();
        assert!(w.market.executor_is_crashed(w.executors[0]));
        let err = w.market.execute(w.workload).unwrap_err();
        assert!(matches!(err, MarketError::BadPhase(_)), "{err}");
        // Graceful abort: timeout elapses, consumer gets the escrow back.
        let escrow = w.market.workload_state(w.workload).unwrap().funded;
        assert!(escrow > 0);
        let before = w.market.chain.state.balance(&w.consumer);
        let refund = w.market.abort_workload(w.workload).unwrap();
        assert_eq!(refund, escrow);
        assert_eq!(w.market.chain.state.balance(&w.consumer), before + escrow);
        let st = w.market.workload_state(w.workload).unwrap();
        assert_eq!(st.phase, Phase::Cancelled);
        assert_eq!(st.funded, 0);
        assert!(!w
            .market
            .chain
            .events_by_topic("workload.aborted")
            .is_empty());
        // Refund XOR payout: a second abort cannot double-refund.
        assert!(w.market.abort_workload(w.workload).is_err());
    }

    #[test]
    fn abort_requires_timeout_and_executing_phase() {
        // No timeout configured: abort is unavailable even when Executing.
        let mut w = build_world(2, 1, RewardScheme::ProportionalToRecords);
        for &p in &w.providers.clone() {
            w.market
                .provider_accept(p, w.workload, w.executors[0])
                .unwrap();
        }
        assert!(w.market.try_start(w.workload).unwrap());
        let err = w.market.abort_workload(w.workload).unwrap_err();
        assert!(matches!(err, MarketError::BadPhase(_)), "{err}");
        // Open phase: abort is premature even with a timeout configured.
        let mut w = build_world_with_timeout(2, 1, RewardScheme::ProportionalToRecords, 3);
        let err = w.market.abort_workload(w.workload).unwrap_err();
        assert!(matches!(err, MarketError::BadPhase(_)), "{err}");
    }

    #[test]
    fn executor_recovery_retries_to_success() {
        let mut w = build_world_with_timeout(2, 1, RewardScheme::ProportionalToRecords, 100);
        for &p in &w.providers.clone() {
            w.market
                .provider_accept(p, w.workload, w.executors[0])
                .unwrap();
        }
        assert!(w.market.try_start(w.workload).unwrap());
        // Crash with a scheduled recovery a few blocks out: the retry
        // backoff mines the chain forward until the executor comes back.
        let recover_at = w.market.chain.height() + 4;
        w.market
            .executor_crash(w.executors[0], Some(recover_at))
            .unwrap();
        let (report, attempts) = w
            .market
            .execute_with_retry(w.workload, RetryPolicy::default())
            .unwrap();
        assert!(attempts > 1, "first attempt must fail while crashed");
        assert!(!w.market.executor_is_crashed(w.executors[0]));
        assert!(report.validation_score > 0.8, "{}", report.validation_score);
        // The relaunched enclave carries a fresh verified quote and the
        // lifecycle completes normally after recovery.
        let fin = w.market.finalize(w.workload).unwrap();
        assert_eq!(fin.paid_executors, vec![w.executors[0]]);
        assert!(fin.slashed.is_empty());
    }

    #[test]
    fn execute_skips_crashed_executor_when_another_is_live() {
        let mut w = build_world(4, 2, RewardScheme::ProportionalToRecords);
        let assignments: Vec<(Address, Address)> = w
            .providers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, w.executors[i % 2]))
            .collect();
        for (p, e) in &assignments {
            w.market.provider_accept(*p, w.workload, *e).unwrap();
        }
        assert!(w.market.try_start(w.workload).unwrap());
        w.market.executor_crash(w.executors[1], None).unwrap();
        // Execution proceeds on the surviving executor alone.
        let report = w.market.execute(w.workload).unwrap();
        assert!(report.enclave_costs.contains_key(&w.executors[0]));
        assert!(!report.enclave_costs.contains_key(&w.executors[1]));
    }

    #[test]
    fn dp_workload_completes_and_is_deterministic() {
        let run = || {
            let mut w = build_world(3, 1, RewardScheme::ProportionalToRecords);
            // Rebuild the workload with DP enabled.
            let code = EnclaveCode::new("dp-trainer", 1, b"dp-bin".to_vec());
            let mut spec = crate::workload::tests_support::sample_spec_with(
                code.measurement(),
                gaussian_blobs(30, 3, 0.7, 5),
                RewardScheme::ProportionalToRecords,
                3,
            );
            spec.dp_noise_multiplier = Some(0.5);
            spec.local_epochs = 30;
            let workload = w.market.submit_workload(w.consumer, spec, code, 1).unwrap();
            w.market.executor_join(w.executors[0], workload).unwrap();
            let assignments: Vec<(Address, Address)> =
                w.providers.iter().map(|&p| (p, w.executors[0])).collect();
            let (exec, _) = w.market.run_full_lifecycle(workload, &assignments).unwrap();
            exec
        };
        let a = run();
        let b = run();
        assert_eq!(a.result_hash, b.result_hash, "DP noise must be seeded");
        // DP training still learns something on an easy task.
        assert!(a.validation_score > 0.6, "{}", a.validation_score);
    }
}
