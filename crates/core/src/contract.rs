//! The per-workload smart contract (§III-A): "a separate smart contract
//! instance is deployed for managing the lifetime of each workload and
//! validate all of its steps."
//!
//! The contract is the governance layer's state machine for Fig. 2:
//!
//! ```text
//! Open ──(fund / register executors / submit participation)──▶
//! Open ──START (quorum + escrow check)──▶ Executing
//! Executing ──(executors submit result hashes)──▶
//! Executing ──FINALIZE (2/3 agreement, reward payout)──▶ Completed
//! Open ──CANCEL (consumer)──▶ Cancelled
//! Open ──EXPIRE (deadline passed, anyone)──▶ Cancelled
//! Executing ──ABORT (execution timeout passed, anyone)──▶ Cancelled
//! ```
//!
//! Tamper-resistance properties enforced on-chain (experiment E12):
//! double provider registration is rejected (double-claim defence),
//! deviating executors are identified by hash disagreement and slashed
//! (no fee), payouts cannot exceed escrow, and every step emits an audit
//! event.

use pds2_chain::address::Address;
use pds2_chain::contract::{CallCtx, Contract, ContractError};
use pds2_chain::erc20::TokenId;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::sha256::Digest;
use std::collections::BTreeMap;

/// Contract type id registered with the chain.
pub const WORKLOAD_CODE_ID: &str = "pds2-workload-v1";

/// Lifecycle phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Accepting funding, executors and participation.
    Open,
    /// Conditions met; executors computing.
    Executing,
    /// Result agreed and rewards paid.
    Completed,
    /// Cancelled by the consumer before start.
    Cancelled,
}

impl Phase {
    fn to_u8(self) -> u8 {
        match self {
            Phase::Open => 0,
            Phase::Executing => 1,
            Phase::Completed => 2,
            Phase::Cancelled => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Phase, DecodeError> {
        match v {
            0 => Ok(Phase::Open),
            1 => Ok(Phase::Executing),
            2 => Ok(Phase::Completed),
            3 => Ok(Phase::Cancelled),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// A provider's recorded contribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contribution {
    /// Records contributed.
    pub records: u64,
    /// Hash of the provider's participation certificate.
    pub certificate_hash: Digest,
    /// Executor that received the data.
    pub executor: Address,
}

/// Full contract state — also the off-chain query view (decode a
/// [`Contract::snapshot`] with [`WorkloadState::from_snapshot`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadState {
    /// The consumer who deployed and funds the workload.
    pub consumer: Address,
    /// Hash of the full workload specification.
    pub spec_hash: Digest,
    /// Approved enclave code measurement.
    pub code_measurement: Digest,
    /// Escrowed provider reward pool.
    pub provider_reward: u128,
    /// Fee per honest executor.
    pub executor_fee: u128,
    /// Start quorum: distinct providers.
    pub min_providers: u32,
    /// Start quorum: total records.
    pub min_records: u64,
    /// Block height after which anyone may expire an Open workload,
    /// refunding the consumer (0 = no deadline).
    pub deadline_height: u64,
    /// Blocks after START before anyone may abort a stuck Executing
    /// workload and refund the consumer (0 = no execution timeout).
    /// This is the chaos-harness escape hatch: if every executor holding
    /// data crashes mid-workload, the escrow is not locked forever.
    pub exec_timeout_blocks: u64,
    /// When set, rewards/fees are escrowed and paid in this ERC-20 token
    /// instead of native currency (§III-A fungible-token rewards).
    pub reward_token: Option<TokenId>,
    /// Total funded so far.
    pub funded: u128,
    /// Current phase.
    pub phase: Phase,
    /// Block height at which START succeeded (0 while still Open).
    pub started_height: u64,
    /// Registered executors and their submitted result hash (if any).
    pub executors: BTreeMap<Address, Option<Digest>>,
    /// Provider contributions.
    pub contributions: BTreeMap<Address, Contribution>,
    /// Agreed result hash after finalization.
    pub result: Option<Digest>,
    /// Executors slashed for disagreeing with the majority result.
    pub slashed: Vec<Address>,
}

impl WorkloadState {
    /// Decodes the canonical snapshot (off-chain inspection).
    pub fn from_snapshot(bytes: &[u8]) -> Result<WorkloadState, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let state = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(state)
    }

    /// Total records contributed.
    pub fn total_records(&self) -> u64 {
        self.contributions.values().map(|c| c.records).sum()
    }

    fn start_conditions_met(&self) -> bool {
        self.contributions.len() as u32 >= self.min_providers
            && self.total_records() >= self.min_records
            && !self.executors.is_empty()
            && self.funded
                >= self.provider_reward + self.executor_fee * self.executors.len() as u128
    }
}

impl Encode for WorkloadState {
    fn encode(&self, enc: &mut Encoder) {
        self.consumer.encode(enc);
        enc.put_digest(&self.spec_hash);
        enc.put_digest(&self.code_measurement);
        enc.put_u128(self.provider_reward);
        enc.put_u128(self.executor_fee);
        enc.put_u32(self.min_providers);
        enc.put_u64(self.min_records);
        enc.put_u64(self.deadline_height);
        enc.put_u64(self.exec_timeout_blocks);
        enc.put_option(&self.reward_token);
        enc.put_u128(self.funded);
        enc.put_u8(self.phase.to_u8());
        enc.put_u64(self.started_height);
        enc.put_u64(self.executors.len() as u64);
        for (addr, result) in &self.executors {
            addr.encode(enc);
            enc.put_option(result);
        }
        enc.put_u64(self.contributions.len() as u64);
        for (addr, c) in &self.contributions {
            addr.encode(enc);
            enc.put_u64(c.records);
            enc.put_digest(&c.certificate_hash);
            c.executor.encode(enc);
        }
        enc.put_option(&self.result);
        enc.put_u64(self.slashed.len() as u64);
        for s in &self.slashed {
            s.encode(enc);
        }
    }
}

impl Decode for WorkloadState {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let consumer = Address::decode(dec)?;
        let spec_hash = dec.get_digest()?;
        let code_measurement = dec.get_digest()?;
        let provider_reward = dec.get_u128()?;
        let executor_fee = dec.get_u128()?;
        let min_providers = dec.get_u32()?;
        let min_records = dec.get_u64()?;
        let deadline_height = dec.get_u64()?;
        let exec_timeout_blocks = dec.get_u64()?;
        let reward_token = dec.get_option()?;
        let funded = dec.get_u128()?;
        let phase = Phase::from_u8(dec.get_u8()?)?;
        let started_height = dec.get_u64()?;
        let n_exec = dec.get_u64()? as usize;
        let mut executors = BTreeMap::new();
        for _ in 0..n_exec {
            let addr = Address::decode(dec)?;
            let result = dec.get_option()?;
            executors.insert(addr, result);
        }
        let n_contrib = dec.get_u64()? as usize;
        let mut contributions = BTreeMap::new();
        for _ in 0..n_contrib {
            let addr = Address::decode(dec)?;
            contributions.insert(
                addr,
                Contribution {
                    records: dec.get_u64()?,
                    certificate_hash: dec.get_digest()?,
                    executor: Address::decode(dec)?,
                },
            );
        }
        let result = dec.get_option()?;
        let n_slashed = dec.get_u64()? as usize;
        let mut slashed = Vec::with_capacity(n_slashed);
        for _ in 0..n_slashed {
            slashed.push(Address::decode(dec)?);
        }
        Ok(WorkloadState {
            consumer,
            spec_hash,
            code_measurement,
            provider_reward,
            executor_fee,
            min_providers,
            min_records,
            deadline_height,
            exec_timeout_blocks,
            reward_token,
            funded,
            phase,
            started_height,
            executors,
            contributions,
            result,
            slashed,
        })
    }
}

/// Call-input builder/parser for the contract's methods.
pub mod calls {
    use super::*;

    pub(super) const FUND: u8 = 0;
    pub(super) const REGISTER_EXECUTOR: u8 = 1;
    pub(super) const SUBMIT_PARTICIPATION: u8 = 2;
    pub(super) const START: u8 = 3;
    pub(super) const SUBMIT_RESULT: u8 = 4;
    pub(super) const FINALIZE: u8 = 5;
    pub(super) const CANCEL: u8 = 6;
    pub(super) const EXPIRE: u8 = 7;
    pub(super) const ABORT: u8 = 8;

    /// Escrow funding (attach value to the call).
    pub fn fund() -> Vec<u8> {
        vec![FUND]
    }

    /// Executor self-registration.
    pub fn register_executor() -> Vec<u8> {
        vec![REGISTER_EXECUTOR]
    }

    /// Executor submits the providers whose data it holds.
    pub fn submit_participation(providers: &[(Address, u64, Digest)]) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(SUBMIT_PARTICIPATION);
        enc.put_u64(providers.len() as u64);
        for (addr, records, cert) in providers {
            addr.encode(&mut enc);
            enc.put_u64(*records);
            enc.put_digest(cert);
        }
        enc.finish()
    }

    /// Requests the Open → Executing transition.
    pub fn start() -> Vec<u8> {
        vec![START]
    }

    /// Executor submits its result hash.
    pub fn submit_result(result: Digest) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(SUBMIT_RESULT);
        enc.put_digest(&result);
        enc.finish()
    }

    /// Finalizes with per-provider reward shares.
    pub fn finalize(shares: &[(Address, u128)]) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(FINALIZE);
        enc.put_u64(shares.len() as u64);
        for (addr, amount) in shares {
            addr.encode(&mut enc);
            enc.put_u128(*amount);
        }
        enc.finish()
    }

    /// Consumer cancellation (Open phase only).
    pub fn cancel() -> Vec<u8> {
        vec![CANCEL]
    }

    /// Public expiry after the deadline (Open phase only; anyone may call).
    pub fn expire() -> Vec<u8> {
        vec![EXPIRE]
    }

    /// Public abort of a stuck Executing workload once the execution
    /// timeout has elapsed; refunds the remaining escrow to the consumer.
    pub fn abort() -> Vec<u8> {
        vec![ABORT]
    }
}

/// The deployable workload contract.
pub struct WorkloadContract {
    state: WorkloadState,
}

impl WorkloadContract {
    /// Constructor registered with the chain under [`WORKLOAD_CODE_ID`].
    ///
    /// Init bytes: `spec_hash ‖ code_measurement ‖ provider_reward ‖
    /// executor_fee ‖ min_providers ‖ min_records`; the deployer becomes
    /// the consumer.
    pub fn construct(deployer: Address, init: &[u8]) -> Result<Box<dyn Contract>, ContractError> {
        let mut dec = Decoder::new(init);
        let parse = |e: DecodeError| ContractError::BadInput(e.to_string());
        let spec_hash = dec.get_digest().map_err(parse)?;
        let code_measurement = dec.get_digest().map_err(parse)?;
        let provider_reward = dec.get_u128().map_err(parse)?;
        let executor_fee = dec.get_u128().map_err(parse)?;
        let min_providers = dec.get_u32().map_err(parse)?;
        let min_records = dec.get_u64().map_err(parse)?;
        let deadline_height = dec.get_u64().map_err(parse)?;
        let exec_timeout_blocks = dec.get_u64().map_err(parse)?;
        let reward_token = dec.get_option().map_err(parse)?;
        dec.expect_end().map_err(parse)?;
        pds2_obs::counter!("market.contracts_created").inc();
        pds2_obs::event!(
            "market",
            "contract.created",
            pds2_obs::Stamp::None,
            "provider_reward" => provider_reward,
            "executor_fee" => executor_fee,
            "min_providers" => min_providers,
            "min_records" => min_records,
        );
        Ok(Box::new(WorkloadContract {
            state: WorkloadState {
                consumer: deployer,
                spec_hash,
                code_measurement,
                provider_reward,
                executor_fee,
                min_providers,
                min_records,
                deadline_height,
                exec_timeout_blocks,
                reward_token,
                funded: 0,
                phase: Phase::Open,
                started_height: 0,
                executors: BTreeMap::new(),
                contributions: BTreeMap::new(),
                result: None,
                slashed: Vec::new(),
            },
        }))
    }

    /// Canonical deploy-init encoding.
    #[allow(clippy::too_many_arguments)]
    pub fn init_bytes(
        spec_hash: Digest,
        code_measurement: Digest,
        provider_reward: u128,
        executor_fee: u128,
        min_providers: u32,
        min_records: u64,
        deadline_height: u64,
        exec_timeout_blocks: u64,
        reward_token: Option<TokenId>,
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_digest(&spec_hash);
        enc.put_digest(&code_measurement);
        enc.put_u128(provider_reward);
        enc.put_u128(executor_fee);
        enc.put_u32(min_providers);
        enc.put_u64(min_records);
        enc.put_u64(deadline_height);
        enc.put_u64(exec_timeout_blocks);
        enc.put_option(&reward_token);
        enc.finish()
    }

    /// Pays out in the workload's denomination (native or ERC-20).
    fn pay(&self, ctx: &mut CallCtx<'_>, to: Address, amount: u128) {
        match self.state.reward_token {
            None => ctx.transfer_out(to, amount),
            Some(token) => ctx.transfer_token_out(token, to, amount),
        }
    }

    fn require_phase(&self, phase: Phase) -> Result<(), ContractError> {
        if self.state.phase != phase {
            return Err(ContractError::Revert(format!(
                "wrong phase: expected {phase:?}, contract is {:?}",
                self.state.phase
            )));
        }
        Ok(())
    }
}

impl Contract for WorkloadContract {
    fn call(&mut self, ctx: &mut CallCtx<'_>, input: &[u8]) -> Result<Vec<u8>, ContractError> {
        ctx.charge_gas(5_000)?;
        let (&tag, rest) = input
            .split_first()
            .ok_or_else(|| ContractError::BadInput("empty input".into()))?;
        let mut dec = Decoder::new(rest);
        let parse = |e: DecodeError| ContractError::BadInput(e.to_string());
        match tag {
            calls::FUND => {
                self.require_phase(Phase::Open)?;
                match self.state.reward_token {
                    None => {
                        if ctx.value == 0 {
                            return Err(ContractError::Revert("funding requires value".into()));
                        }
                        self.state.funded += ctx.value;
                    }
                    Some(token) => {
                        // Token escrow: the consumer transfers ERC-20 to
                        // the contract address first, then calls FUND to
                        // acknowledge the balance.
                        if ctx.value != 0 {
                            return Err(ContractError::Revert(
                                "token-denominated workload takes no native value".into(),
                            ));
                        }
                        let balance = ctx.own_token_balance(token);
                        if balance <= self.state.funded {
                            return Err(ContractError::Revert(format!(
                                "no new token escrow: balance {balance}, recorded {}",
                                self.state.funded
                            )));
                        }
                        self.state.funded = balance;
                    }
                }
                ctx.emit(
                    "workload.funded",
                    format!("by={} total={}", ctx.sender, self.state.funded),
                )?;
                pds2_obs::counter!("market.fund_calls").inc();
                pds2_obs::trace_event!(
                    "market",
                    "contract.funded",
                    pds2_obs::Stamp::Block(ctx.block_height),
                    ctx.trace,
                    "escrow" => self.state.funded,
                );
                Ok(Vec::new())
            }
            calls::REGISTER_EXECUTOR => {
                self.require_phase(Phase::Open)?;
                if self.state.executors.contains_key(&ctx.sender) {
                    return Err(ContractError::Revert("executor already registered".into()));
                }
                self.state.executors.insert(ctx.sender, None);
                ctx.emit(
                    "workload.executor_registered",
                    format!("executor={}", ctx.sender),
                )?;
                Ok(Vec::new())
            }
            calls::SUBMIT_PARTICIPATION => {
                self.require_phase(Phase::Open)?;
                if !self.state.executors.contains_key(&ctx.sender) {
                    return Err(ContractError::Revert("unregistered executor".into()));
                }
                let n = dec.get_u64().map_err(parse)? as usize;
                for _ in 0..n {
                    let provider = Address::decode(&mut dec).map_err(parse)?;
                    let records = dec.get_u64().map_err(parse)?;
                    let cert = dec.get_digest().map_err(parse)?;
                    if records == 0 {
                        return Err(ContractError::Revert("empty contribution".into()));
                    }
                    if self.state.contributions.contains_key(&provider) {
                        // Double-claim defence (§IV-B / E12).
                        return Err(ContractError::Revert(format!(
                            "provider {provider} already contributed"
                        )));
                    }
                    ctx.charge_gas(pds2_chain::gas::STORAGE_WORD * 4)?;
                    self.state.contributions.insert(
                        provider,
                        Contribution {
                            records,
                            certificate_hash: cert,
                            executor: ctx.sender,
                        },
                    );
                    ctx.emit(
                        "workload.participation",
                        format!(
                            "provider={provider} records={records} executor={} cert={}",
                            ctx.sender,
                            cert.short()
                        ),
                    )?;
                }
                Ok(Vec::new())
            }
            calls::START => {
                self.require_phase(Phase::Open)?;
                if !self.state.start_conditions_met() {
                    return Err(ContractError::Revert(format!(
                        "start conditions not met: providers {}/{}, records {}/{}, funded {}/{}",
                        self.state.contributions.len(),
                        self.state.min_providers,
                        self.state.total_records(),
                        self.state.min_records,
                        self.state.funded,
                        self.state.provider_reward
                            + self.state.executor_fee * self.state.executors.len() as u128
                    )));
                }
                self.state.phase = Phase::Executing;
                self.state.started_height = ctx.block_height;
                pds2_obs::counter!("market.contracts_started").inc();
                pds2_obs::trace_event!(
                    "market",
                    "contract.phase",
                    pds2_obs::Stamp::Block(ctx.block_height),
                    ctx.trace,
                    "from" => "open", "to" => "executing",
                    "providers" => self.state.contributions.len(),
                    "records" => self.state.total_records(),
                    "escrow" => self.state.funded,
                );
                ctx.emit(
                    "workload.started",
                    format!(
                        "providers={} records={} executors={}",
                        self.state.contributions.len(),
                        self.state.total_records(),
                        self.state.executors.len()
                    ),
                )?;
                Ok(Vec::new())
            }
            calls::SUBMIT_RESULT => {
                self.require_phase(Phase::Executing)?;
                let result = dec.get_digest().map_err(parse)?;
                match self.state.executors.get_mut(&ctx.sender) {
                    None => return Err(ContractError::Revert("unregistered executor".into())),
                    Some(slot) if slot.is_some() => {
                        return Err(ContractError::Revert("result already submitted".into()))
                    }
                    Some(slot) => *slot = Some(result),
                }
                ctx.emit(
                    "workload.result_submitted",
                    format!("executor={} result={}", ctx.sender, result.short()),
                )?;
                Ok(Vec::new())
            }
            calls::FINALIZE => {
                self.require_phase(Phase::Executing)?;
                // Every executor that actually received data must have
                // answered; registered-but-dataless executors may abstain
                // (they neither block finalization nor earn a fee).
                let contributing: std::collections::BTreeSet<Address> = self
                    .state
                    .contributions
                    .values()
                    .map(|c| c.executor)
                    .collect();
                for e in &contributing {
                    if self.state.executors.get(e).is_none_or(|r| r.is_none()) {
                        return Err(ContractError::Revert(format!(
                            "results outstanding from contributing executor {e}"
                        )));
                    }
                }
                // Majority over the executors that voted, requiring a 2/3
                // supermajority of voters.
                let voters: Vec<(&Address, &Digest)> = self
                    .state
                    .executors
                    .iter()
                    .filter_map(|(a, r)| r.as_ref().map(|d| (a, d)))
                    .collect();
                if voters.is_empty() {
                    return Err(ContractError::Revert("no results submitted".into()));
                }
                let mut counts: BTreeMap<Digest, u32> = BTreeMap::new();
                for (_, r) in &voters {
                    *counts.entry(**r).or_default() += 1;
                }
                let (majority, votes) = counts
                    .iter()
                    .max_by_key(|(_, c)| **c)
                    .map(|(d, c)| (*d, *c))
                    .expect("at least one voter");
                let total = voters.len() as u32;
                if votes * 3 < total * 2 {
                    return Err(ContractError::Revert(format!(
                        "no 2/3 agreement: best {votes}/{total}"
                    )));
                }
                // Identify slashed (disagreeing) voters.
                let slashed: Vec<Address> = voters
                    .iter()
                    .filter(|(_, r)| **r != majority)
                    .map(|(a, _)| **a)
                    .collect();
                // Parse and validate shares.
                let n = dec.get_u64().map_err(parse)? as usize;
                let mut shares = Vec::with_capacity(n);
                let mut total_shares: u128 = 0;
                for _ in 0..n {
                    let provider = Address::decode(&mut dec).map_err(parse)?;
                    let amount = dec.get_u128().map_err(parse)?;
                    if !self.state.contributions.contains_key(&provider) {
                        return Err(ContractError::Revert(format!(
                            "share for non-contributor {provider}"
                        )));
                    }
                    total_shares = total_shares.saturating_add(amount);
                    shares.push((provider, amount));
                }
                if total_shares > self.state.provider_reward {
                    return Err(ContractError::Revert(format!(
                        "shares {total_shares} exceed reward pool {}",
                        self.state.provider_reward
                    )));
                }
                // Payouts.
                let mut paid: u128 = 0;
                for (provider, amount) in &shares {
                    if *amount > 0 {
                        self.pay(ctx, *provider, *amount);
                        paid += amount;
                    }
                }
                for (executor, result) in &self.state.executors {
                    if *result == Some(majority) {
                        self.pay(ctx, *executor, self.state.executor_fee);
                        paid += self.state.executor_fee;
                    }
                }
                // Refund the unspent escrow.
                if self.state.funded > paid {
                    self.pay(ctx, self.state.consumer, self.state.funded - paid);
                }
                for s in &slashed {
                    ctx.emit("workload.slashed", format!("executor={s}"))?;
                }
                self.state.slashed = slashed;
                self.state.result = Some(majority);
                self.state.phase = Phase::Completed;
                pds2_obs::counter!("market.contracts_completed").inc();
                pds2_obs::trace_event!(
                    "market",
                    "contract.phase",
                    pds2_obs::Stamp::Block(ctx.block_height),
                    ctx.trace,
                    "from" => "executing", "to" => "completed",
                    "paid" => paid,
                    "slashed" => self.state.slashed.len(),
                );
                ctx.emit(
                    "workload.completed",
                    format!(
                        "result={} providers_paid={} total_paid={paid}",
                        majority.short(),
                        shares.len()
                    ),
                )?;
                Ok(majority.as_bytes().to_vec())
            }
            calls::CANCEL => {
                self.require_phase(Phase::Open)?;
                if ctx.sender != self.state.consumer {
                    return Err(ContractError::Revert("only the consumer may cancel".into()));
                }
                if self.state.funded > 0 {
                    self.pay(ctx, self.state.consumer, self.state.funded);
                    self.state.funded = 0;
                }
                self.state.phase = Phase::Cancelled;
                pds2_obs::counter!("market.contracts_cancelled").inc();
                pds2_obs::trace_event!(
                    "market",
                    "contract.phase",
                    pds2_obs::Stamp::Block(ctx.block_height),
                    ctx.trace,
                    "from" => "open", "to" => "cancelled", "reason" => "cancel",
                );
                ctx.emit("workload.cancelled", format!("by={}", ctx.sender))?;
                Ok(Vec::new())
            }
            calls::EXPIRE => {
                self.require_phase(Phase::Open)?;
                if self.state.deadline_height == 0 {
                    return Err(ContractError::Revert("workload has no deadline".into()));
                }
                if ctx.block_height <= self.state.deadline_height {
                    return Err(ContractError::Revert(format!(
                        "deadline {} not reached at height {}",
                        self.state.deadline_height, ctx.block_height
                    )));
                }
                if self.state.funded > 0 {
                    self.pay(ctx, self.state.consumer, self.state.funded);
                    self.state.funded = 0;
                }
                self.state.phase = Phase::Cancelled;
                pds2_obs::counter!("market.contracts_expired").inc();
                pds2_obs::trace_event!(
                    "market",
                    "contract.phase",
                    pds2_obs::Stamp::Block(ctx.block_height),
                    ctx.trace,
                    "from" => "open", "to" => "cancelled", "reason" => "expired",
                );
                ctx.emit(
                    "workload.expired",
                    format!("by={} at_height={}", ctx.sender, ctx.block_height),
                )?;
                Ok(Vec::new())
            }
            calls::ABORT => {
                self.require_phase(Phase::Executing)?;
                if self.state.exec_timeout_blocks == 0 {
                    return Err(ContractError::Revert(
                        "workload has no execution timeout".into(),
                    ));
                }
                let abort_height = self.state.started_height + self.state.exec_timeout_blocks;
                if ctx.block_height <= abort_height {
                    return Err(ContractError::Revert(format!(
                        "execution timeout {abort_height} not reached at height {}",
                        ctx.block_height
                    )));
                }
                if self.state.funded > 0 {
                    self.pay(ctx, self.state.consumer, self.state.funded);
                    self.state.funded = 0;
                }
                self.state.phase = Phase::Cancelled;
                pds2_obs::counter!("market.contracts_aborted").inc();
                pds2_obs::trace_event!(
                    "market",
                    "contract.phase",
                    pds2_obs::Stamp::Block(ctx.block_height),
                    ctx.trace,
                    "from" => "executing", "to" => "cancelled", "reason" => "abort",
                );
                ctx.emit(
                    "workload.aborted",
                    format!("by={} at_height={}", ctx.sender, ctx.block_height),
                )?;
                Ok(Vec::new())
            }
            t => Err(ContractError::BadInput(format!("unknown method {t}"))),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.state.to_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), ContractError> {
        self.state = WorkloadState::from_snapshot(snapshot)
            .map_err(|e| ContractError::BadInput(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_chain::chain::Blockchain;
    use pds2_chain::contract::ContractRegistry;
    use pds2_chain::tx::{Transaction, TxKind};
    use pds2_crypto::sha256::sha256;
    use pds2_crypto::KeyPair;

    struct Harness {
        chain: Blockchain,
        consumer: KeyPair,
        executors: Vec<KeyPair>,
        providers: Vec<Address>,
        contract: Address,
        nonces: std::collections::HashMap<Address, u64>,
    }

    impl Harness {
        fn new(n_executors: usize) -> Harness {
            Harness::new_with_timeout(n_executors, 0)
        }

        fn new_with_timeout(n_executors: usize, exec_timeout_blocks: u64) -> Harness {
            let consumer = KeyPair::from_seed(1);
            let executors: Vec<KeyPair> = (0..n_executors as u64)
                .map(|i| KeyPair::from_seed(100 + i))
                .collect();
            let providers: Vec<Address> = (0..4u64)
                .map(|i| Address::of(&KeyPair::from_seed(200 + i).public))
                .collect();
            let mut registry = ContractRegistry::new();
            registry.register(WORKLOAD_CODE_ID, WorkloadContract::construct);
            let mut alloc: Vec<(Address, u128)> = vec![(Address::of(&consumer.public), 1_000_000)];
            for e in &executors {
                alloc.push((Address::of(&e.public), 10_000));
            }
            let chain = Blockchain::single_validator(999, &alloc, registry);

            // Deploy.
            let init = WorkloadContract::init_bytes(
                sha256(b"spec"),
                sha256(b"code"),
                10_000,
                500,
                2,
                10,
                0,
                exec_timeout_blocks,
                None,
            );
            let mut h = Harness {
                chain,
                consumer,
                executors,
                providers,
                contract: Address::contract(&Address::of(&KeyPair::from_seed(1).public), 0),
                nonces: Default::default(),
            };
            let consumer_kp = h.consumer.clone();
            let receipt = h.send(
                &consumer_kp,
                TxKind::Deploy {
                    code_id: WORKLOAD_CODE_ID.into(),
                    init,
                },
            );
            assert!(receipt.success, "{:?}", receipt.error);
            h.contract = receipt.deployed.unwrap();
            h
        }

        fn send(&mut self, from: &KeyPair, kind: TxKind) -> pds2_chain::state::TxReceipt {
            let addr = Address::of(&from.public);
            let nonce = self.nonces.entry(addr).or_insert(0);
            let tx = Transaction {
                from: from.public.clone(),
                nonce: *nonce,
                kind,
                gas_limit: 5_000_000,
                max_fee_per_gas: 0,
                priority_fee_per_gas: 0,
            }
            .sign(from);
            *nonce += 1;
            let hash = self.chain.submit(tx).unwrap();
            self.chain.produce_block();
            self.chain.receipt(&hash).unwrap().clone()
        }

        fn call(
            &mut self,
            from: &KeyPair,
            input: Vec<u8>,
            value: u128,
        ) -> pds2_chain::state::TxReceipt {
            let contract = self.contract;
            self.send(
                from,
                TxKind::Call {
                    contract,
                    input,
                    value,
                },
            )
        }

        fn state(&self) -> WorkloadState {
            WorkloadState::from_snapshot(
                &self.chain.state.contract_snapshot(&self.contract).unwrap(),
            )
            .unwrap()
        }

        /// Drives the happy path up to Executing with 2 executors and
        /// the first 3 providers.
        fn drive_to_executing(&mut self) {
            let consumer = self.consumer.clone();
            let execs = self.executors.clone();
            let r = self.call(&consumer, calls::fund(), 11_000);
            assert!(r.success, "{:?}", r.error);
            for e in &execs {
                let r = self.call(e, calls::register_executor(), 0);
                assert!(r.success, "{:?}", r.error);
            }
            let p = self.providers.clone();
            let r = self.call(
                &execs[0],
                calls::submit_participation(&[
                    (p[0], 20, sha256(b"cert0")),
                    (p[1], 30, sha256(b"cert1")),
                ]),
                0,
            );
            assert!(r.success, "{:?}", r.error);
            let r = self.call(
                &execs[1],
                calls::submit_participation(&[(p[2], 25, sha256(b"cert2"))]),
                0,
            );
            assert!(r.success, "{:?}", r.error);
            let r = self.call(&consumer, calls::start(), 0);
            assert!(r.success, "{:?}", r.error);
            assert_eq!(self.state().phase, Phase::Executing);
        }
    }

    #[test]
    fn full_lifecycle_happy_path() {
        let mut h = Harness::new(2);
        h.drive_to_executing();
        let result = sha256(b"model-v1");
        let execs = h.executors.clone();
        for e in &execs {
            let r = h.call(e, calls::submit_result(result), 0);
            assert!(r.success, "{:?}", r.error);
        }
        let consumer = h.consumer.clone();
        let p = h.providers.clone();
        let shares = [(p[0], 3_000u128), (p[1], 4_000u128), (p[2], 3_000u128)];
        let r = h.call(&consumer, calls::finalize(&shares), 0);
        assert!(r.success, "{:?}", r.error);
        let st = h.state();
        assert_eq!(st.phase, Phase::Completed);
        assert_eq!(st.result, Some(result));
        assert!(st.slashed.is_empty());
        // Providers paid.
        assert_eq!(h.chain.state.balance(&p[0]), 3_000);
        assert_eq!(h.chain.state.balance(&p[1]), 4_000);
        assert_eq!(h.chain.state.balance(&p[2]), 3_000);
        // Executors got fees.
        for e in &execs {
            assert_eq!(h.chain.state.balance(&Address::of(&e.public)), 10_000 + 500);
        }
        // Escrow fully disbursed; contract empty.
        assert_eq!(h.chain.state.balance(&h.contract), 0);
        // Audit trail exists.
        assert!(!h.chain.events_by_topic("workload.completed").is_empty());
    }

    #[test]
    fn start_requires_quorum_and_escrow() {
        let mut h = Harness::new(1);
        let consumer = h.consumer.clone();
        // No funding, no providers: start fails.
        let r = h.call(&consumer, calls::start(), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("start conditions"));
    }

    #[test]
    fn double_provider_registration_rejected() {
        let mut h = Harness::new(2);
        let consumer = h.consumer.clone();
        let execs = h.executors.clone();
        let p = h.providers.clone();
        h.call(&consumer, calls::fund(), 11_000);
        for e in &execs {
            h.call(e, calls::register_executor(), 0);
        }
        let r = h.call(
            &execs[0],
            calls::submit_participation(&[(p[0], 20, sha256(b"cert0"))]),
            0,
        );
        assert!(r.success);
        // Same provider via another executor: the double-claim attack.
        let r = h.call(
            &execs[1],
            calls::submit_participation(&[(p[0], 20, sha256(b"cert0-again"))]),
            0,
        );
        assert!(!r.success);
        assert!(r.error.unwrap().contains("already contributed"));
        assert_eq!(h.state().contributions.len(), 1, "no partial effects");
    }

    #[test]
    fn disagreeing_executor_is_slashed() {
        let mut h = Harness::new(3);
        let consumer = h.consumer.clone();
        let execs = h.executors.clone();
        let p = h.providers.clone();
        h.call(&consumer, calls::fund(), 12_000);
        for e in &execs {
            h.call(e, calls::register_executor(), 0);
        }
        h.call(
            &execs[0],
            calls::submit_participation(&[(p[0], 20, sha256(b"c0")), (p[1], 20, sha256(b"c1"))]),
            0,
        );
        h.call(&consumer, calls::start(), 0);
        let honest = sha256(b"honest-result");
        let forged = sha256(b"forged-result");
        h.call(&execs[0], calls::submit_result(honest), 0);
        h.call(&execs[1], calls::submit_result(honest), 0);
        h.call(&execs[2], calls::submit_result(forged), 0);
        let r = h.call(
            &consumer,
            calls::finalize(&[(p[0], 5_000), (p[1], 5_000)]),
            0,
        );
        assert!(r.success, "{:?}", r.error);
        let st = h.state();
        assert_eq!(st.result, Some(honest));
        assert_eq!(st.slashed, vec![Address::of(&execs[2].public)]);
        // Slashed executor got no fee; honest ones did.
        assert_eq!(
            h.chain.state.balance(&Address::of(&execs[2].public)),
            10_000
        );
        assert_eq!(
            h.chain.state.balance(&Address::of(&execs[0].public)),
            10_500
        );
        assert!(!h.chain.events_by_topic("workload.slashed").is_empty());
    }

    #[test]
    fn no_supermajority_blocks_finalization() {
        let mut h = Harness::new(3);
        let consumer = h.consumer.clone();
        let execs = h.executors.clone();
        let p = h.providers.clone();
        h.call(&consumer, calls::fund(), 12_000);
        for e in &execs {
            h.call(e, calls::register_executor(), 0);
        }
        h.call(
            &execs[0],
            calls::submit_participation(&[(p[0], 20, sha256(b"c0")), (p[1], 20, sha256(b"c1"))]),
            0,
        );
        h.call(&consumer, calls::start(), 0);
        h.call(&execs[0], calls::submit_result(sha256(b"a")), 0);
        h.call(&execs[1], calls::submit_result(sha256(b"b")), 0);
        h.call(&execs[2], calls::submit_result(sha256(b"c")), 0);
        let r = h.call(&consumer, calls::finalize(&[(p[0], 1)]), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("no 2/3 agreement"));
        assert_eq!(h.state().phase, Phase::Executing, "stays executing");
    }

    #[test]
    fn overspending_shares_rejected() {
        let mut h = Harness::new(2);
        h.drive_to_executing();
        let execs = h.executors.clone();
        let result = sha256(b"r");
        for e in &execs {
            h.call(e, calls::submit_result(result), 0);
        }
        let consumer = h.consumer.clone();
        let p = h.providers.clone();
        let r = h.call(&consumer, calls::finalize(&[(p[0], 50_000)]), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("exceed reward pool"));
    }

    #[test]
    fn share_for_non_contributor_rejected() {
        let mut h = Harness::new(2);
        h.drive_to_executing();
        let execs = h.executors.clone();
        let result = sha256(b"r");
        for e in &execs {
            h.call(e, calls::submit_result(result), 0);
        }
        let consumer = h.consumer.clone();
        let outsider = Address::of(&KeyPair::from_seed(9999).public);
        let r = h.call(&consumer, calls::finalize(&[(outsider, 1)]), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("non-contributor"));
    }

    #[test]
    fn cancel_refunds_consumer() {
        let mut h = Harness::new(1);
        let consumer = h.consumer.clone();
        let consumer_addr = Address::of(&consumer.public);
        let balance_before = h.chain.state.balance(&consumer_addr);
        h.call(&consumer, calls::fund(), 5_000);
        assert_eq!(
            h.chain.state.balance(&consumer_addr),
            balance_before - 5_000
        );
        let r = h.call(&consumer, calls::cancel(), 0);
        assert!(r.success, "{:?}", r.error);
        assert_eq!(h.chain.state.balance(&consumer_addr), balance_before);
        assert_eq!(h.state().phase, Phase::Cancelled);
    }

    #[test]
    fn only_consumer_cancels() {
        let mut h = Harness::new(1);
        let exec = h.executors[0].clone();
        let r = h.call(&exec, calls::cancel(), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("only the consumer"));
    }

    #[test]
    fn unregistered_executor_cannot_participate_or_submit() {
        let mut h = Harness::new(1);
        let consumer = h.consumer.clone();
        let p = h.providers.clone();
        h.call(&consumer, calls::fund(), 11_000);
        let rogue = KeyPair::from_seed(777);
        // Needs funds for gas-free chain, but account must exist: sending
        // from a zero-balance account is fine (no fees).
        let r = h.call(
            &rogue,
            calls::submit_participation(&[(p[0], 5, sha256(b"c"))]),
            0,
        );
        assert!(!r.success);
        assert!(r.error.unwrap().contains("unregistered"));
    }

    #[test]
    fn result_submission_only_once_and_only_executing() {
        let mut h = Harness::new(2);
        let execs = h.executors.clone();
        // Before start: wrong phase.
        let r = h.call(&execs[0], calls::submit_result(sha256(b"early")), 0);
        assert!(!r.success);
        h.drive_to_executing();
        let r = h.call(&execs[0], calls::submit_result(sha256(b"a")), 0);
        assert!(r.success);
        let r = h.call(&execs[0], calls::submit_result(sha256(b"b")), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("already submitted"));
    }

    #[test]
    fn expiry_refunds_after_deadline() {
        // Deploy a contract WITH a deadline via raw init bytes.
        let consumer = KeyPair::from_seed(1);
        let stranger = KeyPair::from_seed(55);
        let mut registry = ContractRegistry::new();
        registry.register(WORKLOAD_CODE_ID, WorkloadContract::construct);
        let mut chain = Blockchain::single_validator(
            999,
            &[(Address::of(&consumer.public), 100_000)],
            registry,
        );
        let init = WorkloadContract::init_bytes(
            sha256(b"spec"),
            sha256(b"code"),
            10_000,
            500,
            2,
            10,
            3, // deadline at height 3
            0,
            None,
        );
        let deploy = Transaction {
            from: consumer.public.clone(),
            nonce: 0,
            kind: TxKind::Deploy {
                code_id: WORKLOAD_CODE_ID.into(),
                init,
            },
            gas_limit: 5_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&consumer);
        let h = chain.submit(deploy).unwrap();
        chain.produce_block();
        let contract = chain.receipt(&h).unwrap().deployed.unwrap();
        // Fund it.
        let fund = Transaction {
            from: consumer.public.clone(),
            nonce: 1,
            kind: TxKind::Call {
                contract,
                input: calls::fund(),
                value: 11_000,
            },
            gas_limit: 5_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&consumer);
        chain.submit(fund).unwrap();
        chain.produce_block(); // height 2
                               // Expiry before the deadline fails.
        let early = Transaction {
            from: stranger.public.clone(),
            nonce: 0,
            kind: TxKind::Call {
                contract,
                input: calls::expire(),
                value: 0,
            },
            gas_limit: 5_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&stranger);
        let h = chain.submit(early).unwrap();
        chain.produce_block(); // height 3: executes at height 2... block idx 2
        let r = chain.receipt(&h).unwrap();
        assert!(!r.success, "{:?}", r.error);
        // Mine past the deadline, then anyone can expire.
        chain.produce_block();
        chain.produce_block();
        let late = Transaction {
            from: stranger.public.clone(),
            nonce: 1,
            kind: TxKind::Call {
                contract,
                input: calls::expire(),
                value: 0,
            },
            gas_limit: 5_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&stranger);
        let h = chain.submit(late).unwrap();
        chain.produce_block();
        let r = chain.receipt(&h).unwrap();
        assert!(r.success, "{:?}", r.error);
        // Consumer refunded in full (no gas fees in this chain).
        assert_eq!(chain.state.balance(&Address::of(&consumer.public)), 100_000);
        let st = WorkloadState::from_snapshot(&chain.state.contract_snapshot(&contract).unwrap())
            .unwrap();
        assert_eq!(st.phase, Phase::Cancelled);
        assert!(!chain.events_by_topic("workload.expired").is_empty());
    }

    #[test]
    fn abort_refunds_after_execution_timeout() {
        let mut h = Harness::new_with_timeout(2, 2);
        let consumer_addr = Address::of(&h.consumer.public);
        let balance_before = h.chain.state.balance(&consumer_addr);
        h.drive_to_executing();
        let st = h.state();
        assert!(st.started_height > 0, "START records its height");
        // Too early: the timeout window has not elapsed.
        let stranger = KeyPair::from_seed(55);
        let r = h.call(&stranger, calls::abort(), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("not reached"));
        // Mine past started_height + exec_timeout_blocks; anyone may abort.
        h.chain.produce_block();
        h.chain.produce_block();
        h.chain.produce_block();
        let r = h.call(&stranger, calls::abort(), 0);
        assert!(r.success, "{:?}", r.error);
        let st = h.state();
        assert_eq!(st.phase, Phase::Cancelled);
        assert_eq!(st.funded, 0);
        // Full escrow back with the consumer (nothing was paid out).
        assert_eq!(h.chain.state.balance(&consumer_addr), balance_before);
        assert!(!h.chain.events_by_topic("workload.aborted").is_empty());
        // Terminal: no result submission or second abort afterwards.
        let exec = h.executors[0].clone();
        assert!(
            !h.call(&exec, calls::submit_result(sha256(b"late")), 0)
                .success
        );
        assert!(!h.call(&stranger, calls::abort(), 0).success);
    }

    #[test]
    fn abort_requires_configured_timeout_and_executing_phase() {
        let mut h = Harness::new(2);
        let stranger = KeyPair::from_seed(55);
        // Open phase: wrong phase regardless of timeout config.
        let r = h.call(&stranger, calls::abort(), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("wrong phase"));
        h.drive_to_executing();
        // Executing but no timeout configured.
        let r = h.call(&stranger, calls::abort(), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("no execution timeout"));
    }

    #[test]
    fn no_deadline_means_no_public_expiry() {
        let mut h = Harness::new(1);
        let stranger = KeyPair::from_seed(55);
        h.call(&h.consumer.clone(), calls::fund(), 1_000);
        let r = h.call(&stranger, calls::expire(), 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("no deadline"));
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let mut h = Harness::new(2);
        h.drive_to_executing();
        let snap = h.chain.state.contract_snapshot(&h.contract).unwrap();
        let st = WorkloadState::from_snapshot(&snap).unwrap();
        assert_eq!(st.to_bytes(), snap);
        assert_eq!(st.contributions.len(), 3);
        assert_eq!(st.total_records(), 75);
    }
}
