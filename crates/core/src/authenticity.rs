//! Data authenticity (§IV-B).
//!
//! "Data should be signed directly by the device to minimize the risk of
//! forgery, and include timestamps to prevent the user from creating
//! multiple copies and reselling them. The signature is verified by
//! executors … the signature also serves as a 'seal of quality'."
//!
//! - [`Device`] — an IoT device with an embedded key, producing signed,
//!   timestamped, monotonically-sequenced readings;
//! - [`ManufacturerRegistry`] — manufacturers endorse device keys, the
//!   "seal of quality" buyers price in;
//! - [`ReadingVerifier`] — the executor-side checks: signature validity,
//!   manufacturer endorsement, per-device timestamp monotonicity and
//!   global duplicate rejection.

use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::schnorr::{KeyPair, PublicKey, Signature};
use pds2_crypto::sha256::{sha256, Digest};
use std::collections::{HashMap, HashSet};

/// A device identifier (hash of the device public key).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DeviceId(pub Digest);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device:{}", self.0.short())
    }
}

/// One signed sensor reading: the §IV-B unit of authentic data.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedReading {
    /// Producing device.
    pub device: DeviceId,
    /// Device public key (carried for verification).
    pub device_key: PublicKey,
    /// Per-device monotone sequence number.
    pub sequence: u64,
    /// Device clock timestamp.
    pub timestamp: u64,
    /// Feature vector.
    pub features: Vec<f64>,
    /// Target/label value.
    pub target: f64,
    /// Device signature over everything above.
    pub signature: Signature,
}

impl SignedReading {
    fn payload_bytes(
        device: &DeviceId,
        sequence: u64,
        timestamp: u64,
        features: &[f64],
        target: f64,
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(b"pds2-reading-v1");
        enc.put_digest(&device.0);
        enc.put_u64(sequence);
        enc.put_u64(timestamp);
        enc.put_u64(features.len() as u64);
        for f in features {
            enc.put_f64(*f);
        }
        enc.put_f64(target);
        enc.finish()
    }

    /// Content hash (duplicate detection key).
    pub fn reading_hash(&self) -> Digest {
        sha256(&Self::payload_bytes(
            &self.device,
            self.sequence,
            self.timestamp,
            &self.features,
            self.target,
        ))
    }

    /// Checks only the cryptographic signature (see [`ReadingVerifier`]
    /// for the full §IV-B pipeline).
    pub fn signature_valid(&self) -> bool {
        if DeviceId(sha256(&self.device_key.to_bytes())) != self.device {
            return false;
        }
        let payload = Self::payload_bytes(
            &self.device,
            self.sequence,
            self.timestamp,
            &self.features,
            self.target,
        );
        self.device_key.verify(&payload, &self.signature)
    }
}

impl Encode for SignedReading {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(&self.device.0);
        self.device_key.encode(enc);
        enc.put_u64(self.sequence);
        enc.put_u64(self.timestamp);
        enc.put_u64(self.features.len() as u64);
        for f in &self.features {
            enc.put_f64(*f);
        }
        enc.put_f64(self.target);
        self.signature.encode(enc);
    }
}

impl Decode for SignedReading {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let device = DeviceId(dec.get_digest()?);
        let device_key = PublicKey::decode(dec)?;
        let sequence = dec.get_u64()?;
        let timestamp = dec.get_u64()?;
        let n = dec.get_u64()? as usize;
        let mut features = Vec::with_capacity(n);
        for _ in 0..n {
            features.push(dec.get_f64()?);
        }
        let target = dec.get_f64()?;
        let signature = Signature::decode(dec)?;
        Ok(SignedReading {
            device,
            device_key,
            sequence,
            timestamp,
            features,
            target,
            signature,
        })
    }
}

/// A simulated IoT device with an embedded signing key.
pub struct Device {
    keys: KeyPair,
    id: DeviceId,
    next_sequence: u64,
    last_timestamp: u64,
}

impl Device {
    /// Provisions a device with a deterministic key.
    pub fn new(seed: u64) -> Device {
        let keys = KeyPair::from_seed(seed ^ 0xdef_1ce);
        let id = DeviceId(sha256(&keys.public.to_bytes()));
        Device {
            keys,
            id,
            next_sequence: 0,
            last_timestamp: 0,
        }
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device public key (for manufacturer endorsement).
    pub fn public_key(&self) -> &PublicKey {
        &self.keys.public
    }

    /// Produces one signed reading. Timestamps must be non-decreasing;
    /// the device firmware enforces this.
    pub fn sign_reading(
        &mut self,
        timestamp: u64,
        features: Vec<f64>,
        target: f64,
    ) -> SignedReading {
        assert!(
            timestamp >= self.last_timestamp,
            "device clock must not run backwards"
        );
        self.last_timestamp = timestamp;
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        let payload =
            SignedReading::payload_bytes(&self.id, sequence, timestamp, &features, target);
        SignedReading {
            device: self.id,
            device_key: self.keys.public.clone(),
            sequence,
            timestamp,
            features,
            target,
            signature: self.keys.sign(&payload),
        }
    }
}

/// A manufacturer endorsement of a device key — the "seal of quality".
#[derive(Clone, Debug)]
pub struct DeviceCertificate {
    /// Endorsed device.
    pub device: DeviceId,
    /// Endorsing manufacturer key.
    pub manufacturer: PublicKey,
    /// Manufacturer signature over the device key.
    pub signature: Signature,
}

/// Registry of trusted manufacturers and their endorsed devices.
#[derive(Default)]
pub struct ManufacturerRegistry {
    manufacturers: HashMap<Digest, PublicKey>,
    endorsements: HashMap<DeviceId, Digest>,
}

impl ManufacturerRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a trusted manufacturer, returning its id.
    pub fn register_manufacturer(&mut self, key: PublicKey) -> Digest {
        let id = sha256(&key.to_bytes());
        self.manufacturers.insert(id, key);
        id
    }

    /// Manufacturer endorses a device (issues and records a certificate).
    pub fn endorse(
        &mut self,
        manufacturer: &KeyPair,
        device: &Device,
    ) -> Option<DeviceCertificate> {
        let mid = sha256(&manufacturer.public.to_bytes());
        if !self.manufacturers.contains_key(&mid) {
            return None;
        }
        let payload = endorsement_payload(&device.id(), device.public_key());
        let cert = DeviceCertificate {
            device: device.id(),
            manufacturer: manufacturer.public.clone(),
            signature: manufacturer.sign(&payload),
        };
        self.endorsements.insert(device.id(), mid);
        Some(cert)
    }

    /// Whether a device carries a valid endorsement from a trusted
    /// manufacturer.
    pub fn is_endorsed(&self, device: DeviceId) -> bool {
        self.endorsements.contains_key(&device)
    }

    /// Verifies a presented certificate against the trusted set.
    pub fn verify_certificate(&self, cert: &DeviceCertificate, device_key: &PublicKey) -> bool {
        let mid = sha256(&cert.manufacturer.to_bytes());
        if !self.manufacturers.contains_key(&mid) {
            return false;
        }
        let payload = endorsement_payload(&cert.device, device_key);
        cert.manufacturer.verify(&payload, &cert.signature)
    }
}

fn endorsement_payload(device: &DeviceId, device_key: &PublicKey) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_raw(b"pds2-device-endorsement-v1");
    enc.put_digest(&device.0);
    device_key.encode(&mut enc);
    enc.finish()
}

/// Why a reading was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadingRejection {
    /// Cryptographic signature invalid (forgery).
    BadSignature,
    /// Device not endorsed by a trusted manufacturer.
    UntrustedDevice,
    /// The same reading was seen before (resale/replay).
    Duplicate,
    /// Timestamp older than an already-accepted reading from the device.
    StaleTimestamp,
    /// Sequence number reused or rewound.
    SequenceReplay,
}

impl std::fmt::Display for ReadingRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadingRejection::BadSignature => write!(f, "invalid device signature"),
            ReadingRejection::UntrustedDevice => write!(f, "device not endorsed"),
            ReadingRejection::Duplicate => write!(f, "duplicate reading"),
            ReadingRejection::StaleTimestamp => write!(f, "timestamp regression"),
            ReadingRejection::SequenceReplay => write!(f, "sequence number replay"),
        }
    }
}

/// The executor-side verification pipeline (§IV-B: "The signature is
/// verified by executors, as buyers do not have access to the data").
pub struct ReadingVerifier<'a> {
    registry: &'a ManufacturerRegistry,
    seen: HashSet<Digest>,
    device_high_water: HashMap<DeviceId, (u64, u64)>, // (sequence, timestamp)
    /// Readings accepted.
    pub accepted: u64,
    /// Readings rejected, by count.
    pub rejected: u64,
}

impl<'a> ReadingVerifier<'a> {
    /// Creates a verifier trusting `registry`.
    pub fn new(registry: &'a ManufacturerRegistry) -> Self {
        ReadingVerifier {
            registry,
            seen: HashSet::new(),
            device_high_water: HashMap::new(),
            accepted: 0,
            rejected: 0,
        }
    }

    /// Verifies one reading, updating replay state on acceptance.
    pub fn verify(&mut self, reading: &SignedReading) -> Result<(), ReadingRejection> {
        let result = self.verify_inner(reading);
        match result {
            Ok(()) => self.accepted += 1,
            Err(_) => self.rejected += 1,
        }
        result
    }

    fn verify_inner(&mut self, reading: &SignedReading) -> Result<(), ReadingRejection> {
        if !reading.signature_valid() {
            return Err(ReadingRejection::BadSignature);
        }
        if !self.registry.is_endorsed(reading.device) {
            return Err(ReadingRejection::UntrustedDevice);
        }
        let hash = reading.reading_hash();
        if self.seen.contains(&hash) {
            return Err(ReadingRejection::Duplicate);
        }
        if let Some(&(seq, ts)) = self.device_high_water.get(&reading.device) {
            if reading.sequence <= seq {
                return Err(ReadingRejection::SequenceReplay);
            }
            if reading.timestamp < ts {
                return Err(ReadingRejection::StaleTimestamp);
            }
        }
        self.seen.insert(hash);
        self.device_high_water
            .insert(reading.device, (reading.sequence, reading.timestamp));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ManufacturerRegistry, KeyPair, Device) {
        let mut registry = ManufacturerRegistry::new();
        let manufacturer = KeyPair::from_seed(50);
        registry.register_manufacturer(manufacturer.public.clone());
        let device = Device::new(1);
        (registry, manufacturer, device)
    }

    #[test]
    fn endorsed_device_readings_accepted() {
        let (mut registry, manufacturer, mut device) = setup();
        let cert = registry.endorse(&manufacturer, &device).unwrap();
        assert!(registry.verify_certificate(&cert, device.public_key()));
        let mut verifier = ReadingVerifier::new(&registry);
        for t in 0..10 {
            let r = device.sign_reading(t, vec![1.0, 2.0], 0.5);
            assert_eq!(verifier.verify(&r), Ok(()), "t={t}");
        }
        assert_eq!(verifier.accepted, 10);
        assert_eq!(verifier.rejected, 0);
    }

    #[test]
    fn forged_payload_rejected() {
        let (mut registry, manufacturer, mut device) = setup();
        registry.endorse(&manufacturer, &device).unwrap();
        let mut verifier = ReadingVerifier::new(&registry);
        let mut r = device.sign_reading(1, vec![1.0], 0.0);
        r.target = 999.0; // tamper after signing
        assert_eq!(verifier.verify(&r), Err(ReadingRejection::BadSignature));
    }

    #[test]
    fn key_substitution_rejected() {
        // Attacker swaps in their own key but keeps the claimed device id.
        let (mut registry, manufacturer, mut device) = setup();
        registry.endorse(&manufacturer, &device).unwrap();
        let attacker = KeyPair::from_seed(666);
        let mut r = device.sign_reading(1, vec![1.0], 0.0);
        r.device_key = attacker.public.clone();
        let mut verifier = ReadingVerifier::new(&registry);
        assert_eq!(verifier.verify(&r), Err(ReadingRejection::BadSignature));
    }

    #[test]
    fn unendorsed_device_rejected() {
        let (registry, _, mut rogue_device) = {
            let (r, m, _) = setup();
            (r, m, Device::new(99))
        };
        let mut verifier = ReadingVerifier::new(&registry);
        let r = rogue_device.sign_reading(1, vec![1.0], 0.0);
        assert_eq!(verifier.verify(&r), Err(ReadingRejection::UntrustedDevice));
    }

    #[test]
    fn duplicate_resale_rejected() {
        let (mut registry, manufacturer, mut device) = setup();
        registry.endorse(&manufacturer, &device).unwrap();
        let mut verifier = ReadingVerifier::new(&registry);
        let r = device.sign_reading(5, vec![1.0], 0.0);
        assert_eq!(verifier.verify(&r), Ok(()));
        // Selling the same reading twice (§IV-B's "multiple copies").
        assert_eq!(verifier.verify(&r), Err(ReadingRejection::Duplicate));
        assert_eq!(verifier.rejected, 1);
    }

    #[test]
    fn sequence_replay_rejected() {
        let (mut registry, manufacturer, mut device) = setup();
        registry.endorse(&manufacturer, &device).unwrap();
        let mut verifier = ReadingVerifier::new(&registry);
        let r1 = device.sign_reading(1, vec![1.0], 0.0);
        let r2 = device.sign_reading(2, vec![2.0], 0.0);
        assert_eq!(verifier.verify(&r2), Ok(()));
        // r1 has an older sequence than the accepted high-water mark.
        assert_eq!(verifier.verify(&r1), Err(ReadingRejection::SequenceReplay));
    }

    #[test]
    fn untrusted_manufacturer_certificate_rejected() {
        let (registry, _, device) = setup();
        let fake_manufacturer = KeyPair::from_seed(777);
        let payload = endorsement_payload(&device.id(), device.public_key());
        let cert = DeviceCertificate {
            device: device.id(),
            manufacturer: fake_manufacturer.public.clone(),
            signature: fake_manufacturer.sign(&payload),
        };
        assert!(!registry.verify_certificate(&cert, device.public_key()));
    }

    #[test]
    fn endorse_requires_registered_manufacturer() {
        let mut registry = ManufacturerRegistry::new();
        let unregistered = KeyPair::from_seed(51);
        let device = Device::new(2);
        assert!(registry.endorse(&unregistered, &device).is_none());
    }

    #[test]
    #[should_panic(expected = "clock must not run backwards")]
    fn device_clock_monotonicity_enforced() {
        let mut device = Device::new(3);
        device.sign_reading(10, vec![], 0.0);
        device.sign_reading(5, vec![], 0.0);
    }

    #[test]
    fn reading_codec_roundtrip() {
        let mut device = Device::new(4);
        let r = device.sign_reading(7, vec![0.25, -1.5], 3.0);
        let bytes = r.to_bytes();
        let back = SignedReading::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        assert!(back.signature_valid());
    }

    #[test]
    fn distinct_devices_distinct_ids() {
        assert_ne!(Device::new(1).id(), Device::new(2).id());
    }
}
