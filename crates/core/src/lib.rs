//! # pds2-core
//!
//! The PDS² marketplace — the primary contribution of the paper, built on
//! the substrates in the sibling crates.
//!
//! - [`workload`] — workload specifications: the binding contracts of
//!   §II-C (preconditions, rewards, quorum, approved enclave code, reward
//!   scheme);
//! - [`contract`] — the per-workload on-chain smart contract: escrow,
//!   executor registration, participation tracking, 2/3 result agreement,
//!   slashing and payouts;
//! - [`certificate`] — provider-signed participation certificates (Fig. 2);
//! - [`authenticity`] — §IV-B device-signed readings, manufacturer
//!   endorsements and the executor-side verification pipeline;
//! - [`marketplace`] — the orchestrator wiring all five roles of Fig. 1
//!   through the complete Fig. 2 lifecycle, with the Fig. 3 storage
//!   configurations (provider-owned vs outsourced sealed storage).
//!
//! ## Quickstart
//!
//! ```
//! use pds2_core::marketplace::{Marketplace, StorageChoice};
//! use pds2_core::workload::{RewardScheme, TaskKind, WorkloadSpec};
//! use pds2_storage::semantic::{MetaValue, Metadata, Requirement};
//! use pds2_tee::measurement::EnclaveCode;
//!
//! let mut market = Marketplace::new(1);
//! let consumer = market.register_consumer(1, 1_000_000);
//! let provider = market.register_provider(2, StorageChoice::Local);
//! market.provider_add_device(provider).unwrap();
//!
//! // Provider's device produces signed data.
//! let data = pds2_ml::data::gaussian_blobs(80, 3, 0.7, 3);
//! let meta = Metadata::new().with(
//!     "type",
//!     MetaValue::Class("sensor/environment/temperature".into()),
//!     0,
//! );
//! market.provider_ingest(provider, 0, &data, meta).unwrap();
//!
//! // Consumer posts a workload bound to approved enclave code.
//! let code = EnclaveCode::new("trainer", 1, b"trainer-v1".to_vec());
//! let spec = WorkloadSpec {
//!     title: "demo".into(),
//!     precondition: Requirement::HasClass {
//!         attr: "type".into(),
//!         class: "sensor/environment".into(),
//!     },
//!     task: TaskKind::BinaryClassification,
//!     feature_dim: 3,
//!     provider_reward: 10_000,
//!     executor_fee: 500,
//!     reward_scheme: RewardScheme::ProportionalToRecords,
//!     min_providers: 1,
//!     min_records: 10,
//!     code_measurement: code.measurement(),
//!     validation: pds2_ml::data::gaussian_blobs(20, 3, 0.7, 4),
//!     local_epochs: 4,
//!     aggregation_rounds: 2,
//!     dp_noise_multiplier: None,
//!     reward_token: None,
//!     data_bounds: None,
//! };
//! let workload = market.submit_workload(consumer, spec, code, 1).unwrap();
//! let executor = market.register_executor(5);
//! market.executor_join(executor, workload).unwrap();
//! let (exec, fin) = market
//!     .run_full_lifecycle(workload, &[(provider, executor)])
//!     .unwrap();
//! assert!(exec.validation_score > 0.7);
//! assert_eq!(fin.provider_shares.len(), 1);
//! ```

pub mod authenticity;
pub mod certificate;
pub mod contract;
pub mod marketplace;
pub mod workload;

pub use authenticity::{Device, DeviceId, ManufacturerRegistry, ReadingVerifier, SignedReading};
pub use certificate::ParticipationCertificate;
pub use contract::{Phase, WorkloadContract, WorkloadState, WORKLOAD_CODE_ID};
pub use marketplace::{ExecutionReport, FinalizeReport, MarketError, Marketplace, StorageChoice};
pub use workload::{RewardScheme, TaskKind, WorkloadSpec};
