//! Workload specifications — the "binding contracts" consumers submit
//! (§II-C): "preconditions that the input data must fulfill, rewards that
//! data providers will receive for submitting valid data, the definition
//! of the workload itself, and any additional conditions, such as minimum
//! amount of data or providers".

use pds2_chain::erc20::TokenId;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::sha256::Digest;
use pds2_ml::data::Dataset;
use pds2_storage::semantic::Requirement;
use pds2_tee::measurement::Measurement;

/// How provider rewards are split (§IV-A reward schemes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RewardScheme {
    /// Proportional to the number of records contributed (the size-based
    /// baseline the paper criticizes).
    ProportionalToRecords,
    /// Exact Shapley over provider coalitions (feasible only for small
    /// provider counts).
    ShapleyExact,
    /// Truncated Monte-Carlo Shapley with the given permutation budget.
    ShapleyMonteCarlo {
        /// Number of sampled permutations.
        permutations: u32,
    },
}

impl Encode for RewardScheme {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RewardScheme::ProportionalToRecords => enc.put_u8(0),
            RewardScheme::ShapleyExact => enc.put_u8(1),
            RewardScheme::ShapleyMonteCarlo { permutations } => {
                enc.put_u8(2);
                enc.put_u32(*permutations);
            }
        }
    }
}

impl Decode for RewardScheme {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(RewardScheme::ProportionalToRecords),
            1 => Ok(RewardScheme::ShapleyExact),
            2 => Ok(RewardScheme::ShapleyMonteCarlo {
                permutations: dec.get_u32()?,
            }),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// The ML task the workload trains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Binary classification with logistic regression.
    BinaryClassification,
    /// Regression with a linear model.
    Regression,
}

impl Encode for TaskKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            TaskKind::BinaryClassification => 0,
            TaskKind::Regression => 1,
        });
    }
}

impl Decode for TaskKind {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(TaskKind::BinaryClassification),
            1 => Ok(TaskKind::Regression),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// A complete workload specification.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Human-readable title.
    pub title: String,
    /// Precondition the providers' published metadata must satisfy.
    pub precondition: Requirement,
    /// The ML task to train.
    pub task: TaskKind,
    /// Feature dimension the task expects.
    pub feature_dim: u32,
    /// Total reward escrowed for providers (native currency).
    pub provider_reward: u128,
    /// Fee per participating executor (native currency).
    pub executor_fee: u128,
    /// Reward split scheme.
    pub reward_scheme: RewardScheme,
    /// Minimum distinct providers before execution may start.
    pub min_providers: u32,
    /// Minimum total records before execution may start.
    pub min_records: u64,
    /// Measurement of the approved enclave workload code — providers only
    /// grant data access to executors attesting exactly this code.
    pub code_measurement: Measurement,
    /// Consumer-supplied public validation set (used for reward valuation;
    /// contains no provider data).
    pub validation: Dataset,
    /// SGD epochs executors run locally.
    pub local_epochs: u32,
    /// Decentralized averaging rounds among executors.
    pub aggregation_rounds: u32,
    /// Optional differential-privacy noise multiplier applied by
    /// executors to local updates (§IV-D mitigation).
    pub dp_noise_multiplier: Option<f64>,
    /// When set, rewards and fees are escrowed and paid in this ERC-20
    /// token instead of native currency (§III-A).
    pub reward_token: Option<TokenId>,
    /// §IV-C complementary verification: executors check each reading's
    /// feature values against these inclusive bounds *on the data itself*
    /// (not just metadata), discarding out-of-range readings. The paper
    /// notes this "leak-free verification" costs executor compute on
    /// irrelevant data; [`ExecutionReport`](crate::marketplace::ExecutionReport)
    /// reports how many readings were discarded.
    pub data_bounds: Option<(f64, f64)>,
}

impl WorkloadSpec {
    /// The on-chain identity of this spec (hash of its canonical bytes).
    pub fn spec_hash(&self) -> Digest {
        self.content_hash()
    }

    /// Total escrow the consumer must fund: provider rewards plus fees for
    /// `n_executors` executors.
    pub fn required_escrow(&self, n_executors: u32) -> u128 {
        self.provider_reward + self.executor_fee * n_executors as u128
    }
}

impl Encode for WorkloadSpec {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(b"pds2-spec-v1");
        enc.put_str(&self.title);
        self.precondition.encode(enc);
        self.task.encode(enc);
        enc.put_u32(self.feature_dim);
        enc.put_u128(self.provider_reward);
        enc.put_u128(self.executor_fee);
        self.reward_scheme.encode(enc);
        enc.put_u32(self.min_providers);
        enc.put_u64(self.min_records);
        enc.put_digest(&self.code_measurement.0);
        encode_dataset(&self.validation, enc);
        enc.put_u32(self.local_epochs);
        enc.put_u32(self.aggregation_rounds);
        enc.put_option(&self.dp_noise_multiplier);
        enc.put_option(&self.reward_token);
        match self.data_bounds {
            None => enc.put_u8(0),
            Some((lo, hi)) => {
                enc.put_u8(1);
                enc.put_f64(lo);
                enc.put_f64(hi);
            }
        }
    }
}

impl Decode for WorkloadSpec {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let magic = dec.get_raw(12)?;
        if magic != b"pds2-spec-v1" {
            return Err(DecodeError::Invalid("bad spec magic"));
        }
        Ok(WorkloadSpec {
            title: dec.get_str()?,
            precondition: Requirement::decode(dec)?,
            task: TaskKind::decode(dec)?,
            feature_dim: dec.get_u32()?,
            provider_reward: dec.get_u128()?,
            executor_fee: dec.get_u128()?,
            reward_scheme: RewardScheme::decode(dec)?,
            min_providers: dec.get_u32()?,
            min_records: dec.get_u64()?,
            code_measurement: Measurement(dec.get_digest()?),
            validation: decode_dataset(dec)?,
            local_epochs: dec.get_u32()?,
            aggregation_rounds: dec.get_u32()?,
            dp_noise_multiplier: dec.get_option()?,
            reward_token: dec.get_option()?,
            data_bounds: match dec.get_u8()? {
                0 => None,
                1 => Some((dec.get_f64()?, dec.get_f64()?)),
                t => return Err(DecodeError::InvalidTag(t)),
            },
        })
    }
}

/// Canonical dataset encoding (rows of f64 features plus target).
pub fn encode_dataset(data: &Dataset, enc: &mut Encoder) {
    enc.put_u64(data.len() as u64);
    enc.put_u32(data.dim() as u32);
    for (row, y) in data.x.iter().zip(&data.y) {
        for v in row {
            enc.put_f64(*v);
        }
        enc.put_f64(*y);
    }
}

/// Decodes a dataset written by [`encode_dataset`].
pub fn decode_dataset(dec: &mut Decoder<'_>) -> Result<Dataset, DecodeError> {
    let n = dec.get_u64()? as usize;
    let d = dec.get_u32()? as usize;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(d);
        for _ in 0..d {
            row.push(dec.get_f64()?);
        }
        x.push(row);
        y.push(dec.get_f64()?);
    }
    Ok(Dataset::new(x, y))
}

/// Crate-internal test helpers shared with the marketplace tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use pds2_storage::semantic::Requirement;

    /// Builds a classification spec bound to `measurement`, matching the
    /// platform's default temperature ontology class.
    pub(crate) fn sample_spec_with(
        measurement: Measurement,
        validation: Dataset,
        reward_scheme: RewardScheme,
        min_providers: u32,
    ) -> WorkloadSpec {
        let dim = validation.dim().max(1) as u32;
        WorkloadSpec {
            title: "test-workload".into(),
            precondition: Requirement::HasClass {
                attr: "type".into(),
                class: "sensor/environment".into(),
            },
            task: TaskKind::BinaryClassification,
            feature_dim: dim,
            provider_reward: 10_000,
            executor_fee: 500,
            reward_scheme,
            min_providers,
            min_records: 10,
            code_measurement: measurement,
            validation,
            local_epochs: 8,
            aggregation_rounds: 3,
            dp_noise_multiplier: None,
            reward_token: None,
            data_bounds: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_ml::data::gaussian_blobs;

    pub(crate) fn sample_spec() -> WorkloadSpec {
        WorkloadSpec {
            title: "env-temperature-model".into(),
            precondition: Requirement::HasClass {
                attr: "type".into(),
                class: "sensor/environment".into(),
            },
            task: TaskKind::BinaryClassification,
            feature_dim: 3,
            provider_reward: 10_000,
            executor_fee: 500,
            reward_scheme: RewardScheme::ShapleyMonteCarlo { permutations: 20 },
            min_providers: 3,
            min_records: 50,
            code_measurement: Measurement::of(b"trainer-v1", 1),
            validation: gaussian_blobs(40, 3, 0.8, 1),
            local_epochs: 5,
            aggregation_rounds: 3,
            dp_noise_multiplier: None,
            reward_token: None,
            data_bounds: None,
        }
    }

    #[test]
    fn spec_codec_roundtrip() {
        let spec = sample_spec();
        let bytes = spec.to_bytes();
        let back = WorkloadSpec::from_bytes(&bytes).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.spec_hash(), spec.spec_hash());
    }

    #[test]
    fn spec_hash_binds_all_fields() {
        let spec = sample_spec();
        let mut modified = spec.clone();
        modified.provider_reward += 1;
        assert_ne!(spec.spec_hash(), modified.spec_hash());
        let mut modified = spec.clone();
        modified.min_providers += 1;
        assert_ne!(spec.spec_hash(), modified.spec_hash());
    }

    #[test]
    fn escrow_accounts_for_executors() {
        let spec = sample_spec();
        assert_eq!(spec.required_escrow(0), 10_000);
        assert_eq!(spec.required_escrow(4), 12_000);
    }

    #[test]
    fn dataset_codec_roundtrip() {
        let data = gaussian_blobs(17, 5, 1.0, 2);
        let mut enc = Encoder::new();
        encode_dataset(&data, &mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let back = decode_dataset(&mut dec).unwrap();
        assert_eq!(back, data);
        dec.expect_end().unwrap();
    }

    #[test]
    fn reward_scheme_codec() {
        for s in [
            RewardScheme::ProportionalToRecords,
            RewardScheme::ShapleyExact,
            RewardScheme::ShapleyMonteCarlo { permutations: 99 },
        ] {
            assert_eq!(RewardScheme::from_bytes(&s.to_bytes()).unwrap(), s);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_spec().to_bytes();
        bytes[0] ^= 1;
        assert!(WorkloadSpec::from_bytes(&bytes).is_err());
    }
}
