//! Participation certificates (Fig. 2).
//!
//! "Once providers accept, they have to identify available executors and
//! submit their data to them, along with certificates confirming that they
//! have indeed accepted to participate in the workload. … the governance
//! layer uses this information to track the contributions of different
//! providers, for the purpose of rewarding them."

use pds2_chain::address::Address;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::schnorr::{KeyPair, PublicKey, Signature};
use pds2_crypto::sha256::Digest;
use pds2_storage::store::RecordId;

/// A provider's signed consent to participate in one workload through one
/// executor, covering a specific set of records.
#[derive(Clone, Debug, PartialEq)]
pub struct ParticipationCertificate {
    /// Consenting provider.
    pub provider: PublicKey,
    /// Marketplace workload id.
    pub workload_id: u64,
    /// On-chain workload contract address (binds the cert to the chain).
    pub contract: Address,
    /// The records the provider submits.
    pub records: Vec<RecordId>,
    /// Total readings contained in those records.
    pub n_readings: u64,
    /// The executor entrusted with the data.
    pub executor: Address,
    /// Logical expiry.
    pub expires_at: u64,
    /// Provider signature over all fields above.
    pub signature: Signature,
}

impl ParticipationCertificate {
    fn payload(
        provider: &PublicKey,
        workload_id: u64,
        contract: &Address,
        records: &[RecordId],
        n_readings: u64,
        executor: &Address,
        expires_at: u64,
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(b"pds2-cert-v1");
        provider.encode(&mut enc);
        enc.put_u64(workload_id);
        contract.encode(&mut enc);
        enc.put_u64(records.len() as u64);
        for r in records {
            enc.put_digest(&r.0);
        }
        enc.put_u64(n_readings);
        executor.encode(&mut enc);
        enc.put_u64(expires_at);
        enc.finish()
    }

    /// Issues a signed certificate.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        provider: &KeyPair,
        workload_id: u64,
        contract: Address,
        records: Vec<RecordId>,
        n_readings: u64,
        executor: Address,
        expires_at: u64,
    ) -> ParticipationCertificate {
        let payload = Self::payload(
            &provider.public,
            workload_id,
            &contract,
            &records,
            n_readings,
            &executor,
            expires_at,
        );
        ParticipationCertificate {
            provider: provider.public.clone(),
            workload_id,
            contract,
            records,
            n_readings,
            executor,
            expires_at,
            signature: provider.sign(&payload),
        }
    }

    /// Verifies the signature and the binding to a workload/executor.
    pub fn verify(&self, workload_id: u64, contract: Address, executor: Address, now: u64) -> bool {
        if self.workload_id != workload_id
            || self.contract != contract
            || self.executor != executor
            || now > self.expires_at
        {
            return false;
        }
        let payload = Self::payload(
            &self.provider,
            self.workload_id,
            &self.contract,
            &self.records,
            self.n_readings,
            &self.executor,
            self.expires_at,
        );
        self.provider.verify(&payload, &self.signature)
    }

    /// Provider address derived from the embedded key.
    pub fn provider_address(&self) -> Address {
        Address::of(&self.provider)
    }

    /// The hash recorded on-chain for audit.
    pub fn certificate_hash(&self) -> Digest {
        self.content_hash()
    }
}

impl Encode for ParticipationCertificate {
    fn encode(&self, enc: &mut Encoder) {
        self.provider.encode(enc);
        enc.put_u64(self.workload_id);
        self.contract.encode(enc);
        enc.put_u64(self.records.len() as u64);
        for r in &self.records {
            enc.put_digest(&r.0);
        }
        enc.put_u64(self.n_readings);
        self.executor.encode(enc);
        enc.put_u64(self.expires_at);
        self.signature.encode(enc);
    }
}

impl Decode for ParticipationCertificate {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let provider = PublicKey::decode(dec)?;
        let workload_id = dec.get_u64()?;
        let contract = Address::decode(dec)?;
        let n = dec.get_u64()? as usize;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(RecordId(dec.get_digest()?));
        }
        Ok(ParticipationCertificate {
            provider,
            workload_id,
            contract,
            records,
            n_readings: dec.get_u64()?,
            executor: Address::decode(dec)?,
            expires_at: dec.get_u64()?,
            signature: Signature::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::sha256::sha256;

    fn sample() -> (KeyPair, ParticipationCertificate, Address, Address) {
        let provider = KeyPair::from_seed(1);
        let executor = Address::of(&KeyPair::from_seed(2).public);
        let contract = Address::contract(&executor, 0);
        let cert = ParticipationCertificate::issue(
            &provider,
            7,
            contract,
            vec![RecordId(sha256(b"r1")), RecordId(sha256(b"r2"))],
            120,
            executor,
            1000,
        );
        (provider, cert, contract, executor)
    }

    #[test]
    fn valid_certificate_verifies() {
        let (_, cert, contract, executor) = sample();
        assert!(cert.verify(7, contract, executor, 500));
    }

    #[test]
    fn wrong_scope_rejected() {
        let (_, cert, contract, executor) = sample();
        assert!(!cert.verify(8, contract, executor, 500), "wrong workload");
        let other = Address::contract(&executor, 9);
        assert!(!cert.verify(7, other, executor, 500), "wrong contract");
        assert!(!cert.verify(7, contract, Address::contract(&executor, 1), 500));
        assert!(!cert.verify(7, contract, executor, 2000), "expired");
    }

    #[test]
    fn tampered_records_rejected() {
        let (_, mut cert, contract, executor) = sample();
        cert.records.push(RecordId(sha256(b"injected")));
        assert!(!cert.verify(7, contract, executor, 500));
    }

    #[test]
    fn tampered_reading_count_rejected() {
        let (_, mut cert, contract, executor) = sample();
        cert.n_readings = 10_000; // inflate contribution for more reward
        assert!(!cert.verify(7, contract, executor, 500));
    }

    #[test]
    fn codec_roundtrip() {
        let (_, cert, contract, executor) = sample();
        let back = ParticipationCertificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(back, cert);
        assert!(back.verify(7, contract, executor, 500));
        assert_eq!(back.certificate_hash(), cert.certificate_hash());
    }

    #[test]
    fn provider_address_matches_key() {
        let (provider, cert, _, _) = sample();
        assert_eq!(cert.provider_address(), Address::of(&provider.public));
    }
}
