//! ML coalition utilities: valuing provider datasets by the accuracy of a
//! model trained on the coalition's pooled data (§IV-A's "marginal
//! improvement when adding a dataset").

use crate::shapley::Utility;
use pds2_ml::data::Dataset;
use pds2_ml::model::LogisticRegression;
use pds2_ml::sgd::{train, SgdConfig};
use std::collections::HashMap;

/// Coalition utility = test accuracy of a logistic-regression model
/// trained on the union of the coalition's shards. Evaluations are
/// memoized — a requirement in practice because each one is a full
/// training run (the "time needed to train" cost the paper flags).
///
/// `Clone` lets [`crate::shapley::monte_carlo_shapley_par`] hand each
/// worker its own copy (cache included, so pre-warmed entries carry over).
#[derive(Clone)]
pub struct MlUtility {
    shards: Vec<Dataset>,
    test: Dataset,
    sgd: SgdConfig,
    cache: HashMap<Vec<usize>, f64>,
    /// Training runs actually executed (cache misses).
    pub training_runs: u64,
}

impl MlUtility {
    /// Creates a utility over provider shards with a held-out test set.
    pub fn new(shards: Vec<Dataset>, test: Dataset, sgd: SgdConfig) -> Self {
        MlUtility {
            shards,
            test,
            sgd,
            cache: HashMap::new(),
            training_runs: 0,
        }
    }

    fn accuracy_of(&mut self, coalition: &[usize]) -> f64 {
        if coalition.is_empty() || self.test.is_empty() {
            // Empty coalition: majority-class guess.
            let pos = self.test.positive_fraction();
            return pos.max(1.0 - pos);
        }
        let parts: Vec<Dataset> = coalition.iter().map(|&i| self.shards[i].clone()).collect();
        let pooled = Dataset::concat(&parts);
        if pooled.is_empty() {
            let pos = self.test.positive_fraction();
            return pos.max(1.0 - pos);
        }
        let mut model = LogisticRegression::new(pooled.dim());
        train(&mut model, &pooled, &self.sgd);
        self.training_runs += 1;
        pds2_obs::counter!("rewards.training_runs").inc();
        let preds: Vec<f64> = self.test.x.iter().map(|x| model.classify(x)).collect();
        pds2_ml::metrics::accuracy(&preds, &self.test.y)
    }
}

impl Utility for MlUtility {
    fn value(&mut self, coalition: &[usize]) -> f64 {
        // Counters only (no trace events): Monte-Carlo Shapley clones
        // this utility into pds2-par workers, and counter totals stay
        // meaningful under any interleaving.
        pds2_obs::counter!("rewards.shapley_evals").inc();
        let key = coalition.to_vec();
        if let Some(&v) = self.cache.get(&key) {
            pds2_obs::counter!("rewards.utility_cache_hits").inc();
            return v;
        }
        pds2_obs::counter!("rewards.utility_cache_misses").inc();
        let v = self.accuracy_of(coalition);
        self.cache.insert(key, v);
        v
    }

    fn n_players(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapley::{exact_shapley, monte_carlo_shapley, McConfig};
    use pds2_ml::data::gaussian_blobs;

    fn quick_sgd() -> SgdConfig {
        SgdConfig {
            epochs: 5,
            ..Default::default()
        }
    }

    #[test]
    fn utility_is_cached() {
        let data = gaussian_blobs(200, 2, 0.8, 1);
        let (train_set, test_set) = data.split(0.3, 2);
        let shards = train_set.partition_iid(4, 3);
        let mut u = MlUtility::new(shards, test_set, quick_sgd());
        let v1 = u.value(&[0, 1]);
        let runs = u.training_runs;
        let v2 = u.value(&[0, 1]);
        assert_eq!(v1, v2);
        assert_eq!(u.training_runs, runs, "second call must hit the cache");
    }

    #[test]
    fn empty_coalition_is_majority_baseline() {
        let data = gaussian_blobs(100, 2, 0.8, 1);
        let (tr, te) = data.split(0.3, 2);
        let mut u = MlUtility::new(tr.partition_iid(3, 1), te, quick_sgd());
        let v = u.value(&[]);
        assert!((0.4..=0.7).contains(&v), "baseline accuracy {v}");
    }

    #[test]
    fn junk_data_provider_earns_less() {
        // Three providers with real data, one with pure label noise: the
        // noisy provider's Shapley value must be the smallest — the §IV-A
        // "each data provider does not equally contribute" point.
        let good = gaussian_blobs(300, 2, 0.6, 5);
        let (tr, te) = good.split(0.3, 6);
        let mut shards = tr.partition_iid(3, 7);
        // Junk shard: shuffled labels.
        let mut junk = shards[0].clone();
        junk.y.reverse();
        let half = junk.y.len() / 2;
        for y in junk.y.iter_mut().take(half) {
            *y = 1.0 - *y;
        }
        shards.push(junk);
        let mut u = MlUtility::new(shards, te, quick_sgd());
        let phi = exact_shapley(&mut u);
        let junk_value = phi[3];
        assert!(
            phi[..3].iter().all(|&v| v > junk_value),
            "junk provider should be valued least: {phi:?}"
        );
    }

    #[test]
    fn monte_carlo_works_on_ml_utility() {
        let data = gaussian_blobs(200, 2, 0.8, 8);
        let (tr, te) = data.split(0.3, 9);
        let shards = tr.partition_iid(5, 10);
        let mut u = MlUtility::new(shards, te, quick_sgd());
        let phi = monte_carlo_shapley(
            &mut u,
            &McConfig {
                permutations: 20,
                truncation_tolerance: 0.005,
                seed: 11,
            },
        );
        assert_eq!(phi.len(), 5);
        // Values are marginal accuracies: bounded by 1 in magnitude.
        assert!(phi.iter().all(|v| v.abs() <= 1.0));
    }
}
