//! Shapley-value reward allocation (§IV-A).
//!
//! "Shapley value is a promising solution … However, the complexity of
//! calculating the Shapley value is exponential, and thus it is unfeasible
//! to use it as is." This module provides both sides of that sentence:
//!
//! - [`exact_shapley`] — the exact exponential computation (feasible to
//!   n ≈ 20), used as ground truth;
//! - [`monte_carlo_shapley`] — truncated Monte-Carlo permutation sampling
//!   (Ghorbani & Zou's "Data Shapley"), the practical scheme;
//! - [`leave_one_out`] and [`proportional`] — the cheap baselines the
//!   experiments compare against;
//! - axiom checks (efficiency, symmetry, dummy) used by the tests and the
//!   governance layer's audit.
//!
//! Utility functions are arbitrary coalition valuations `v: 2^N -> R`
//! with `v(∅)` defining the baseline.

use rand::Rng;
use std::collections::HashMap;

/// A coalition utility function: maps a sorted set of player indices to a
/// real value. Implementations should memoize if evaluation is expensive.
pub trait Utility {
    /// Value of the coalition (player indices, strictly increasing).
    fn value(&mut self, coalition: &[usize]) -> f64;

    /// Number of players.
    fn n_players(&self) -> usize;
}

/// A utility backed by a closure (plus player count).
///
/// Coalition valuations are memoized: Monte-Carlo permutation sampling
/// revisits the same prefixes constantly (the empty set, singletons, the
/// grand coalition), so repeated closure invocations are skipped. The
/// `evaluations` counter still counts every [`Utility::value`] call so
/// cost accounting (E7) is unaffected; `memo_hits`/`memo_misses` break
/// that total down by cache outcome.
#[derive(Clone)]
pub struct FnUtility<F: FnMut(&[usize]) -> f64> {
    f: F,
    n: usize,
    memo: HashMap<Vec<usize>, f64>,
    /// Number of evaluations requested (cost accounting for E7).
    pub evaluations: u64,
    /// Evaluations answered from the memo cache.
    pub memo_hits: u64,
    /// Evaluations that invoked the underlying closure.
    pub memo_misses: u64,
}

impl<F: FnMut(&[usize]) -> f64> FnUtility<F> {
    /// Wraps a closure.
    pub fn new(n: usize, f: F) -> Self {
        FnUtility {
            f,
            n,
            memo: HashMap::new(),
            evaluations: 0,
            memo_hits: 0,
            memo_misses: 0,
        }
    }
}

impl<F: FnMut(&[usize]) -> f64> Utility for FnUtility<F> {
    fn value(&mut self, coalition: &[usize]) -> f64 {
        self.evaluations += 1;
        if let Some(&v) = self.memo.get(coalition) {
            self.memo_hits += 1;
            return v;
        }
        self.memo_misses += 1;
        let v = (self.f)(coalition);
        self.memo.insert(coalition.to_vec(), v);
        v
    }

    fn n_players(&self) -> usize {
        self.n
    }
}

/// Exact Shapley values by full subset enumeration: O(2^n · n) utility
/// evaluations. Panics above 20 players — that is the point of E7.
#[allow(clippy::needless_range_loop)] // bitmask-indexed subset table
pub fn exact_shapley<U: Utility>(utility: &mut U) -> Vec<f64> {
    let n = utility.n_players();
    assert!(
        n <= 20,
        "exact Shapley is exponential; use monte_carlo_shapley"
    );
    if n == 0 {
        return Vec::new();
    }
    // Precompute v(S) for every subset S (bitmask indexed).
    let mut values = vec![0.0; 1usize << n];
    let mut members = Vec::with_capacity(n);
    for mask in 0..(1usize << n) {
        members.clear();
        for i in 0..n {
            if mask >> i & 1 == 1 {
                members.push(i);
            }
        }
        values[mask] = utility.value(&members);
    }
    // Factorial weights: |S|! (n-|S|-1)! / n!
    let mut fact = vec![1.0f64; n + 1];
    for i in 1..=n {
        fact[i] = fact[i - 1] * i as f64;
    }
    let mut shapley = vec![0.0; n];
    for (i, s) in shapley.iter_mut().enumerate() {
        for mask in 0..(1usize << n) {
            if mask >> i & 1 == 1 {
                continue; // S must exclude i
            }
            let size = (mask as u64).count_ones() as usize;
            let weight = fact[size] * fact[n - size - 1] / fact[n];
            *s += weight * (values[mask | 1 << i] - values[mask]);
        }
    }
    shapley
}

/// Configuration for truncated Monte-Carlo Shapley.
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Number of random permutations to sample.
    pub permutations: usize,
    /// Truncation: once a prefix's value is within this absolute distance
    /// of the grand-coalition value, remaining marginals are taken as 0.
    pub truncation_tolerance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            permutations: 200,
            truncation_tolerance: 1e-4,
            seed: 0,
        }
    }
}

/// Marginal contributions of every player under permutation `perm_index`.
///
/// The permutation is drawn from its own RNG stream derived from
/// `(cfg.seed, perm_index)`, so the result is a pure function of the
/// config and the index — independent of which worker evaluates it and of
/// how many permutations run before it.
fn permutation_marginals<U: Utility>(
    utility: &mut U,
    cfg: &McConfig,
    v_full: f64,
    v_empty: f64,
    perm_index: usize,
) -> Vec<f64> {
    let n = utility.n_players();
    let mut rng = pds2_par::stream_rng(cfg.seed, perm_index as u64);
    // Fisher–Yates from the identity permutation.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    let mut marginals = vec![0.0; n];
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    let mut prev_value = v_empty;
    for &player in &perm {
        prefix.push(player);
        prefix.sort_unstable();
        let value = utility.value(&prefix);
        marginals[player] = value - prev_value;
        prev_value = value;
        if (v_full - value).abs() <= cfg.truncation_tolerance {
            // Remaining marginals are taken as zero.
            break;
        }
    }
    marginals
}

/// Folds per-permutation marginal vectors into the Shapley estimate,
/// always in permutation order (the float-summation order contract shared
/// by the serial and parallel paths).
fn average_marginals(per_perm: Vec<Vec<f64>>, n: usize, permutations: usize) -> Vec<f64> {
    let mut sums = vec![0.0; n];
    for marginals in per_perm {
        for (s, m) in sums.iter_mut().zip(&marginals) {
            *s += m;
        }
    }
    sums.iter().map(|s| s / permutations as f64).collect()
}

/// Truncated Monte-Carlo Shapley approximation.
///
/// Each permutation draws from an independent RNG stream keyed by
/// `(cfg.seed, permutation_index)` and contributes a marginal vector that
/// is summed in permutation order, so this serial routine and
/// [`monte_carlo_shapley_par`] produce bit-identical estimates.
pub fn monte_carlo_shapley<U: Utility>(utility: &mut U, cfg: &McConfig) -> Vec<f64> {
    let n = utility.n_players();
    if n == 0 {
        return Vec::new();
    }
    assert!(cfg.permutations > 0, "need at least one permutation");
    let full: Vec<usize> = (0..n).collect();
    let v_full = utility.value(&full);
    let v_empty = utility.value(&[]);
    let per_perm: Vec<Vec<f64>> = (0..cfg.permutations)
        .map(|p| permutation_marginals(utility, cfg, v_full, v_empty, p))
        .collect();
    average_marginals(per_perm, n, cfg.permutations)
}

/// Parallel truncated Monte-Carlo Shapley.
///
/// Permutations fan out across the `pds2-par` worker pool in fixed-size
/// chunks; each chunk evaluates on its own clone of the utility (warm
/// with whatever the source had already memoized), and the resulting
/// marginal vectors are averaged in permutation order. Bit-identical to
/// [`monte_carlo_shapley`] for every `PDS2_THREADS` value.
pub fn monte_carlo_shapley_par<U>(utility: &U, cfg: &McConfig) -> Vec<f64>
where
    U: Utility + Clone + Send + Sync,
{
    let n = utility.n_players();
    if n == 0 {
        return Vec::new();
    }
    assert!(cfg.permutations > 0, "need at least one permutation");
    let (v_full, v_empty) = {
        let mut probe = utility.clone();
        let full: Vec<usize> = (0..n).collect();
        (probe.value(&full), probe.value(&[]))
    };
    // Chunk size is fixed (not thread-count derived): each worker clones
    // the utility once per chunk, and chunk boundaries never move.
    const PERMS_PER_CLONE: usize = 8;
    let indices: Vec<usize> = (0..cfg.permutations).collect();
    let per_perm = pds2_par::par_chunks_reduce(
        &indices,
        PERMS_PER_CLONE,
        |_, _, chunk| {
            let mut local = utility.clone();
            chunk
                .iter()
                .map(|&p| permutation_marginals(&mut local, cfg, v_full, v_empty, p))
                .collect::<Vec<_>>()
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    )
    .unwrap_or_default();
    average_marginals(per_perm, n, cfg.permutations)
}

/// Leave-one-out valuation: `v(N) - v(N \ {i})`.
pub fn leave_one_out<U: Utility>(utility: &mut U) -> Vec<f64> {
    let n = utility.n_players();
    let full: Vec<usize> = (0..n).collect();
    let v_full = utility.value(&full);
    (0..n)
        .map(|i| {
            let without: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            v_full - utility.value(&without)
        })
        .collect()
}

/// Proportional-to-weight baseline (e.g. rewards by dataset size — the
/// "monetization of data based on size" the paper says "do\[es\] not work
/// well"). Returns shares that sum to `total`.
pub fn proportional(weights: &[f64], total: f64) -> Vec<f64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return vec![total / weights.len().max(1) as f64; weights.len()];
    }
    weights.iter().map(|w| total * w / sum).collect()
}

/// Normalizes raw valuations into non-negative reward shares summing to
/// `total` (negative valuations floor at zero).
pub fn to_reward_shares(valuations: &[f64], total: f64) -> Vec<f64> {
    let clipped: Vec<f64> = valuations.iter().map(|v| v.max(0.0)).collect();
    let sum: f64 = clipped.iter().sum();
    if sum <= 0.0 {
        return vec![total / valuations.len().max(1) as f64; valuations.len()];
    }
    clipped.iter().map(|v| total * v / sum).collect()
}

/// Checks the efficiency axiom: Σφᵢ = v(N) − v(∅) within tolerance.
pub fn check_efficiency<U: Utility>(utility: &mut U, shapley: &[f64], tol: f64) -> bool {
    let n = utility.n_players();
    let full: Vec<usize> = (0..n).collect();
    let expected = utility.value(&full) - utility.value(&[]);
    (shapley.iter().sum::<f64>() - expected).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Additive game: v(S) = Σ weights[i].
    fn additive(weights: Vec<f64>) -> FnUtility<impl FnMut(&[usize]) -> f64 + Clone + Send + Sync> {
        let n = weights.len();
        FnUtility::new(n, move |s: &[usize]| s.iter().map(|&i| weights[i]).sum())
    }

    /// Majority game: v(S) = 1 if |S| > n/2 else 0.
    fn majority(n: usize) -> FnUtility<impl FnMut(&[usize]) -> f64> {
        FnUtility::new(
            n,
            move |s: &[usize]| if s.len() * 2 > n { 1.0 } else { 0.0 },
        )
    }

    #[test]
    fn additive_game_shapley_equals_weights() {
        let mut u = additive(vec![3.0, 1.0, 6.0]);
        let phi = exact_shapley(&mut u);
        for (p, w) in phi.iter().zip([3.0, 1.0, 6.0]) {
            assert!((p - w).abs() < 1e-9, "{phi:?}");
        }
    }

    #[test]
    fn symmetry_axiom() {
        let mut u = majority(5);
        let phi = exact_shapley(&mut u);
        for w in phi.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-12,
                "symmetric players equal shares"
            );
        }
    }

    #[test]
    fn dummy_axiom() {
        // Player 2 contributes nothing.
        let mut u = additive(vec![5.0, 2.0, 0.0]);
        let phi = exact_shapley(&mut u);
        assert!(phi[2].abs() < 1e-12);
    }

    #[test]
    fn efficiency_axiom_exact() {
        let mut u = majority(7);
        let phi = exact_shapley(&mut u);
        assert!(check_efficiency(&mut u, &phi, 1e-9));
    }

    #[test]
    fn monte_carlo_approximates_exact() {
        let weights = vec![1.0, 4.0, 2.0, 3.0, 0.5];
        let mut u = additive(weights.clone());
        let exact = exact_shapley(&mut u);
        let mut u2 = additive(weights);
        let mc = monte_carlo_shapley(
            &mut u2,
            &McConfig {
                permutations: 400,
                truncation_tolerance: 0.0,
                seed: 3,
            },
        );
        for (e, m) in exact.iter().zip(&mc) {
            assert!((e - m).abs() < 0.3, "exact {exact:?} vs mc {mc:?}");
        }
    }

    #[test]
    fn monte_carlo_efficiency_holds_without_truncation() {
        let mut u = majority(6);
        let mc = monte_carlo_shapley(
            &mut u,
            &McConfig {
                permutations: 100,
                truncation_tolerance: -1.0, // never truncate
                seed: 1,
            },
        );
        // Permutation sampling is exactly efficient per permutation.
        assert!((mc.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{mc:?}");
    }

    #[test]
    fn truncation_cuts_evaluations() {
        // Utility saturates once any player joins -> deep prefixes skipped.
        let mut full = FnUtility::new(12, |s: &[usize]| if s.is_empty() { 0.0 } else { 1.0 });
        let _ = monte_carlo_shapley(
            &mut full,
            &McConfig {
                permutations: 50,
                truncation_tolerance: -1.0,
                seed: 2,
            },
        );
        let no_trunc_evals = full.evaluations;
        let mut truncated = FnUtility::new(12, |s: &[usize]| if s.is_empty() { 0.0 } else { 1.0 });
        let _ = monte_carlo_shapley(
            &mut truncated,
            &McConfig {
                permutations: 50,
                truncation_tolerance: 1e-6,
                seed: 2,
            },
        );
        assert!(
            truncated.evaluations * 3 < no_trunc_evals,
            "truncation should save most evaluations: {} vs {}",
            truncated.evaluations,
            no_trunc_evals
        );
    }

    #[test]
    fn leave_one_out_on_additive_game() {
        let mut u = additive(vec![2.0, 5.0]);
        assert_eq!(leave_one_out(&mut u), vec![2.0, 5.0]);
    }

    #[test]
    fn leave_one_out_misses_redundancy() {
        // Two identical players: LOO gives both zero (either alone
        // suffices), while Shapley splits the value fairly — the reason
        // the paper prefers Shapley.
        let mut u = FnUtility::new(2, |s: &[usize]| if s.is_empty() { 0.0 } else { 1.0 });
        let loo = leave_one_out(&mut u);
        assert_eq!(loo, vec![0.0, 0.0]);
        let mut u2 = FnUtility::new(2, |s: &[usize]| if s.is_empty() { 0.0 } else { 1.0 });
        let phi = exact_shapley(&mut u2);
        assert!((phi[0] - 0.5).abs() < 1e-12 && (phi[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proportional_shares() {
        assert_eq!(proportional(&[1.0, 3.0], 100.0), vec![25.0, 75.0]);
        // Zero weights degrade to equal split.
        assert_eq!(proportional(&[0.0, 0.0], 100.0), vec![50.0, 50.0]);
    }

    #[test]
    fn reward_shares_floor_negatives() {
        let shares = to_reward_shares(&[-1.0, 1.0, 3.0], 100.0);
        assert_eq!(shares, vec![0.0, 25.0, 75.0]);
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memoization_counts_hits_and_misses() {
        let mut u = additive(vec![1.0, 2.0, 3.0]);
        u.value(&[0, 1]);
        u.value(&[0, 1]);
        u.value(&[2]);
        assert_eq!(u.evaluations, 3);
        assert_eq!(u.memo_hits, 1);
        assert_eq!(u.memo_misses, 2);
        // Distinct coalitions stay distinct keys.
        assert_ne!(u.value(&[0]), u.value(&[0, 1]));
    }

    #[test]
    fn serial_and_parallel_estimates_are_bit_identical() {
        let weights = vec![1.0, 4.0, 2.0, 3.0, 0.5, 7.0, 0.25, 1.5];
        let cfg = McConfig {
            permutations: 100,
            truncation_tolerance: 1e-9,
            seed: 17,
        };
        let serial = monte_carlo_shapley(&mut additive(weights.clone()), &cfg);
        for threads in [1, 2, 4, 8] {
            let par = pds2_par::with_threads(threads, || {
                monte_carlo_shapley_par(&additive(weights.clone()), &cfg)
            });
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn permutation_streams_make_estimate_independent_of_order() {
        // Evaluating only the second half of the permutations must give
        // the same per-permutation marginals as a full run: each stream
        // depends on (seed, index) alone.
        let mut u = additive(vec![2.0, 5.0, 1.0]);
        let cfg = McConfig {
            permutations: 10,
            truncation_tolerance: -1.0,
            seed: 4,
        };
        let full: Vec<usize> = (0..3).collect();
        let v_full = u.value(&full);
        let v_empty = u.value(&[]);
        let direct = permutation_marginals(&mut u, &cfg, v_full, v_empty, 7);
        let mut u2 = additive(vec![2.0, 5.0, 1.0]);
        for p in 0..7 {
            let _ = permutation_marginals(&mut u2, &cfg, v_full, v_empty, p);
        }
        let after_others = permutation_marginals(&mut u2, &cfg, v_full, v_empty, 7);
        assert_eq!(direct, after_others);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn exact_rejects_large_n() {
        let mut u = FnUtility::new(21, |_: &[usize]| 0.0);
        let _ = exact_shapley(&mut u);
    }

    #[test]
    fn empty_game() {
        let mut u = FnUtility::new(0, |_: &[usize]| 0.0);
        assert!(exact_shapley(&mut u).is_empty());
        assert!(monte_carlo_shapley(&mut u, &McConfig::default()).is_empty());
    }
}
