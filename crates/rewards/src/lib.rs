//! # pds2-rewards
//!
//! Reward schemes for PDS² — the open challenge of §IV-A.
//!
//! - [`shapley`] — exact (exponential) Shapley values, truncated
//!   Monte-Carlo approximation, leave-one-out and proportional baselines,
//!   and axiom checks (efficiency, symmetry, dummy);
//! - [`utility`] — the ML coalition utility: a provider coalition is worth
//!   the test accuracy of a model trained on its pooled shards, memoized
//!   because every evaluation is a training run;
//! - [`pricing`] — model-based pricing: buyers with smaller budgets
//!   receive noisier versions of the optimal model (Chen et al., cited by
//!   the paper as the §IV-A pricing answer).

pub mod pricing;
pub mod shapley;
pub mod utility;

pub use pricing::{PricedModel, PricingConfig};
pub use shapley::{
    check_efficiency, exact_shapley, leave_one_out, monte_carlo_shapley, proportional,
    to_reward_shares, FnUtility, McConfig, Utility,
};
pub use utility::MlUtility;
