//! Model-based pricing (§IV-A, after Chen, Koutris & Kumar).
//!
//! "Given an ML model, an optimal instance is trained. Then based on the
//! budget available to the potential buyer, Gaussian noise is injected
//! into the model to reduce its accuracy. The larger the buyer's budget,
//! the smaller the injected noise variance and the greater the accuracy."
//!
//! [`PricedModel`] implements exactly that: a full-price buyer receives
//! the optimal parameters; a fraction-of-price buyer receives a noised
//! version whose expected quality degrades smoothly as the budget shrinks.

use pds2_ml::data::Dataset;
use pds2_ml::model::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pricing curve parameters.
#[derive(Clone, Copy, Debug)]
pub struct PricingConfig {
    /// Full price of the optimal model (marketplace currency units).
    pub full_price: u128,
    /// Noise stddev handed to a zero-budget buyer, as a multiple of the
    /// parameter-vector RMS (the curve anchor).
    pub max_noise_factor: f64,
}

impl Default for PricingConfig {
    fn default() -> Self {
        PricingConfig {
            full_price: 1_000,
            max_noise_factor: 4.0,
        }
    }
}

/// A trained model offered for sale at budget-dependent quality.
pub struct PricedModel<M: Model> {
    optimal: M,
    cfg: PricingConfig,
    param_rms: f64,
}

impl<M: Model> PricedModel<M> {
    /// Wraps an already-trained optimal model.
    pub fn new(optimal: M, cfg: PricingConfig) -> Self {
        let params = optimal.params();
        let rms = (params.iter().map(|p| p * p).sum::<f64>() / params.len().max(1) as f64).sqrt();
        PricedModel {
            optimal,
            cfg,
            param_rms: rms.max(1e-9),
        }
    }

    /// The noise stddev applied for a given budget.
    pub fn noise_sigma(&self, budget: u128) -> f64 {
        let b = (budget.min(self.cfg.full_price)) as f64 / self.cfg.full_price as f64;
        // Linear interpolation from max noise (b = 0) to zero noise (b = 1).
        self.cfg.max_noise_factor * self.param_rms * (1.0 - b)
    }

    /// Produces the version of the model a buyer with `budget` receives.
    /// The same `(budget, sale_seed)` always yields the same instance —
    /// the governance layer records the seed so the sale is auditable.
    pub fn instance_for_budget(&self, budget: u128, sale_seed: u64) -> M {
        let sigma = self.noise_sigma(budget);
        let mut model = self.optimal.clone();
        if sigma == 0.0 {
            return model;
        }
        let mut rng = StdRng::seed_from_u64(sale_seed);
        let mut params = model.params();
        for p in &mut params {
            *p += sigma * gaussian(&mut rng);
        }
        model.set_params(&params);
        model
    }

    /// Evaluates the accuracy a buyer at each budget would get (averaged
    /// over `samples` noise draws) — the price/quality curve of E8.
    pub fn accuracy_curve(
        &self,
        test: &Dataset,
        budgets: &[u128],
        samples: u32,
        seed: u64,
    ) -> Vec<(u128, f64)> {
        budgets
            .iter()
            .map(|&b| {
                let mut acc_sum = 0.0;
                for s in 0..samples {
                    let m = self.instance_for_budget(b, seed ^ (s as u64) << 32 ^ b as u64);
                    acc_sum += classify_accuracy(&m, test);
                }
                (b, acc_sum / samples as f64)
            })
            .collect()
    }

    /// The underlying optimal model (seller side).
    pub fn optimal(&self) -> &M {
        &self.optimal
    }
}

fn classify_accuracy<M: Model>(model: &M, test: &Dataset) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let preds: Vec<f64> = test
        .x
        .iter()
        .map(|x| if model.predict(x) >= 0.5 { 1.0 } else { 0.0 })
        .collect();
    pds2_ml::metrics::accuracy(&preds, &test.y)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_ml::data::gaussian_blobs;
    use pds2_ml::model::LogisticRegression;
    use pds2_ml::sgd::{train, SgdConfig};

    fn trained_model() -> (PricedModel<LogisticRegression>, Dataset) {
        let data = gaussian_blobs(600, 3, 0.7, 1);
        let (tr, te) = data.split(0.3, 2);
        let mut m = LogisticRegression::new(3);
        train(&mut m, &tr, &SgdConfig::default());
        (PricedModel::new(m, PricingConfig::default()), te)
    }

    #[test]
    fn full_budget_gets_optimal_model() {
        let (priced, te) = trained_model();
        let bought = priced.instance_for_budget(1_000, 42);
        assert_eq!(bought.params(), priced.optimal().params());
        assert!(classify_accuracy(&bought, &te) > 0.9);
    }

    #[test]
    fn noise_decreases_with_budget() {
        let (priced, _) = trained_model();
        assert!(priced.noise_sigma(0) > priced.noise_sigma(500));
        assert!(priced.noise_sigma(500) > priced.noise_sigma(999));
        assert_eq!(priced.noise_sigma(1_000), 0.0);
        // Over-budget clamps.
        assert_eq!(priced.noise_sigma(5_000), 0.0);
    }

    #[test]
    fn accuracy_curve_is_broadly_monotone() {
        let (priced, te) = trained_model();
        let curve = priced.accuracy_curve(&te, &[0, 250, 500, 750, 1_000], 8, 7);
        assert_eq!(curve.len(), 5);
        let first = curve.first().unwrap().1;
        let last = curve.last().unwrap().1;
        assert!(
            last > first + 0.1,
            "full-budget accuracy should clearly beat zero-budget: {curve:?}"
        );
        // Top of the curve equals the optimal-model accuracy.
        assert!((last - classify_accuracy(priced.optimal(), &te)).abs() < 1e-12);
    }

    #[test]
    fn sales_are_reproducible() {
        let (priced, _) = trained_model();
        let a = priced.instance_for_budget(300, 9);
        let b = priced.instance_for_budget(300, 9);
        assert_eq!(a.params(), b.params());
        let c = priced.instance_for_budget(300, 10);
        assert_ne!(
            a.params(),
            c.params(),
            "different sale seed, different noise"
        );
    }
}
