//! Direct linear solvers: Gaussian elimination and closed-form ridge
//! regression.
//!
//! Executors use ridge regression for regression workloads because it is
//! deterministic and scale-robust (no learning-rate tuning on raw sensor
//! units), which keeps all executors' results bit-identical for the
//! on-chain agreement step.

use crate::data::Dataset;
use crate::model::LinearRegression;

/// Solves `A x = b` for a square system by Gaussian elimination with
/// partial pivoting. Returns `None` if the matrix is singular.
///
/// `a` is row-major `n × n`.
#[allow(clippy::needless_range_loop)] // augmented-matrix elimination
pub fn solve_linear_system(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            assert_eq!(row.len(), n, "matrix must be square");
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        let pivot_val = m[col][col];
        for row in col + 1..n {
            let factor = m[row][col] / pivot_val;
            if factor == 0.0 {
                continue;
            }
            for k in col..=n {
                let delta = factor * m[col][k];
                m[row][k] -= delta;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in row + 1..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Closed-form ridge regression: minimizes `‖Xw + b − y‖² + λ‖w‖²`
/// (bias unpenalized) via the normal equations on the bias-augmented
/// design matrix.
pub fn ridge_fit(data: &Dataset, lambda: f64) -> LinearRegression {
    let d = data.dim();
    let n = data.len();
    if n == 0 || d == 0 {
        return LinearRegression::new(d);
    }
    let dim = d + 1; // augmented with the bias column
    let mut xtx = vec![vec![0.0; dim]; dim];
    let mut xty = vec![0.0; dim];
    for (row, &y) in data.x.iter().zip(&data.y) {
        for i in 0..d {
            for j in 0..d {
                xtx[i][j] += row[i] * row[j];
            }
            xtx[i][d] += row[i];
            xtx[d][i] += row[i];
            xty[i] += row[i] * y;
        }
        xtx[d][d] += 1.0;
        xty[d] += y;
    }
    for (i, row) in xtx.iter_mut().enumerate().take(d) {
        row[i] += lambda; // no penalty on the bias entry
    }
    match solve_linear_system(&xtx, &xty) {
        Some(sol) => {
            let mut model = LinearRegression::new(d);
            model.weights.copy_from_slice(&sol[..d]);
            model.bias = sol[d];
            model
        }
        None => {
            // Singular system (e.g. constant features): retry with a
            // stronger ridge, which is always nonsingular.
            ridge_fit_regularized_fallback(data, lambda.max(1e-6) * 1000.0)
        }
    }
}

fn ridge_fit_regularized_fallback(data: &Dataset, lambda: f64) -> LinearRegression {
    if lambda > 1e12 {
        // Give up gracefully: predict the mean.
        let d = data.dim();
        let mut m = LinearRegression::new(d);
        m.bias = data.y.iter().sum::<f64>() / data.len().max(1) as f64;
        return m;
    }
    ridge_fit(data, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{iot_sensor_series, noisy_linear};
    use crate::model::Model;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear_system(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear_system(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear_system(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn ridge_recovers_linear_ground_truth() {
        let data = noisy_linear(500, 4, 0.01, 1);
        let model = ridge_fit(&data, 1e-6);
        assert!(model.loss(&data) < 0.01, "loss {}", model.loss(&data));
    }

    #[test]
    fn ridge_is_scale_robust() {
        // Raw IoT temperatures (~20 with small variance) blow up naive
        // SGD; ridge must fit them without tuning.
        let data = iot_sensor_series(200, 0.5, 0.2, 2);
        let model = ridge_fit(&data, 1e-6);
        let loss = model.loss(&data);
        assert!(loss.is_finite());
        assert!(loss < 1.0, "loss {loss}");
    }

    #[test]
    fn ridge_shrinks_weights() {
        let data = noisy_linear(100, 3, 0.1, 3);
        let loose = ridge_fit(&data, 1e-9);
        let tight = ridge_fit(&data, 1e6);
        let norm = |m: &LinearRegression| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose) * 0.01);
    }

    #[test]
    fn empty_data_yields_zero_model() {
        let model = ridge_fit(&Dataset::new(Vec::new(), Vec::new()), 0.1);
        assert_eq!(model.weights.len(), 0);
        assert_eq!(model.bias, 0.0);
    }

    #[test]
    fn constant_feature_falls_back() {
        // A constant zero feature makes XtX singular at lambda=0.
        let data = Dataset::new(
            vec![vec![0.0, 1.0], vec![0.0, 2.0], vec![0.0, 3.0]],
            vec![2.0, 4.0, 6.0],
        );
        let model = ridge_fit(&data, 0.0);
        let pred = model.predict(&[0.0, 1.5]);
        assert!((pred - 3.0).abs() < 0.2, "pred {pred}");
    }
}
