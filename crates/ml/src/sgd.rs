//! Mini-batch stochastic gradient descent.

use crate::data::Dataset;
use crate::linalg::clip_norm;
use crate::model::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SGD hyperparameters.
#[derive(Clone, Debug)]
pub struct SgdConfig {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Multiplicative decay applied after each epoch.
    pub lr_decay: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Optional gradient-norm clip (used by DP-SGD).
    pub clip: Option<f64>,
    /// RNG seed for batch shuffling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.1,
            lr_decay: 0.99,
            batch_size: 32,
            epochs: 10,
            clip: None,
            seed: 0,
        }
    }
}

/// Trains `model` in place on `data`; returns the per-epoch training loss.
pub fn train<M: Model>(model: &mut M, data: &Dataset, cfg: &SgdConfig) -> Vec<f64> {
    assert!(cfg.batch_size > 0, "batch size must be positive");
    if data.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut lr = cfg.learning_rate;
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut order: Vec<usize> = (0..data.len()).collect();
    for _ in 0..cfg.epochs {
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        for batch in order.chunks(cfg.batch_size) {
            step(model, data, batch, lr, cfg.clip);
        }
        losses.push(model.loss(data));
        lr *= cfg.lr_decay;
    }
    losses
}

/// One SGD step on an explicit batch (exposed for the decentralized
/// protocols, which interleave local steps with merges).
pub fn step<M: Model>(model: &mut M, data: &Dataset, batch: &[usize], lr: f64, clip: Option<f64>) {
    let mut grad = model.gradient(data, batch);
    if let Some(c) = clip {
        clip_norm(&mut grad, c);
    }
    let mut params = model.params();
    for (p, g) in params.iter_mut().zip(&grad) {
        *p -= lr * g;
    }
    model.set_params(&params);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gaussian_blobs, noisy_linear, two_spirals};
    use crate::metrics::accuracy;
    use crate::model::{LinearRegression, LogisticRegression, Mlp};

    #[test]
    fn linreg_fits_linear_data() {
        let data = noisy_linear(500, 4, 0.05, 1);
        let mut m = LinearRegression::new(4);
        let losses = train(
            &mut m,
            &data,
            &SgdConfig {
                learning_rate: 0.05,
                epochs: 50,
                ..Default::default()
            },
        );
        assert!(losses.last().unwrap() < &0.05, "final loss {losses:?}");
        assert!(losses.first().unwrap() > losses.last().unwrap());
    }

    #[test]
    fn logreg_separates_blobs() {
        let data = gaussian_blobs(400, 3, 0.6, 2);
        let (train_set, test_set) = data.split(0.25, 3);
        let mut m = LogisticRegression::new(3);
        train(
            &mut m,
            &train_set,
            &SgdConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let preds: Vec<f64> = test_set.x.iter().map(|x| m.classify(x)).collect();
        let acc = accuracy(&preds, &test_set.y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn mlp_beats_linear_on_spirals() {
        let data = two_spirals(600, 0.05, 3);
        let (tr, te) = data.split(0.3, 4);
        let mut lin = LogisticRegression::new(2);
        train(
            &mut lin,
            &tr,
            &SgdConfig {
                epochs: 60,
                ..Default::default()
            },
        );
        let mut mlp = Mlp::new(2, 16, 5);
        train(
            &mut mlp,
            &tr,
            &SgdConfig {
                learning_rate: 0.3,
                lr_decay: 0.995,
                epochs: 300,
                batch_size: 16,
                ..Default::default()
            },
        );
        let lin_acc = accuracy(
            &te.x.iter().map(|x| lin.classify(x)).collect::<Vec<_>>(),
            &te.y,
        );
        let mlp_acc = accuracy(
            &te.x.iter().map(|x| mlp.classify(x)).collect::<Vec<_>>(),
            &te.y,
        );
        assert!(
            mlp_acc > lin_acc + 0.1,
            "mlp {mlp_acc} should clearly beat linear {lin_acc} on spirals"
        );
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let data = noisy_linear(100, 3, 10.0, 6); // noisy -> big gradients
        let mut clipped = LinearRegression::new(3);
        let batch: Vec<usize> = (0..100).collect();
        let before = clipped.params();
        step(&mut clipped, &data, &batch, 1.0, Some(0.001));
        let after = clipped.params();
        let delta: f64 = before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(delta <= 0.001 + 1e-9, "clipped update too large: {delta}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = gaussian_blobs(100, 2, 1.0, 7);
        let cfg = SgdConfig::default();
        let mut m1 = LogisticRegression::new(2);
        let mut m2 = LogisticRegression::new(2);
        train(&mut m1, &data, &cfg);
        train(&mut m2, &data, &cfg);
        assert_eq!(m1.params(), m2.params());
    }

    #[test]
    fn empty_dataset_is_noop() {
        let data = Dataset::new(Vec::new(), Vec::new());
        let mut m = LinearRegression::new(2);
        let losses = train(&mut m, &data, &SgdConfig::default());
        assert!(losses.is_empty());
        assert_eq!(m.params(), vec![0.0, 0.0, 0.0]);
    }
}
