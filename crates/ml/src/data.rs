//! Synthetic datasets and partitioning.
//!
//! The PDS² paper names no dataset (its motivating workloads are IoT/user
//! data); the gossip-vs-federated study it cites uses small tabular tasks.
//! These seeded generators produce reproducible classification and
//! regression data, plus the non-IID provider partitions that decentralized
//! learning experiments need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A supervised dataset: rows of features plus a target per row.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// Feature rows (all the same length).
    pub x: Vec<Vec<f64>>,
    /// Targets (class label 0/1 for classification, real for regression).
    pub y: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, checking shape consistency.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Dataset {
        assert_eq!(x.len(), y.len(), "row/target count mismatch");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        Dataset { x, y }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Splits into (train, test) with `test_fraction` of rows held out,
    /// after a seeded shuffle.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_fraction), "bad test fraction");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        shuffle(&mut idx, &mut rng);
        let n_test = (self.len() as f64 * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Extracts the rows at `indices`.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Concatenates datasets (same dimension).
    pub fn concat(parts: &[Dataset]) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for p in parts {
            x.extend(p.x.iter().cloned());
            y.extend(p.y.iter().copied());
        }
        Dataset::new(x, y)
    }

    /// IID partition into `n` near-equal shards (seeded shuffle first).
    pub fn partition_iid(&self, n: usize, seed: u64) -> Vec<Dataset> {
        assert!(n >= 1);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        shuffle(&mut idx, &mut rng);
        (0..n)
            .map(|k| {
                let shard: Vec<usize> = idx.iter().copied().skip(k).step_by(n).collect();
                self.subset(&shard)
            })
            .collect()
    }

    /// Label-skewed (non-IID) partition: rows are sorted by label, carved
    /// into `2n` contiguous shards and each provider receives two — the
    /// standard pathological-non-IID construction from the federated-
    /// learning literature.
    pub fn partition_noniid(&self, n: usize, seed: u64) -> Vec<Dataset> {
        assert!(n >= 1);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| self.y[a].partial_cmp(&self.y[b]).unwrap());
        let n_shards = 2 * n;
        let shard_size = self.len().div_ceil(n_shards);
        let shards: Vec<&[usize]> = idx.chunks(shard_size).collect();
        let mut shard_order: Vec<usize> = (0..shards.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        shuffle(&mut shard_order, &mut rng);
        (0..n)
            .map(|k| {
                let mut rows = Vec::new();
                for s in shard_order.iter().skip(k).step_by(n).take(2) {
                    rows.extend_from_slice(shards[*s]);
                }
                self.subset(&rows)
            })
            .collect()
    }

    /// Per-feature standardization (mean 0, stddev 1), returning the new
    /// dataset and the (mean, std) used — apply the same to test data.
    pub fn standardize(&self) -> (Dataset, Vec<(f64, f64)>) {
        let d = self.dim();
        let n = self.len().max(1) as f64;
        let mut stats = vec![(0.0, 0.0); d];
        for row in &self.x {
            for (j, v) in row.iter().enumerate() {
                stats[j].0 += v;
            }
        }
        for s in &mut stats {
            s.0 /= n;
        }
        for row in &self.x {
            for (j, v) in row.iter().enumerate() {
                let delta = v - stats[j].0;
                stats[j].1 += delta * delta;
            }
        }
        for s in &mut stats {
            s.1 = (s.1 / n).sqrt().max(1e-12);
        }
        (self.apply_standardization(&stats), stats)
    }

    /// Applies previously-computed standardization statistics.
    pub fn apply_standardization(&self, stats: &[(f64, f64)]) -> Dataset {
        let x = self
            .x
            .iter()
            .map(|row| {
                row.iter()
                    .zip(stats)
                    .map(|(v, (m, s))| (v - m) / s)
                    .collect()
            })
            .collect();
        Dataset {
            x,
            y: self.y.clone(),
        }
    }

    /// Fraction of rows with label 1 (classification datasets).
    pub fn positive_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.y.iter().filter(|&&v| v > 0.5).count() as f64 / self.len() as f64
    }
}

/// Fisher–Yates shuffle with the caller's RNG (keeps rand's Slice trait out
/// of the public API).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

/// Standard-normal sample via Box–Muller.
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Two Gaussian blobs (binary classification, linearly separable up to
/// `spread`).
pub fn gaussian_blobs(n: usize, dim: usize, spread: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % 2) as f64;
        let center = if label > 0.5 { 1.0 } else { -1.0 };
        let row: Vec<f64> = (0..dim)
            .map(|_| center + spread * randn(&mut rng))
            .collect();
        x.push(row);
        y.push(label);
    }
    Dataset::new(x, y)
}

/// Two interleaved spirals (binary classification, not linearly separable).
pub fn two_spirals(n: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % 2) as f64;
        let t = 0.5 + 3.0 * (i as f64 / n as f64) * std::f64::consts::PI;
        let sign = if label > 0.5 { 1.0 } else { -1.0 };
        x.push(vec![
            sign * t * t.cos() + noise * randn(&mut rng),
            sign * t * t.sin() + noise * randn(&mut rng),
        ]);
        y.push(label);
    }
    Dataset::new(x, y)
}

/// Linear-regression data: `y = w·x + b + noise` with a hidden seeded
/// ground-truth weight vector.
pub fn noisy_linear(n: usize, dim: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..dim).map(|_| randn(&mut rng)).collect();
    let b = randn(&mut rng);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..dim).map(|_| randn(&mut rng)).collect();
        let target = crate::linalg::dot(&w, &row) + b + noise * randn(&mut rng);
        x.push(row);
        y.push(target);
    }
    Dataset::new(x, y)
}

/// A "spambase-like" task: sparse non-negative frequency features whose
/// rates depend on the class, mimicking word-frequency spam data (the kind
/// of small tabular task used in the gossip-learning literature).
pub fn spam_like(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Class-conditional activation probabilities per feature.
    let p_spam: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 0.5).collect();
    let p_ham: Vec<f64> = (0..dim).map(|_| rng.random::<f64>() * 0.5).collect();
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % 2) as f64;
        let rates = if label > 0.5 { &p_spam } else { &p_ham };
        let row: Vec<f64> = rates
            .iter()
            .map(|&p| {
                if rng.random::<f64>() < p {
                    (rng.random::<f64>() * 5.0 * 100.0).round() / 100.0
                } else {
                    0.0
                }
            })
            .collect();
        x.push(row);
        y.push(label);
    }
    Dataset::new(x, y)
}

/// Simulated IoT sensor stream for one device: a daily sinusoidal pattern
/// with device-specific phase plus noise; target is the next reading.
/// Used by the marketplace examples as the providers' raw data.
pub fn iot_sensor_series(n: usize, device_phase: f64, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = 4;
    let raw: Vec<f64> = (0..n + window)
        .map(|t| {
            let hour = (t % 24) as f64 / 24.0 * std::f64::consts::TAU;
            20.0 + 5.0 * (hour + device_phase).sin() + noise * randn(&mut rng)
        })
        .collect();
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for t in 0..n {
        x.push(raw[t..t + window].to_vec());
        y.push(raw[t + window]);
    }
    Dataset::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_balance() {
        let d = gaussian_blobs(100, 5, 0.5, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 5);
        assert!((d.positive_fraction() - 0.5).abs() < 0.01);
    }

    #[test]
    fn generators_are_seeded() {
        assert_eq!(gaussian_blobs(50, 3, 1.0, 7), gaussian_blobs(50, 3, 1.0, 7));
        assert_ne!(gaussian_blobs(50, 3, 1.0, 7), gaussian_blobs(50, 3, 1.0, 8));
        assert_eq!(spam_like(30, 10, 3), spam_like(30, 10, 3));
        assert_eq!(two_spirals(30, 0.1, 3), two_spirals(30, 0.1, 3));
        assert_eq!(noisy_linear(30, 4, 0.1, 3), noisy_linear(30, 4, 0.1, 3));
    }

    #[test]
    fn split_preserves_rows() {
        let d = gaussian_blobs(100, 2, 1.0, 1);
        let (train, test) = d.split(0.25, 42);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        // No row lost: recombine and compare multiset sizes.
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    fn iid_partition_is_balanced() {
        let d = gaussian_blobs(100, 2, 1.0, 1);
        let parts = d.partition_iid(7, 9);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 100);
        for p in &parts {
            assert!((14..=15).contains(&p.len()));
            // IID: each shard keeps roughly the global class balance.
            assert!(
                (0.2..=0.8).contains(&p.positive_fraction()),
                "{}",
                p.positive_fraction()
            );
        }
    }

    #[test]
    fn noniid_partition_skews_labels() {
        let d = gaussian_blobs(400, 2, 1.0, 1);
        let parts = d.partition_noniid(10, 3);
        assert_eq!(parts.len(), 10);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 400);
        // Most providers should be heavily skewed toward one class.
        let skewed = parts
            .iter()
            .filter(|p| p.positive_fraction() < 0.15 || p.positive_fraction() > 0.85)
            .count();
        assert!(skewed >= 6, "only {skewed}/10 providers are label-skewed");
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let d = noisy_linear(200, 3, 0.5, 4);
        let (std_d, stats) = d.standardize();
        for j in 0..3 {
            let mean: f64 = std_d.x.iter().map(|r| r[j]).sum::<f64>() / 200.0;
            let var: f64 = std_d.x.iter().map(|r| r[j] * r[j]).sum::<f64>() / 200.0;
            assert!(mean.abs() < 1e-9, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-6, "var {var}");
        }
        // Applying the same stats to the same data reproduces it.
        assert_eq!(d.apply_standardization(&stats), std_d);
    }

    #[test]
    fn concat_restores_total() {
        let d = gaussian_blobs(60, 2, 1.0, 1);
        let parts = d.partition_iid(3, 2);
        let merged = Dataset::concat(&parts);
        assert_eq!(merged.len(), 60);
        assert_eq!(merged.dim(), 2);
    }

    #[test]
    fn iot_series_shape() {
        let d = iot_sensor_series(48, 0.3, 0.1, 5);
        assert_eq!(d.len(), 48);
        assert_eq!(d.dim(), 4);
        // Values hover around 20 (the simulated baseline temperature).
        let mean: f64 = d.y.iter().sum::<f64>() / 48.0;
        assert!((15.0..25.0).contains(&mean), "{mean}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn target_count_mismatch_rejected() {
        let _ = Dataset::new(vec![vec![1.0]], vec![0.0, 1.0]);
    }
}
