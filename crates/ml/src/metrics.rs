//! Evaluation metrics.

/// Fraction of predictions exactly matching targets (use on hard labels).
pub fn accuracy(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| (*p - *t).abs() < 0.5)
        .count();
    hits as f64 / predictions.len() as f64
}

/// Mean squared error.
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64
}

/// Binary log loss on probability predictions.
pub fn log_loss(probabilities: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(probabilities.len(), targets.len(), "length mismatch");
    if probabilities.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    probabilities
        .iter()
        .zip(targets)
        .map(|(p, y)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum::<f64>()
        / probabilities.len() as f64
}

/// Area under the ROC curve (rank-based, ties handled by midrank).
pub fn auc(scores: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(scores.len(), targets.len(), "length mismatch");
    let n_pos = targets.iter().filter(|&&t| t > 0.5).count();
    let n_neg = targets.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Midranks.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let pos_rank_sum: f64 = targets
        .iter()
        .zip(&ranks)
        .filter(|(t, _)| **t > 0.5)
        .map(|(_, r)| r)
        .sum();
    (pos_rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0], &[1.0, 0.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_rewards_confidence() {
        let confident = log_loss(&[0.99, 0.01], &[1.0, 0.0]);
        let unsure = log_loss(&[0.6, 0.4], &[1.0, 0.0]);
        assert!(confident < unsure);
        // Extreme wrongness is heavily penalized but finite.
        let wrong = log_loss(&[0.0], &[1.0]);
        assert!(wrong.is_finite() && wrong > 10.0);
    }

    #[test]
    fn auc_perfect_and_random() {
        // Perfect separation.
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]), 1.0);
        // Perfectly inverted.
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &[0.0, 0.0, 1.0, 1.0]), 0.0);
        // All ties -> 0.5.
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &[0.0, 1.0, 0.0, 1.0]), 0.5);
        // Degenerate class: convention 0.5.
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn auc_with_partial_overlap() {
        // Positives score {0.4, 0.8}, negatives {0.1, 0.5}: 3 of 4
        // positive-negative pairs are ranked correctly.
        let a = auc(&[0.1, 0.4, 0.5, 0.8], &[0.0, 1.0, 0.0, 1.0]);
        assert!((a - 0.75).abs() < 1e-9, "{a}");
    }
}
