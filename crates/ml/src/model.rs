//! Models: linear regression, logistic regression and a small MLP.
//!
//! All models expose a flat parameter vector ([`Model::params`] /
//! [`Model::set_params`]) so the decentralized aggregation protocols
//! (gossip merge, FedAvg) can average them generically.

use crate::data::Dataset;
use crate::linalg::{dot, sigmoid};

/// A trainable supervised model with a flat parameter view.
pub trait Model: Clone {
    /// Raw prediction (regression value, or logit for classifiers).
    fn raw_predict(&self, x: &[f64]) -> f64;

    /// Task-level prediction (class probability for classifiers,
    /// value for regressors).
    fn predict(&self, x: &[f64]) -> f64;

    /// Mean loss over a dataset.
    fn loss(&self, data: &Dataset) -> f64;

    /// Gradient of the mean loss over a batch of row indices,
    /// flattened to match [`Model::params`].
    fn gradient(&self, data: &Dataset, batch: &[usize]) -> Vec<f64>;

    /// Flat parameter vector (weights then bias).
    fn params(&self) -> Vec<f64>;

    /// Overwrites parameters from a flat vector.
    fn set_params(&mut self, params: &[f64]);

    /// Number of parameters.
    fn n_params(&self) -> usize {
        self.params().len()
    }
}

/// Linear regression under squared error.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

impl LinearRegression {
    /// Zero-initialized model of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        LinearRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }
}

impl Model for LinearRegression {
    fn raw_predict(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.raw_predict(x)
    }

    fn loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.x
            .iter()
            .zip(&data.y)
            .map(|(x, y)| {
                let e = self.raw_predict(x) - y;
                e * e
            })
            .sum::<f64>()
            / data.len() as f64
    }

    #[allow(clippy::needless_range_loop)] // grad/x lockstep indexing
    fn gradient(&self, data: &Dataset, batch: &[usize]) -> Vec<f64> {
        assert!(!batch.is_empty(), "empty gradient batch");
        let d = self.weights.len();
        let mut grad = vec![0.0; d + 1];
        for &i in batch {
            let x = &data.x[i];
            let err = self.raw_predict(x) - data.y[i];
            for j in 0..d {
                grad[j] += 2.0 * err * x[j];
            }
            grad[d] += 2.0 * err;
        }
        let scale = 1.0 / batch.len() as f64;
        for g in &mut grad {
            *g *= scale;
        }
        grad
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.weights.clone();
        p.push(self.bias);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.weights.len() + 1, "param size mismatch");
        self.weights.copy_from_slice(&params[..params.len() - 1]);
        self.bias = params[params.len() - 1];
    }
}

/// Binary logistic regression under log loss.
#[derive(Clone, Debug, PartialEq)]
pub struct LogisticRegression {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl LogisticRegression {
    /// Zero-initialized model of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
            l2: 0.0,
        }
    }

    /// With L2 regularization.
    pub fn with_l2(dim: usize, l2: f64) -> Self {
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
            l2,
        }
    }

    /// Hard class decision at threshold 0.5.
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.predict(x) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }
}

impl Model for LogisticRegression {
    fn raw_predict(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    fn predict(&self, x: &[f64]) -> f64 {
        sigmoid(self.raw_predict(x))
    }

    fn loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let eps = 1e-12;
        let nll: f64 = data
            .x
            .iter()
            .zip(&data.y)
            .map(|(x, y)| {
                let p = self.predict(x).clamp(eps, 1.0 - eps);
                -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
            })
            .sum::<f64>()
            / data.len() as f64;
        nll + 0.5 * self.l2 * dot(&self.weights, &self.weights)
    }

    #[allow(clippy::needless_range_loop)] // grad/x lockstep indexing
    fn gradient(&self, data: &Dataset, batch: &[usize]) -> Vec<f64> {
        assert!(!batch.is_empty(), "empty gradient batch");
        let d = self.weights.len();
        let mut grad = vec![0.0; d + 1];
        for &i in batch {
            let x = &data.x[i];
            let err = self.predict(x) - data.y[i];
            for j in 0..d {
                grad[j] += err * x[j];
            }
            grad[d] += err;
        }
        let scale = 1.0 / batch.len() as f64;
        for g in &mut grad {
            *g *= scale;
        }
        for j in 0..d {
            grad[j] += self.l2 * self.weights[j];
        }
        grad
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.weights.clone();
        p.push(self.bias);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.weights.len() + 1, "param size mismatch");
        self.weights.copy_from_slice(&params[..params.len() - 1]);
        self.bias = params[params.len() - 1];
    }
}

/// A one-hidden-layer MLP with tanh activation for binary classification.
///
/// Small but genuinely non-linear — used to show the marketplace handles
/// workloads a linear model cannot fit (the two-spirals example).
#[derive(Clone, Debug, PartialEq)]
pub struct Mlp {
    input_dim: usize,
    hidden: usize,
    /// Hidden weights, row-major `[hidden x input_dim]`.
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
}

impl Mlp {
    /// Creates an MLP with small deterministic weight initialization.
    pub fn new(input_dim: usize, hidden: usize, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (input_dim as f64).sqrt();
        Mlp {
            input_dim,
            hidden,
            w1: (0..hidden * input_dim)
                .map(|_| (rng.random::<f64>() - 0.5) * 2.0 * scale)
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden)
                .map(|_| (rng.random::<f64>() - 0.5) * 2.0 / (hidden as f64).sqrt())
                .collect(),
            b2: 0.0,
        }
    }

    fn hidden_activations(&self, x: &[f64]) -> Vec<f64> {
        (0..self.hidden)
            .map(|h| {
                let row = &self.w1[h * self.input_dim..(h + 1) * self.input_dim];
                (dot(row, x) + self.b1[h]).tanh()
            })
            .collect()
    }

    /// Hard class decision at threshold 0.5.
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.predict(x) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }
}

impl Model for Mlp {
    fn raw_predict(&self, x: &[f64]) -> f64 {
        let h = self.hidden_activations(x);
        dot(&self.w2, &h) + self.b2
    }

    fn predict(&self, x: &[f64]) -> f64 {
        sigmoid(self.raw_predict(x))
    }

    fn loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let eps = 1e-12;
        data.x
            .iter()
            .zip(&data.y)
            .map(|(x, y)| {
                let p = self.predict(x).clamp(eps, 1.0 - eps);
                -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
            })
            .sum::<f64>()
            / data.len() as f64
    }

    #[allow(clippy::needless_range_loop)] // grad/x lockstep indexing
    fn gradient(&self, data: &Dataset, batch: &[usize]) -> Vec<f64> {
        assert!(!batch.is_empty(), "empty gradient batch");
        let (d, h) = (self.input_dim, self.hidden);
        let mut g_w1 = vec![0.0; h * d];
        let mut g_b1 = vec![0.0; h];
        let mut g_w2 = vec![0.0; h];
        let mut g_b2 = 0.0;
        for &i in batch {
            let x = &data.x[i];
            let act = self.hidden_activations(x);
            let p = sigmoid(dot(&self.w2, &act) + self.b2);
            let err = p - data.y[i]; // dL/dz for logistic output
            for k in 0..h {
                g_w2[k] += err * act[k];
                let dtanh = 1.0 - act[k] * act[k];
                let delta = err * self.w2[k] * dtanh;
                g_b1[k] += delta;
                for j in 0..d {
                    g_w1[k * d + j] += delta * x[j];
                }
            }
            g_b2 += err;
        }
        let scale = 1.0 / batch.len() as f64;
        let mut grad = Vec::with_capacity(h * d + h + h + 1);
        grad.extend(g_w1.into_iter().map(|v| v * scale));
        grad.extend(g_b1.into_iter().map(|v| v * scale));
        grad.extend(g_w2.into_iter().map(|v| v * scale));
        grad.push(g_b2 * scale);
        grad
    }

    fn params(&self) -> Vec<f64> {
        // Capacity computed directly: the trait's n_params() default is
        // defined in terms of params() itself.
        let mut p = Vec::with_capacity(self.w1.len() + self.b1.len() + self.w2.len() + 1);
        p.extend_from_slice(&self.w1);
        p.extend_from_slice(&self.b1);
        p.extend_from_slice(&self.w2);
        p.push(self.b2);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        let (d, h) = (self.input_dim, self.hidden);
        assert_eq!(params.len(), h * d + h + h + 1, "param size mismatch");
        let (w1, rest) = params.split_at(h * d);
        let (b1, rest) = rest.split_at(h);
        let (w2, b2) = rest.split_at(h);
        self.w1.copy_from_slice(w1);
        self.b1.copy_from_slice(b1);
        self.w2.copy_from_slice(w2);
        self.b2 = b2[0];
    }
}

/// Multiclass softmax regression under cross-entropy loss.
///
/// Targets are class indices encoded as `f64` (0.0, 1.0, …). The flat
/// parameter layout is `[weights row-major (k×d), biases (k)]`, so
/// decentralized averaging works unchanged.
#[derive(Clone, Debug, PartialEq)]
pub struct SoftmaxRegression {
    classes: usize,
    dim: usize,
    /// Row-major `[classes × dim]` weights.
    pub weights: Vec<f64>,
    /// Per-class biases.
    pub biases: Vec<f64>,
}

impl SoftmaxRegression {
    /// Zero-initialized model for `classes` classes over `dim` features.
    pub fn new(dim: usize, classes: usize) -> Self {
        assert!(classes >= 2, "need at least two classes");
        SoftmaxRegression {
            classes,
            dim,
            weights: vec![0.0; classes * dim],
            biases: vec![0.0; classes],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes
    }

    /// Per-class logits.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        (0..self.classes)
            .map(|k| dot(&self.weights[k * self.dim..(k + 1) * self.dim], x) + self.biases[k])
            .collect()
    }

    /// Class-probability vector (numerically stable softmax).
    pub fn probabilities(&self, x: &[f64]) -> Vec<f64> {
        let logits = self.logits(x);
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|z| (z - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Hard class decision (argmax).
    pub fn classify(&self, x: &[f64]) -> f64 {
        let probs = self.probabilities(x);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(k, _)| k as f64)
            .unwrap_or(0.0)
    }
}

impl Model for SoftmaxRegression {
    fn raw_predict(&self, x: &[f64]) -> f64 {
        // The argmax logit (rarely useful directly for multiclass).
        self.logits(x).into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.classify(x)
    }

    fn loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let eps = 1e-12;
        data.x
            .iter()
            .zip(&data.y)
            .map(|(x, &y)| {
                let probs = self.probabilities(x);
                let class = (y as usize).min(self.classes - 1);
                -probs[class].max(eps).ln()
            })
            .sum::<f64>()
            / data.len() as f64
    }

    fn gradient(&self, data: &Dataset, batch: &[usize]) -> Vec<f64> {
        assert!(!batch.is_empty(), "empty gradient batch");
        let (d, k) = (self.dim, self.classes);
        let mut g_w = vec![0.0; k * d];
        let mut g_b = vec![0.0; k];
        for &i in batch {
            let x = &data.x[i];
            let class = (data.y[i] as usize).min(k - 1);
            let probs = self.probabilities(x);
            for (c, &p) in probs.iter().enumerate() {
                let err = p - if c == class { 1.0 } else { 0.0 };
                for (j, &xj) in x.iter().enumerate() {
                    g_w[c * d + j] += err * xj;
                }
                g_b[c] += err;
            }
        }
        let scale = 1.0 / batch.len() as f64;
        let mut grad = Vec::with_capacity(k * d + k);
        grad.extend(g_w.into_iter().map(|v| v * scale));
        grad.extend(g_b.into_iter().map(|v| v * scale));
        grad
    }

    fn params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.weights.len() + self.biases.len());
        p.extend_from_slice(&self.weights);
        p.extend_from_slice(&self.biases);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.weights.len() + self.biases.len(),
            "param size mismatch"
        );
        let (w, b) = params.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.biases.copy_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{gaussian_blobs, noisy_linear};

    #[test]
    fn linreg_params_roundtrip() {
        let mut m = LinearRegression::new(3);
        m.set_params(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.weights, vec![1.0, 2.0, 3.0]);
        assert_eq!(m.bias, 4.0);
        assert_eq!(m.params(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.n_params(), 4);
    }

    #[test]
    fn linreg_gradient_points_downhill() {
        let data = noisy_linear(100, 3, 0.1, 1);
        let mut m = LinearRegression::new(3);
        let batch: Vec<usize> = (0..100).collect();
        let l0 = m.loss(&data);
        let g = m.gradient(&data, &batch);
        let mut p = m.params();
        for (pi, gi) in p.iter_mut().zip(&g) {
            *pi -= 0.01 * gi;
        }
        m.set_params(&p);
        assert!(m.loss(&data) < l0, "one gradient step must reduce loss");
    }

    #[test]
    fn linreg_gradient_matches_finite_difference() {
        let data = noisy_linear(20, 2, 0.1, 2);
        let mut m = LinearRegression::new(2);
        m.set_params(&[0.3, -0.2, 0.1]);
        let batch: Vec<usize> = (0..20).collect();
        let g = m.gradient(&data, &batch);
        let eps = 1e-6;
        for k in 0..3 {
            let mut p = m.params();
            p[k] += eps;
            let mut m_plus = m.clone();
            m_plus.set_params(&p);
            p[k] -= 2.0 * eps;
            let mut m_minus = m.clone();
            m_minus.set_params(&p);
            let fd = (m_plus.loss(&data) - m_minus.loss(&data)) / (2.0 * eps);
            assert!((g[k] - fd).abs() < 1e-4, "param {k}: {} vs {}", g[k], fd);
        }
    }

    #[test]
    fn logreg_gradient_matches_finite_difference() {
        let data = gaussian_blobs(30, 2, 1.0, 3);
        let mut m = LogisticRegression::with_l2(2, 0.01);
        m.set_params(&[0.5, -0.3, 0.2]);
        let batch: Vec<usize> = (0..30).collect();
        let g = m.gradient(&data, &batch);
        let eps = 1e-6;
        for k in 0..3 {
            let mut p = m.params();
            p[k] += eps;
            let mut m_plus = m.clone();
            m_plus.set_params(&p);
            p[k] -= 2.0 * eps;
            let mut m_minus = m.clone();
            m_minus.set_params(&p);
            let fd = (m_plus.loss(&data) - m_minus.loss(&data)) / (2.0 * eps);
            assert!((g[k] - fd).abs() < 1e-4, "param {k}: {} vs {}", g[k], fd);
        }
    }

    #[test]
    fn mlp_gradient_matches_finite_difference() {
        let data = gaussian_blobs(20, 2, 1.0, 4);
        let m = Mlp::new(2, 4, 7);
        let batch: Vec<usize> = (0..20).collect();
        let g = m.gradient(&data, &batch);
        let eps = 1e-6;
        let base_params = m.params();
        for k in (0..g.len()).step_by(3) {
            let mut p = base_params.clone();
            p[k] += eps;
            let mut m_plus = m.clone();
            m_plus.set_params(&p);
            p[k] -= 2.0 * eps;
            let mut m_minus = m.clone();
            m_minus.set_params(&p);
            let fd = (m_plus.loss(&data) - m_minus.loss(&data)) / (2.0 * eps);
            assert!((g[k] - fd).abs() < 1e-4, "param {k}: {} vs {}", g[k], fd);
        }
    }

    #[test]
    fn logreg_probability_range() {
        let m = LogisticRegression::new(2);
        let p = m.predict(&[100.0, -100.0]);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(m.classify(&[0.0, 0.0]), 1.0, "p=0.5 classifies as 1");
    }

    #[test]
    fn mlp_params_roundtrip() {
        let m = Mlp::new(3, 5, 1);
        let p = m.params();
        assert_eq!(p.len(), 5 * 3 + 5 + 5 + 1);
        let mut m2 = Mlp::new(3, 5, 2);
        m2.set_params(&p);
        assert_eq!(m2.params(), p);
        // Identical params -> identical predictions.
        let x = [0.1, -0.2, 0.3];
        assert_eq!(m.predict(&x), m2.predict(&x));
    }

    #[test]
    fn softmax_probabilities_sum_to_one() {
        let m = SoftmaxRegression::new(3, 4);
        let p = m.probabilities(&[0.5, -0.5, 2.0]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Zero model: uniform.
        assert!(p.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        use crate::data::Dataset;
        // Three classes around three centers.
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let c = i % 3;
                vec![c as f64 + 0.1 * (i as f64 / 30.0), -(c as f64)]
            })
            .collect();
        let y: Vec<f64> = (0..30).map(|i| (i % 3) as f64).collect();
        let data = Dataset::new(x, y);
        let mut m = SoftmaxRegression::new(2, 3);
        let mut p0 = m.params();
        for (i, p) in p0.iter_mut().enumerate() {
            *p = ((i * 7 % 5) as f64 - 2.0) / 10.0;
        }
        m.set_params(&p0);
        let batch: Vec<usize> = (0..30).collect();
        let g = m.gradient(&data, &batch);
        let eps = 1e-6;
        for k in (0..g.len()).step_by(2) {
            let mut p = m.params();
            p[k] += eps;
            let mut plus = m.clone();
            plus.set_params(&p);
            p[k] -= 2.0 * eps;
            let mut minus = m.clone();
            minus.set_params(&p);
            let fd = (plus.loss(&data) - minus.loss(&data)) / (2.0 * eps);
            assert!((g[k] - fd).abs() < 1e-5, "param {k}: {} vs {}", g[k], fd);
        }
    }

    #[test]
    fn softmax_learns_three_classes() {
        use crate::data::Dataset;
        use crate::sgd::{train, SgdConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let centers = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..600 {
            let c = i % 3;
            let (cx, cy) = centers[c];
            x.push(vec![
                cx + rng.random::<f64>() - 0.5,
                cy + rng.random::<f64>() - 0.5,
            ]);
            y.push(c as f64);
        }
        let data = Dataset::new(x, y);
        let (tr, te) = data.split(0.25, 2);
        let mut m = SoftmaxRegression::new(2, 3);
        train(
            &mut m,
            &tr,
            &SgdConfig {
                epochs: 40,
                ..Default::default()
            },
        );
        let preds: Vec<f64> = te.x.iter().map(|x| m.classify(x)).collect();
        let acc = crate::metrics::accuracy(&preds, &te.y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn softmax_params_roundtrip() {
        let m = SoftmaxRegression::new(3, 4);
        assert_eq!(m.n_params(), 3 * 4 + 4);
        let mut m2 = SoftmaxRegression::new(3, 4);
        let mut p = m.params();
        p[5] = 1.5;
        m2.set_params(&p);
        assert_eq!(m2.params()[5], 1.5);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn softmax_rejects_single_class() {
        let _ = SoftmaxRegression::new(3, 1);
    }

    #[test]
    #[should_panic(expected = "param size mismatch")]
    fn wrong_param_size_panics() {
        let mut m = LinearRegression::new(3);
        m.set_params(&[1.0]);
    }
}
