//! Dense vector kernels used by the models and aggregation protocols.

/// Dot product of two equal-length slices.
///
/// Four-way unrolled: independent accumulators break the sequential
/// add dependency so the CPU can overlap the multiply-adds. The
/// accumulators associate differently from a strict left-to-right sum, so
/// results can differ from the naive loop in the last ULPs (bounded by
/// standard float summation error; see the proptest in `tests/`), but are
/// fixed for a given input — the unroll factor is a constant, not a
/// thread-count function.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let mut acc = [0.0f64; 4];
    let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
    let (b4, b_tail) = b.split_at(a4.len());
    for (xs, ys) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += xs[0] * ys[0];
        acc[1] += xs[1] * ys[1];
        acc[2] += xs[2] * ys[2];
        acc[3] += xs[3] * ys[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `y += alpha * x` in place.
///
/// Four-way unrolled. Unlike [`dot`], each element is updated
/// independently, so the result is exactly the naive loop's.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: dimension mismatch");
    let split = x.len() - x.len() % 4;
    let (x4, x_tail) = x.split_at(split);
    let (y4, y_tail) = y.split_at_mut(split);
    for (ys, xs) in y4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
        ys[0] += alpha * xs[0];
        ys[1] += alpha * xs[1];
        ys[2] += alpha * xs[2];
        ys[3] += alpha * xs[3];
    }
    for (yi, xi) in y_tail.iter_mut().zip(x_tail) {
        *yi += alpha * xi;
    }
}

/// Reference (non-unrolled) dot product: strict left-to-right summation.
/// Kept for tests comparing the unrolled kernel's rounding behaviour.
pub fn dot_naive(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `x *= alpha` in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Element-wise weighted average: `(wa*a + wb*b) / (wa + wb)`.
pub fn weighted_average(a: &[f64], wa: f64, b: &[f64], wb: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "weighted_average: dimension mismatch");
    assert!(wa + wb > 0.0, "weights must be positive");
    let total = wa + wb;
    a.iter()
        .zip(b)
        .map(|(x, y)| (wa * x + wb * y) / total)
        .collect()
}

/// Average of many vectors with per-vector weights.
pub fn weighted_mean(vectors: &[Vec<f64>], weights: &[f64]) -> Vec<f64> {
    assert_eq!(
        vectors.len(),
        weights.len(),
        "weighted_mean: length mismatch"
    );
    assert!(!vectors.is_empty(), "weighted_mean of nothing");
    let dim = vectors[0].len();
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    let mut out = vec![0.0; dim];
    for (v, &w) in vectors.iter().zip(weights) {
        assert_eq!(v.len(), dim, "weighted_mean: dimension mismatch");
        axpy(w / total, v, &mut out);
    }
    out
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Clips a vector to a maximum L2 norm (in place). Returns the scaling
/// factor applied (1.0 if no clipping occurred).
pub fn clip_norm(x: &mut [f64], max_norm: f64) -> f64 {
    let n = norm(x);
    if n > max_norm && n > 0.0 {
        let factor = max_norm / n;
        scale(factor, x);
        factor
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn unrolled_dot_matches_naive_for_all_tail_lengths() {
        for n in 0..24 {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos() / 7.0).collect();
            let fast = dot(&a, &b);
            let slow = dot_naive(&a, &b);
            let scale = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x * y).abs())
                .sum::<f64>()
                .max(1.0);
            assert!(
                (fast - slow).abs() <= scale * 1e-14,
                "n={n}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn unrolled_axpy_is_exactly_elementwise() {
        for n in 0..24 {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin()).collect();
            let mut fast: Vec<f64> = (0..n).map(|i| i as f64 / 3.0).collect();
            let mut slow = fast.clone();
            axpy(1.7, &x, &mut fast);
            for (yi, xi) in slow.iter_mut().zip(&x) {
                *yi += 1.7 * xi;
            }
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn norm_basic() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn weighted_average_blends() {
        let avg = weighted_average(&[0.0, 10.0], 1.0, &[10.0, 0.0], 3.0);
        assert_eq!(avg, vec![7.5, 2.5]);
        // Equal weights = plain mean.
        let avg = weighted_average(&[2.0], 1.0, &[4.0], 1.0);
        assert_eq!(avg, vec![3.0]);
    }

    #[test]
    fn weighted_mean_many() {
        let vs = vec![vec![1.0, 0.0], vec![3.0, 4.0]];
        let m = weighted_mean(&vs, &[1.0, 1.0]);
        assert_eq!(m, vec![2.0, 2.0]);
        let m = weighted_mean(&vs, &[3.0, 1.0]);
        assert_eq!(m, vec![1.5, 1.0]);
    }

    #[test]
    fn sigmoid_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
        // Symmetry: σ(-z) = 1 - σ(z).
        for z in [-3.0, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-12);
        }
    }

    #[test]
    fn clip_norm_behaviour() {
        let mut x = vec![3.0, 4.0]; // norm 5
        let f = clip_norm(&mut x, 10.0);
        assert_eq!(f, 1.0);
        assert_eq!(x, vec![3.0, 4.0]);
        let f = clip_norm(&mut x, 1.0);
        assert!((f - 0.2).abs() < 1e-12);
        assert!((norm(&x) - 1.0).abs() < 1e-12);
        // Zero vector is untouched.
        let mut z = vec![0.0, 0.0];
        assert_eq!(clip_norm(&mut z, 1.0), 1.0);
    }
}
