//! # pds2-ml
//!
//! The machine-learning substrate for PDS² workloads: the paper "focus\[es\]
//! on ML training tasks, as they represent one of the most relevant and
//! valuable data aggregation workloads in the industry" (§I).
//!
//! - [`linalg`] — dense vector kernels, parameter averaging, norm clipping;
//! - [`data`] — seeded synthetic datasets (blobs, spirals, noisy-linear,
//!   spam-like, IoT sensor series) with IID and label-skewed partitioning;
//! - [`model`] — linear regression, logistic regression, a small MLP, all
//!   exposing flat parameter vectors for decentralized averaging;
//! - [`sgd`] — mini-batch SGD with optional gradient clipping (DP-SGD
//!   building block);
//! - [`metrics`] — accuracy, MSE, log loss, AUC.

pub mod data;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod sgd;
pub mod solve;

pub use data::Dataset;
pub use model::{LinearRegression, LogisticRegression, Mlp, Model, SoftmaxRegression};
pub use sgd::{train, SgdConfig};
